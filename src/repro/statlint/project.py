"""Project-wide analysis substrate: symbol index, call graph, summaries.

Per-module rules see one :class:`~repro.statlint.engine.ModuleContext`;
the interprocedural rules (DCL012-DCL015) see a :class:`ProjectContext`
built over *every* linted module at once:

* a **symbol index** mapping fully-qualified names
  (``repro.parallel.executor.worker_rng``) to their defining AST nodes,
  with ``import`` / ``from-import`` chains (including package
  ``__init__`` re-exports) resolved to the defining module;
* a **call graph** over module-level functions and methods, with
  reverse edges so a rule can walk from a task function back to every
  dispatch site that can reach it;
* memoized **dtype summaries** (the inferred return dtype of any
  indexed function, via :mod:`repro.statlint.dataflow`) so complex128
  provenance survives module boundaries.

Module names derive from POSIX relpaths with a leading ``src/``
stripped, so ``src/repro/lfd/kin_prop.py`` indexes as
``repro.lfd.kin_prop`` and fixtures can fake any layer by relpath.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.statlint.config import LintConfig
from repro.statlint.dataflow import FunctionDataflow, analyze_function
from repro.statlint.engine import ModuleContext

FuncNode = "ast.FunctionDef | ast.AsyncFunctionDef"


def module_name_for(relpath: str) -> str:
    """Dotted module name for a POSIX relpath (``src/`` prefix dropped)."""
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "."):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


class FunctionRecord:
    """One indexed function or method definition."""

    def __init__(
        self,
        module: "ModuleInfo",
        qualname: str,
        node: FuncNode,
    ) -> None:
        self.module = module
        self.qualname = qualname        # local, e.g. "KinProp.step"
        self.node = node
        self.fq = f"{module.modname}.{qualname}"

    @property
    def is_method(self) -> bool:
        """Whether the function is defined inside a class body."""
        return "." in self.qualname

    def __repr__(self) -> str:  # pragma: no cover
        return f"FunctionRecord({self.fq})"


class ModuleInfo:
    """Per-module slice of the project index."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.relpath = ctx.relpath
        self.modname = module_name_for(ctx.relpath)
        #: local qualname -> FunctionRecord (module funcs + class methods)
        self.functions: Dict[str, FunctionRecord] = {}
        #: class name -> ClassDef
        self.classes: Dict[str, ast.ClassDef] = {}
        #: local name -> fully-qualified imported target
        self.imports: Dict[str, str] = {}
        #: module-level ``NAME = <expr>`` aliases
        self.assigns: Dict[str, ast.expr] = {}
        self._index()

    def _index(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionRecord(self, node.name, node)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{sub.name}"
                        self.functions[qual] = FunctionRecord(self, qual, sub)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds the top package name.
                        top = alias.name.split(".", 1)[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level and node.level > 0:
                    base = self._relative_base(node.level)
                    if base is None:
                        continue
                    mod = f"{base}.{node.module}" if node.module else base
                else:
                    mod = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{mod}.{alias.name}" if mod else alias.name
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.assigns[target.id] = node.value

    def _relative_base(self, level: int) -> Optional[str]:
        """Package name ``level`` dots up from this module, if derivable."""
        parts = self.modname.split(".")
        # level=1 -> the containing package, level=2 -> its parent, ...
        if len(parts) < level:
            return None
        return ".".join(parts[:-level]) or None


class ProjectIndex:
    """Cross-module symbol and call-graph index."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_relpath: Dict[str, ModuleInfo] = {}
        for ctx in contexts:
            info = ModuleInfo(ctx)
            self.modules[info.modname] = info
            self.by_relpath[info.relpath] = info
        #: caller fq -> set of callee fqs
        self.calls: Dict[str, Set[str]] = {}
        #: callee fq -> list of (caller ModuleInfo, caller fn node or None,
        #: the Call node) for argument tracing
        self.callers: Dict[str, List[Tuple[ModuleInfo, Optional[FuncNode], ast.Call]]]
        self.callers = {}
        self._build_call_graph()

    # ------------------------------------------------------------- #
    # name resolution
    # ------------------------------------------------------------- #
    def resolve_name(
        self, info: ModuleInfo, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a (possibly dotted) local name to a fully-qualified one.

        Follows import aliases and ``from x import y`` chains through
        package ``__init__`` re-exports.  Returns None for names that do
        not lead to an indexed module.
        """
        if _depth > 8:
            return None
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in info.imports:
            target = info.imports[head]
        elif head in info.functions or head in info.classes:
            target = f"{info.modname}.{head}"
        elif head in info.assigns:
            alias = info.assigns[head]
            alias_name = dotted_name(alias)
            if alias_name is not None:
                resolved = self.resolve_name(info, alias_name, _depth + 1)
                if resolved is not None:
                    target = resolved
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonicalize(full, _depth)

    def _canonicalize(self, fq: str, _depth: int = 0) -> Optional[str]:
        """Chase re-export chains until ``fq`` names a real definition."""
        if _depth > 8:
            return fq
        # Split fq into the longest module prefix we know + remainder.
        parts = fq.split(".")
        for cut in range(len(parts), 0, -1):
            mod = ".".join(parts[:cut])
            info = self.modules.get(mod)
            if info is None:
                continue
            rest = parts[cut:]
            if not rest:
                return fq
            # Resolve the first remainder segment inside that module.
            head = rest[0]
            if head in info.functions or head in info.classes:
                return fq
            if head in info.imports:
                rebased = info.imports[head]
                tail = ".".join(rest[1:])
                rebuilt = f"{rebased}.{tail}" if tail else rebased
                return self._canonicalize(rebuilt, _depth + 1)
            if head in info.assigns:
                alias_name = dotted_name(info.assigns[head])
                if alias_name is not None:
                    resolved = self.resolve_name(info, alias_name, _depth + 1)
                    if resolved is not None:
                        tail = ".".join(rest[1:])
                        return self._canonicalize(
                            f"{resolved}.{tail}" if tail else resolved, _depth + 1
                        )
            return fq
        return fq

    def lookup_function(self, fq: Optional[str]) -> Optional[FunctionRecord]:
        """The FunctionRecord a fully-qualified name denotes, if indexed."""
        if fq is None:
            return None
        parts = fq.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            info = self.modules.get(mod)
            if info is None:
                continue
            local = ".".join(parts[cut:])
            rec = info.functions.get(local)
            if rec is not None:
                return rec
            return None
        return None

    def resolve_call_target(
        self, info: ModuleInfo, func: ast.expr, enclosing_class: Optional[str] = None
    ) -> Optional[FunctionRecord]:
        """Resolve a Call's ``func`` expression to an indexed function."""
        if isinstance(func, ast.Name):
            return self.lookup_function(self.resolve_name(info, func.id))
        if isinstance(func, ast.Attribute):
            # self.method() -> a method of the enclosing class
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and enclosing_class is not None
            ):
                return info.functions.get(f"{enclosing_class}.{func.attr}")
            name = dotted_name(func)
            if name is not None:
                return self.lookup_function(self.resolve_name(info, name))
        return None

    # ------------------------------------------------------------- #
    # call graph
    # ------------------------------------------------------------- #
    def _build_call_graph(self) -> None:
        for info in self.modules.values():
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller_fn = info.ctx.enclosing_function(node)
                caller_qual = info.ctx.qualname(node)
                enclosing_class = _class_of_qualname(caller_qual)
                rec = self.resolve_call_target(info, node.func, enclosing_class)
                if rec is None:
                    continue
                caller_fq = (
                    f"{info.modname}.{caller_qual}"
                    if caller_qual != "<module>"
                    else info.modname
                )
                self.calls.setdefault(caller_fq, set()).add(rec.fq)
                self.callers.setdefault(rec.fq, []).append(
                    (info, caller_fn, node)
                )

    def reachable_from(self, roots: Sequence[str], max_depth: int = 16) -> Set[str]:
        """Function fqs reachable from ``roots`` through the call graph."""
        seen: Set[str] = set(roots)
        frontier = list(roots)
        depth = 0
        while frontier and depth < max_depth:
            nxt: List[str] = []
            for fq in frontier:
                for callee in self.calls.get(fq, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            frontier = nxt
            depth += 1
        return seen

    def iter_functions(self) -> Iterator[FunctionRecord]:
        """Every indexed function across every module."""
        for info in self.modules.values():
            yield from info.functions.values()


def dotted_name(expr: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as a dotted string, else None."""
    parts: List[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _class_of_qualname(qual: str) -> Optional[str]:
    """Class name a ``Class.method``-style qualname belongs to, if any."""
    if qual == "<module>" or "." not in qual:
        return None
    return qual.rsplit(".", 1)[0]


class ProjectContext:
    """What a project-scope rule sees: the index plus shared summaries."""

    def __init__(self, index: ProjectIndex, config: LintConfig) -> None:
        self.index = index
        self.config = config
        self._return_dtypes: Dict[str, str] = {}
        self._in_flight: Set[str] = set()
        self._flows: Dict[Tuple[str, int], FunctionDataflow] = {}
        self._dispatch_cache: Optional[List["DispatchSite"]] = None

    # ------------------------------------------------------------- #
    # dtype summaries
    # ------------------------------------------------------------- #
    def return_dtype(self, rec: FunctionRecord) -> str:
        """Memoized inferred return dtype of an indexed function."""
        if rec.fq in self._return_dtypes:
            return self._return_dtypes[rec.fq]
        if rec.fq in self._in_flight:           # recursion guard
            return "unknown"
        self._in_flight.add(rec.fq)
        try:
            flow = self.function_flow(rec)
            out = flow.return_dtype
        finally:
            self._in_flight.discard(rec.fq)
        self._return_dtypes[rec.fq] = out
        return out

    def function_flow(
        self,
        rec: FunctionRecord,
        tracked_none_params: Optional[Sequence[str]] = None,
    ) -> FunctionDataflow:
        """Dataflow results for one function, with project call resolution."""
        key = (rec.fq, id(rec.node))
        if tracked_none_params is None and key in self._flows:
            return self._flows[key]
        info = rec.module
        flow = analyze_function(
            rec.node,
            dtype_namer=lambda e, c=info.ctx: _dtype_namer(c, e),
            call_resolver=lambda call, i=info, q=rec.qualname: self._resolve_call_dtype(
                i, call, _class_of_qualname(q)
            ),
            tracked_none_params=tracked_none_params,
        )
        if tracked_none_params is None:
            self._flows[key] = flow
        return flow

    def module_flow(self, info: ModuleInfo) -> FunctionDataflow:
        """Dataflow over a module's top-level statements."""
        key = (info.modname, id(info.ctx.tree))
        if key in self._flows:
            return self._flows[key]
        flow = FunctionDataflow(
            info.ctx.tree.body,
            dtype_namer=lambda e, c=info.ctx: _dtype_namer(c, e),
            call_resolver=lambda call, i=info: self._resolve_call_dtype(i, call, None),
        ).run()
        self._flows[key] = flow
        return flow

    def _resolve_call_dtype(
        self, info: ModuleInfo, call: ast.Call, enclosing_class: Optional[str]
    ) -> Optional[str]:
        rec = self.index.resolve_call_target(info, call.func, enclosing_class)
        if rec is None:
            return None
        dt = self.return_dtype(rec)
        return dt if dt != "unknown" else None

    # ------------------------------------------------------------- #
    # executor dispatch discovery (shared by DCL012/DCL013)
    # ------------------------------------------------------------- #
    def dispatch_sites(self) -> List["DispatchSite"]:
        """Every recognized executor-map dispatch across the project."""
        if self._dispatch_cache is not None:
            return self._dispatch_cache
        sites: List[DispatchSite] = []
        for info in self.index.modules.values():
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_executor_map(node):
                    continue
                sites.append(
                    DispatchSite(
                        module=info,
                        call=node,
                        enclosing=info.ctx.enclosing_function(node),
                        qualname=info.ctx.qualname(node),
                    )
                )
        self._dispatch_cache = sites
        return sites

    def task_function_fqs(self) -> Set[str]:
        """Fqs of functions dispatched as executor tasks anywhere."""
        out: Set[str] = set()
        for site in self.dispatch_sites():
            task = site.call.args[0]
            name = dotted_name(task)
            if name is None:
                continue
            rec = self.index.lookup_function(
                self.index.resolve_name(site.module, name)
            )
            if rec is not None:
                out.add(rec.fq)
        return out


class DispatchSite:
    """One ``executor.map(task, items)``-shaped call site."""

    def __init__(
        self,
        module: ModuleInfo,
        call: ast.Call,
        enclosing: Optional[FuncNode],
        qualname: str,
    ) -> None:
        self.module = module
        self.call = call
        self.enclosing = enclosing
        self.qualname = qualname


def _is_executor_map(node: ast.Call) -> bool:
    """Heuristic: a ``.map(fn, items)`` call on an executor-ish receiver.

    Receivers count when they are named like executors (``executor``,
    ``ex``), are produced by an executor factory call
    (``make_executor`` / ``_get_executor`` / ``_executor``), or when the
    call carries the DomainExecutor contract's ``label=`` keyword.
    """
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "map"):
        return False
    if len(node.args) < 2:
        return False
    if any(kw.arg == "label" for kw in node.keywords):
        return True
    recv = func.value
    if isinstance(recv, ast.Name):
        rid = recv.id.lower()
        return rid in ("ex", "pool") or "executor" in rid
    if isinstance(recv, ast.Attribute):
        return "executor" in recv.attr.lower()
    if isinstance(recv, ast.Call):
        inner = recv.func
        name = None
        if isinstance(inner, ast.Name):
            name = inner.id
        elif isinstance(inner, ast.Attribute):
            name = inner.attr
        return name is not None and "executor" in name.lower()
    return False


def _dtype_namer(ctx: ModuleContext, expr: ast.expr) -> Optional[str]:
    """Shared namer: numpy call names AND textual dtype targets.

    For Call ``func`` expressions this returns the numpy function name
    ("zeros", "random.default_rng"); for dtype expressions it returns
    the dtype text ("float32").  Both go through the module's import
    alias table so ``import numpy as xp`` still resolves.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value.strip()
    if isinstance(expr, ast.Name):
        resolved = ctx.from_numpy_names.get(expr.id)
        if resolved is not None:
            return resolved
        return expr.id if expr.id in ("float", "int", "complex", "bool") else None
    name = ctx.numpy_call_name(expr)
    if name is not None:
        return name
    if isinstance(expr, ast.Attribute):
        # np.float32 as a dtype target resolves like a call name would.
        return ctx.numpy_call_name(expr)
    return None


def build_project(
    contexts: Sequence[ModuleContext], config: LintConfig
) -> ProjectContext:
    """Index every module and wrap the result for the project rules."""
    return ProjectContext(ProjectIndex(contexts), config)
