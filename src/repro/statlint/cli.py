"""Command-line interface: ``python -m repro.statlint``.

Exit codes: 0 = clean (or all findings baselined / sub-error severity),
1 = new error-severity findings, 2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.statlint.baseline import Baseline, apply_baseline
from repro.statlint.config import LintConfig
from repro.statlint.engine import LintResult, lint_paths
from repro.statlint.output import render_json, render_sarif, render_text
from repro.statlint.rules import ALL_RULES, rule_codes

_FORMATS = ("text", "json", "sarif")


def build_parser() -> argparse.ArgumentParser:
    """The dclint argument parser (exposed for --help documentation tests)."""
    p = argparse.ArgumentParser(
        prog="python -m repro.statlint",
        description=(
            "dclint: repo-specific static analysis for numerical-kernel "
            "discipline (rules DCL001-DCL010)"
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument("--baseline", help="baseline JSON; matching findings pass")
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write all current findings to FILE as the new baseline "
        "(justifications of surviving entries are preserved) and exit 0",
    )
    p.add_argument(
        "--format", choices=_FORMATS, default="text", help="report format"
    )
    p.add_argument("--output", help="write the report here instead of stdout")
    p.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--ignore", default="", help="comma-separated rule codes to skip"
    )
    p.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="DCLnnn=LEVEL",
        help="override a rule's severity (error|warning|note); repeatable",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    return p


def _parse_codes(raw: str) -> tuple:
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def _list_rules() -> str:
    lines = ["dclint rule set:"]
    for r in ALL_RULES:
        scope = getattr(r, "scope_attr", None) or "all files"
        lines.append(f"  {r.code}  {r.name:<22} {r.summary}")
        lines.append(f"          scope: {scope}; protects: {r.paper_ref}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run dclint over the given argv; returns the process exit code."""
    parser = build_parser()
    ns = parser.parse_args(argv)

    if ns.list_rules:
        print(_list_rules())
        return 0

    known = set(rule_codes())
    select = _parse_codes(ns.select)
    ignore = _parse_codes(ns.ignore)
    for code in (*select, *ignore):
        if code not in known:
            parser.error(f"unknown rule {code}; known: {', '.join(sorted(known))}")
    try:
        severities = LintConfig.parse_severity_overrides(ns.severity)
    except ValueError as exc:
        parser.error(str(exc))
    for code in severities:
        if code not in known:
            parser.error(f"unknown rule {code} in --severity")

    config = LintConfig(select=select, ignore=ignore, severities=severities)

    missing = [p for p in ns.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    result: LintResult = lint_paths(ns.paths, config)

    if ns.write_baseline:
        previous = None
        prev_path = Path(ns.write_baseline)
        if prev_path.exists():
            previous = Baseline.load(prev_path)
        elif ns.baseline and Path(ns.baseline).exists():
            previous = Baseline.load(ns.baseline)
        Baseline.from_findings(result.findings, previous).save(ns.write_baseline)
        print(
            f"dclint: wrote {len(result.findings)} finding(s) to "
            f"{ns.write_baseline}"
        )
        return 0

    baseline = None
    if ns.baseline:
        try:
            baseline = Baseline.load(ns.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"dclint: cannot load baseline {ns.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        apply_baseline(result, baseline)

    renderers = {
        "text": render_text,
        "json": render_json,
        "sarif": render_sarif,
    }
    report = renderers[ns.format](result, baseline)
    if ns.output:
        Path(ns.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
