"""Command-line interface: ``python -m repro.statlint``.

Configuration precedence is CLI > ``[tool.statlint]`` in the nearest
pyproject.toml above the linted tree > built-in defaults, resolved
per field (a CLI ``--select`` overrides a pyproject ``select`` list;
severity overrides merge with the CLI winning per rule code).

Exit codes: 0 = clean (or all findings baselined / sub-error severity),
1 = new error-severity findings, 2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.statlint.baseline import Baseline, apply_baseline
from repro.statlint.config import (
    LintConfig,
    config_from_settings,
    find_pyproject,
    load_pyproject_settings,
)
from repro.statlint.engine import LintResult, lint_paths
from repro.statlint.output import render_json, render_sarif, render_text
from repro.statlint.rules import all_rules, rule_codes

_FORMATS = ("text", "json", "sarif")


def build_parser() -> argparse.ArgumentParser:
    """The dclint argument parser (exposed for --help documentation tests)."""
    p = argparse.ArgumentParser(
        prog="python -m repro.statlint",
        description=(
            "dclint: repo-specific static analysis for numerical-kernel "
            "discipline (per-module rules DCL001-DCL011 and DCL016 plus the "
            "project-wide dataflow rules DCL012-DCL015)"
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument("--baseline", help="baseline JSON; matching findings pass")
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write all current findings to FILE as the new baseline "
        "(justifications of surviving entries are preserved; entries for "
        "rules excluded by --select/--ignore are kept verbatim) and exit 0",
    )
    p.add_argument(
        "--format", choices=_FORMATS, default="text", help="report format"
    )
    p.add_argument("--output", help="write the report here instead of stdout")
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--ignore", default=None, help="comma-separated rule codes to skip"
    )
    p.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="DCLnnn=LEVEL",
        help="override a rule's severity (error|warning|note); repeatable",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parse/lint files with N worker processes (0 = one per CPU; "
        "default 1 = serial); output is byte-identical to a serial run",
    )
    p.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help="incremental-cache JSON keyed by content fingerprints; "
        "unchanged files (and an unchanged project) skip re-analysis",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any cache configured in pyproject.toml",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    return p


def _parse_codes(raw: str) -> Tuple[str, ...]:
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def _list_rules() -> str:
    lines = ["dclint rule set:"]
    for r in all_rules():
        scope = getattr(r, "scope_attr", None) or "all files"
        kind = "project-wide" if getattr(r, "project", False) else "per-module"
        lines.append(f"  {r.code}  {r.name:<22} {r.summary}")
        lines.append(
            f"          kind: {kind}; scope: {scope}; protects: {r.paper_ref}"
        )
    return "\n".join(lines)


def _resolve_config(
    ns: argparse.Namespace, parser: argparse.ArgumentParser
) -> LintConfig:
    """Merge CLI flags over pyproject settings over defaults, per field."""
    settings: Dict[str, object] = {}
    pyproject = find_pyproject(ns.paths)
    if pyproject is not None:
        try:
            settings = config_from_settings(load_pyproject_settings(pyproject))
        except ValueError as exc:
            parser.error(str(exc))

    known = set(rule_codes())
    select = (
        _parse_codes(ns.select)
        if ns.select is not None
        else tuple(settings.get("select", ()))  # type: ignore[arg-type]
    )
    ignore = (
        _parse_codes(ns.ignore)
        if ns.ignore is not None
        else tuple(settings.get("ignore", ()))  # type: ignore[arg-type]
    )
    for code in (*select, *ignore):
        if code not in known:
            parser.error(
                f"unknown rule {code}; known: {', '.join(sorted(known))}"
            )

    severities: Dict[str, str] = dict(settings.get("severities", {}))  # type: ignore[arg-type]
    try:
        severities.update(LintConfig.parse_severity_overrides(ns.severity))
    except ValueError as exc:
        parser.error(str(exc))
    for code in severities:
        if code not in known:
            parser.error(f"unknown rule {code} in severity overrides")

    jobs = ns.jobs if ns.jobs is not None else int(settings.get("jobs", 1))  # type: ignore[arg-type]
    if jobs < 0:
        parser.error("--jobs must be >= 0")
    cache = ns.cache if ns.cache is not None else settings.get("cache")
    if ns.no_cache:
        cache = None
    baseline = (
        ns.baseline if ns.baseline is not None else settings.get("baseline")
    )

    return LintConfig(
        select=select,
        ignore=ignore,
        severities=severities,
        jobs=jobs,
        cache=str(cache) if cache is not None else None,
        baseline=str(baseline) if baseline is not None else None,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run dclint over the given argv; returns the process exit code."""
    parser = build_parser()
    ns = parser.parse_args(argv)

    if ns.list_rules:
        print(_list_rules())
        return 0

    config = _resolve_config(ns, parser)

    missing = [p for p in ns.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    result: LintResult = lint_paths(
        ns.paths, config, jobs=config.jobs, cache_path=config.cache
    )

    if ns.write_baseline:
        previous = None
        prev_path = Path(ns.write_baseline)
        if prev_path.exists():
            previous = Baseline.load(prev_path)
        elif config.baseline and Path(config.baseline).exists():
            previous = Baseline.load(config.baseline)
        covered = {r.code for r in all_rules() if config.rule_enabled(r.code)}
        Baseline.from_findings(
            result.findings, previous, covered_rules=covered
        ).save(ns.write_baseline)
        print(
            f"dclint: wrote {len(result.findings)} finding(s) to "
            f"{ns.write_baseline}"
        )
        return 0

    baseline = None
    if config.baseline:
        try:
            baseline = Baseline.load(config.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"dclint: cannot load baseline {config.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        apply_baseline(result, baseline)

    renderers = {
        "text": render_text,
        "json": render_json,
        "sarif": render_sarif,
    }
    report = renderers[ns.format](result, baseline)
    if ns.output:
        Path(ns.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
