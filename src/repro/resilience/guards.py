"""Typed numerical health guards for the propagation hot loops.

Long NAQMD trajectories fail numerically long before they fail loudly: a
NaN from an overflowed exponential silently propagates through every
subsequent kernel, orbital norms drift when the Suzuki-Trotter angle is
pushed too far, and a diverging SCF shows up as an exploding band
energy.  :class:`HealthGuard` checks all three at a configurable cadence
and raises a *typed* exception so the run supervisor can distinguish
"retry from checkpoint" from "abort":

* :class:`NumericalDivergenceError` -- non-finite values in orbitals,
  positions, velocities or occupations;
* :class:`NormDriftError` -- orbital norms strayed from unity beyond
  tolerance (the propagator is unitary to round-off, so drift means the
  splitting broke down);
* :class:`EnergyDriftError` -- band energy non-finite, beyond an
  absolute cap, or jumping by more than a relative tolerance in one MD
  step;
* :class:`SCFDivergenceError` -- the SCF cycle itself diverged (also
  the exception type raised by the ``qxmd.scf_diverge`` fault site).

Guards only *read* state; with no guard installed the simulation output
is bit-identical to unguarded behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # layering: resilience never imports core/lfd at runtime
    from repro.core.mesh import DCMESHSimulation, MDStepRecord
    from repro.lfd.wavefunction import WaveFunctionSet


class NumericalHealthError(RuntimeError):
    """Base class of every guard-raised condition (supervisor-recoverable)."""


class NumericalDivergenceError(NumericalHealthError):
    """Non-finite values appeared in simulation state."""


class NormDriftError(NumericalHealthError):
    """Orbital norms drifted from unity beyond tolerance."""


class EnergyDriftError(NumericalHealthError):
    """Total/band energy diverged or jumped beyond tolerance."""


class SCFDivergenceError(NumericalHealthError):
    """The self-consistent-field iteration diverged."""


@dataclass
class GuardConfig:
    """Cadence and tolerances of the numerical health checks.

    Attributes
    ----------
    check_every:
        QD sub-step cadence of the in-propagator checks (1 = every
        sub-step; larger values amortize the reduction cost).
    norm_tol:
        Allowed absolute deviation of any orbital norm from 1.
    energy_rel_tol:
        Allowed relative band-energy change per MD step.  Laser-driven
        runs legitimately pump energy, so the default is generous; it
        exists to catch explosions, not physics.
    max_abs_energy:
        Absolute band-energy magnitude treated as divergence (Ha).
    """

    check_every: int = 1
    norm_tol: float = 1e-3
    energy_rel_tol: float = 1.0
    max_abs_energy: float = 1e6
    check_orbitals: bool = True
    check_norms: bool = True
    check_energy: bool = True

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError("check_every must be at least 1")
        if self.norm_tol <= 0 or self.energy_rel_tol <= 0:
            raise ValueError("tolerances must be positive")
        if self.max_abs_energy <= 0:
            raise ValueError("max_abs_energy must be positive")


class HealthGuard:
    """Stateful checker attached to a simulation and/or a QD propagator."""

    def __init__(self, config: Optional[GuardConfig] = None) -> None:
        self.config = config if config is not None else GuardConfig()
        self.checks_run = 0
        self._e_prev: Optional[float] = None

    # -- primitive checks ------------------------------------------------ #
    def check_array(self, arr: np.ndarray, name: str) -> None:
        """Raise :class:`NumericalDivergenceError` on any non-finite entry."""
        self.checks_run += 1
        if not np.all(np.isfinite(arr)):
            bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
            raise NumericalDivergenceError(
                f"{name}: {bad} non-finite value(s) detected"
            )

    def check_wavefunction(self, wf: "WaveFunctionSet", where: str = "") -> None:
        """Finiteness + norm-drift check of one wave-function set."""
        ctx = f" at {where}" if where else ""
        if self.config.check_orbitals:
            self.check_array(wf.psi, f"orbitals{ctx}")
        if self.config.check_norms:
            self.checks_run += 1
            norms = wf.norms()
            drift = float(np.max(np.abs(norms - 1.0)))
            if drift > self.config.norm_tol:
                worst = int(np.argmax(np.abs(norms - 1.0)))
                raise NormDriftError(
                    f"orbital {worst}{ctx}: norm {norms[worst]:.6g} "
                    f"drifted {drift:.3g} > tol {self.config.norm_tol:.3g}"
                )

    def check_energy(self, energy: float, step: int) -> None:
        """Band-energy finiteness, magnitude and per-step jump check."""
        if not self.config.check_energy:
            return
        self.checks_run += 1
        if not np.isfinite(energy):
            raise EnergyDriftError(f"step {step}: band energy is non-finite")
        if abs(energy) > self.config.max_abs_energy:
            raise EnergyDriftError(
                f"step {step}: |E_band| = {abs(energy):.3g} exceeds "
                f"{self.config.max_abs_energy:.3g} Ha"
            )
        if self._e_prev is not None:
            scale = max(1.0, abs(self._e_prev))
            jump = abs(energy - self._e_prev) / scale
            if jump > self.config.energy_rel_tol:
                raise EnergyDriftError(
                    f"step {step}: band energy jumped {jump:.3g} (rel) "
                    f"> tol {self.config.energy_rel_tol:.3g} "
                    f"({self._e_prev:.6g} -> {energy:.6g} Ha)"
                )
        self._e_prev = float(energy)

    def reset_energy_reference(self) -> None:
        """Forget the previous-step energy (call after a restore)."""
        self._e_prev = None

    # -- composite checks ------------------------------------------------ #
    def check_md_step(self, sim: "DCMESHSimulation", record: "MDStepRecord") -> None:
        """Full health check after one MD step of a DC-MESH simulation."""
        step = record.step
        self.check_array(sim.md_state.positions, f"step {step}: positions")
        self.check_array(sim.md_state.velocities, f"step {step}: velocities")
        for st in sim.dc.states:
            self.check_array(
                st.occupations, f"step {step}: occupations[{st.domain.alpha}]"
            )
        self.check_energy(record.band_energy, step)
