"""Liveness primitives: deadline budgets, retry budgets, circuit breaker.

PR 4's process backend self-heals a SIGKILLed worker, but a *wedged*
worker (deadlocked kernel, livelocked IPC, NFS stall) previously blocked
``map`` forever -- at scale, slow/stuck ranks dominate the failure
distribution, not clean crashes.  This module provides the three
bounded-waiting primitives the rest of the stack builds on:

* :class:`Deadline` / :func:`deadline_scope` / :func:`check_deadline` --
  a wall-clock budget carried on a process-global scope stack.  Hot
  paths call :func:`check_deadline` at natural yield points (between
  executor map items, between dispatch rounds); with no scope armed that
  is one module-global ``None`` check, mirroring the zero-overhead
  discipline of :func:`repro.resilience.faults.fault_point`.  Expiry
  raises :class:`DeadlineExceeded`, which the
  :class:`~repro.resilience.supervisor.RunSupervisor` treats as
  recoverable (restore the newest checkpoint, relax the budget, replay).
* :class:`RetryBudget` -- a total cap on recoveries across a whole run,
  replacing the per-segment-only bound (a run alternating failures
  between segments could previously retry forever).
* :class:`CircuitBreaker` -- trips after ``threshold`` consecutive
  faults without a single completed segment; an open breaker converts
  "retry again" into a fast abort so a persistently failing run stops
  burning allocation instead of looping.

All three are NumPy-free and import nothing from ``repro.core``, so the
executor backends can import them without layering cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional


class DeadlineExceeded(RuntimeError):
    """A deadline-scoped phase overran its wall-clock budget.

    Supervisor-recoverable: the run restores its newest checkpoint and
    replays the segment, optionally with a relaxed budget
    (``SupervisorConfig.deadline_growth``).
    """

    def __init__(self, where: str, budget_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"{where}: exceeded deadline budget of {budget_s:.3g}s "
            f"(elapsed {elapsed_s:.3g}s)"
        )
        self.where = where
        self.budget_s = float(budget_s)
        self.elapsed_s = float(elapsed_s)


class Deadline:
    """One armed wall-clock budget (monotonic-clock based)."""

    def __init__(self, budget_s: float, where: str = "deadline") -> None:
        if budget_s < 0:
            raise ValueError("budget_s must be non-negative")
        self.budget_s = float(budget_s)
        self.where = where
        self.t0 = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.monotonic() - self.t0

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() < 0.0

    def check(self, where: Optional[str] = None) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        elapsed = self.elapsed()
        if elapsed > self.budget_s:
            raise DeadlineExceeded(where or self.where, self.budget_s, elapsed)


#: The armed deadline stack (outermost first).  A plain module global --
#: worker threads of the thread backend must observe the main thread's
#: scope, which thread-local storage would hide.
_SCOPES: List[Deadline] = []


def active_deadline() -> Optional[Deadline]:
    """The innermost armed deadline, or None (the common case)."""
    if not _SCOPES:
        return None
    return _SCOPES[-1]


def check_deadline(where: str = "work") -> None:
    """Hot-path hook: raise if any armed deadline scope has expired.

    With no scope armed this is one truthiness check on a module global,
    so instrumented loops pay essentially nothing (gated by
    ``BENCH_chaos.json``).
    """
    if not _SCOPES:
        return
    for scope in _SCOPES:
        scope.check(where)


@contextmanager
def deadline_scope(
    budget_s: Optional[float], where: str = "deadline"
) -> Iterator[Optional[Deadline]]:
    """Arm a wall-clock budget for the enclosed block.

    ``budget_s=None`` is a no-op scope (the disarmed fast path), so
    callers can thread an optional budget without branching.  Scopes
    nest; :func:`check_deadline` enforces every armed level, so an inner
    scope can never outlive its enclosing budget.
    """
    if budget_s is None:
        yield None
        return
    scope = Deadline(budget_s, where)
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.remove(scope)


class RetryBudget:
    """A total recovery budget across an entire supervised run.

    ``budget=None`` means unbounded (legacy behaviour); otherwise each
    :meth:`consume` spends one retry and returns False once the budget
    is gone, converting an endless heal-fail loop into a clean abort.
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 0:
            raise ValueError("retry budget must be non-negative")
        self.budget = budget
        self.spent = 0

    @property
    def remaining(self) -> Optional[int]:
        """Retries left, or None when unbounded."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.spent)

    @property
    def exhausted(self) -> bool:
        """Whether the budget has been fully spent."""
        return self.budget is not None and self.spent >= self.budget

    def consume(self) -> bool:
        """Spend one retry; False when the budget was already exhausted."""
        if self.exhausted:
            return False
        self.spent += 1
        return True


class CircuitBreaker:
    """Consecutive-failure breaker over supervised segments.

    Counts faults since the last *completed* segment; at ``threshold``
    consecutive failures the breaker opens and stays open (the
    supervisor aborts instead of retrying).  ``threshold=0`` disables
    the breaker entirely.  Unlike per-segment ``max_retries``, the
    counter survives segment boundaries, so a run that limps forward
    one step per N failures still trips eventually.
    """

    def __init__(self, threshold: int = 0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = int(threshold)
        self.consecutive_failures = 0

    @property
    def enabled(self) -> bool:
        """Whether a non-zero threshold was configured."""
        return self.threshold > 0

    @property
    def open(self) -> bool:
        """Whether the breaker has tripped (no further retries allowed)."""
        return self.enabled and self.consecutive_failures >= self.threshold

    def record_failure(self) -> None:
        """Count one fault toward the trip threshold."""
        self.consecutive_failures += 1

    def record_success(self) -> None:
        """A segment completed; reset the consecutive-failure count."""
        self.consecutive_failures = 0
