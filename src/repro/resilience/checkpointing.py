"""Hardened checkpointing: atomic writes, integrity digests, rotation.

The plain :mod:`repro.core.checkpoint` format is a single ``.npz`` that
is written in place -- a crash mid-write leaves a truncated archive, and
a bit flip on disk is only discovered (if ever) as a cryptic ``zlib``
error at restart.  Production resilience needs three properties:

* **atomicity** -- the archive is written to a hidden temporary file in
  the same directory and published with ``os.replace``, so a checkpoint
  either exists completely or not at all;
* **integrity** -- a SHA-256 digest of the archive is stored in an
  atomically written JSON sidecar (``<name>.json``) and verified before
  any state is loaded, so corruption is detected *before* it can poison
  a restart;
* **rotation** -- the last ``keep`` generations are retained
  (``ckpt-<step>.npz``), so a corrupt newest checkpoint degrades to the
  previous generation instead of ending the run.

The ``checkpoint.corrupt`` fault site fires *after* the archive is
published but records the digest of the good bytes, reproducing exactly
the failure mode the verification is designed to catch.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import re
from typing import TYPE_CHECKING, Dict, List, Protocol, Union, cast

if TYPE_CHECKING:  # layering: resilience never imports core at runtime
    from repro.core.mesh import DCMESHSimulation

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.atomicio import atomic_write_text, fsync_directory
from repro.resilience.faults import fault_point

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointableRun(Protocol):
    """Structural contract of anything this module can checkpoint.

    :class:`~repro.core.mesh.DCMESHSimulation` satisfies it implicitly
    (its state is archived by :mod:`repro.core.checkpoint`); other run
    objects -- e.g. the trajectory-ensemble engine's partial-ensemble
    state -- opt in by providing ``save_state(path)`` / ``load_state(path)``
    methods, which :func:`write_checkpoint` / :func:`load_verified`
    prefer over the mesh-specific archiver.
    """

    step_count: int
    time: float


def _save_state(sim: CheckpointableRun, path: pathlib.Path) -> None:
    """Archive ``sim``; duck-dispatches to ``sim.save_state`` when present."""
    saver = getattr(sim, "save_state", None)
    if callable(saver):
        saver(path)
    else:
        save_checkpoint(cast("DCMESHSimulation", sim), path)


def _load_state(sim: CheckpointableRun, path: Union[str, pathlib.Path]) -> None:
    """Restore ``sim``; duck-dispatches to ``sim.load_state`` when present."""
    loader = getattr(sim, "load_state", None)
    if callable(loader):
        loader(path)
    else:
        load_checkpoint(cast("DCMESHSimulation", sim), path)


class CheckpointCorruptError(RuntimeError):
    """A checkpoint failed integrity verification (or lost its sidecar)."""


def _sha256(path: pathlib.Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Sidecar writes ride the fsync'd atomic writer of ``atomicio``."""
    atomic_write_text(path, text)


def checkpoint_path(directory: Union[str, pathlib.Path], step: int) -> pathlib.Path:
    """Canonical archive path of the generation written at MD step ``step``."""
    return pathlib.Path(directory) / f"ckpt-{step:08d}.npz"


def sidecar_path(path: Union[str, pathlib.Path]) -> pathlib.Path:
    """The integrity-metadata sidecar of an archive path."""
    path = pathlib.Path(path)
    return path.with_name(path.name + ".json")


def list_checkpoints(directory: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """All checkpoint generations in ``directory``, oldest first."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    found = [p for p in directory.iterdir() if _CKPT_RE.match(p.name)]
    return sorted(found, key=lambda p: int(_CKPT_RE.match(p.name).group(1)))


def _corrupt_file(path: pathlib.Path, offset: int, nbytes: int) -> None:
    """Deterministically flip ``nbytes`` bytes of ``path`` at ``offset``."""
    size = path.stat().st_size
    offset = min(max(offset, 0), max(size - 1, 0))
    nbytes = max(1, min(nbytes, size - offset))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        chunk = fh.read(nbytes)
        fh.seek(offset)
        fh.write(bytes(b ^ 0xFF for b in chunk))


def write_checkpoint(
    sim: CheckpointableRun, directory: Union[str, pathlib.Path], keep: int = 3
) -> pathlib.Path:
    """Atomically write one checkpoint generation; rotate to ``keep``.

    Returns the published archive path.  The digest sidecar always
    describes the *intended* bytes, so a post-publish corruption (crash,
    bit rot, or the ``checkpoint.corrupt`` fault site) is caught by
    :func:`verify_checkpoint` at load time.
    """
    if keep < 1:
        raise ValueError("keep must be at least 1")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = checkpoint_path(directory, sim.step_count)
    tmp = directory / f".tmp-{final.name}"
    spec = fault_point("checkpoint.enospc")
    if spec is not None:
        # Disk full before a single archive byte lands: the previous
        # generations (and any existing file at ``final``) stay intact.
        raise OSError(errno.ENOSPC,
                      "No space left on device (injected fault)", str(final))
    try:
        _save_state(sim, tmp)
        meta: Dict = {
            "step": int(sim.step_count),
            "time": float(sim.time),
            "sha256": _sha256(tmp),
            "nbytes": tmp.stat().st_size,
        }
        os.replace(tmp, final)
    except BaseException:
        # A failed write (real ENOSPC included) never leaves temp litter
        # and never touches the published generations.
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(directory)
    _atomic_write_text(sidecar_path(final), json.dumps(meta, indent=1))

    spec = fault_point("checkpoint.torn_write")
    if spec is not None:
        # A torn archive: published bytes truncated after the sidecar
        # recorded the intended digest (verification catches this and
        # falls back a generation).
        frac = float(spec.payload.get("keep_fraction", 0.5))
        frac = min(max(frac, 0.0), 1.0)
        os.truncate(final, int(final.stat().st_size * frac))
    spec = fault_point("checkpoint.corrupt")
    if spec is not None:
        _corrupt_file(
            final,
            offset=int(spec.payload.get("offset", 64)),
            nbytes=int(spec.payload.get("nbytes", 32)),
        )

    for old in list_checkpoints(directory)[:-keep]:
        old.unlink(missing_ok=True)
        sidecar_path(old).unlink(missing_ok=True)
    return final


def verify_checkpoint(path: Union[str, pathlib.Path]) -> Dict:
    """Check a checkpoint's digest; returns its sidecar metadata.

    Raises :class:`CheckpointCorruptError` when the sidecar is missing,
    unreadable, or the archive bytes do not hash to the recorded digest.
    """
    path = pathlib.Path(path)
    side = sidecar_path(path)
    if not path.is_file():
        raise CheckpointCorruptError(f"checkpoint {path} does not exist")
    if not side.is_file():
        raise CheckpointCorruptError(f"checkpoint {path} has no digest sidecar")
    try:
        meta = json.loads(side.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"unreadable sidecar {side}: {exc}") from exc
    digest = _sha256(path)
    if digest != meta.get("sha256"):
        raise CheckpointCorruptError(
            f"checkpoint {path.name} failed integrity check: "
            f"sha256 {digest[:12]}... != recorded {str(meta.get('sha256'))[:12]}..."
        )
    return meta


def load_verified(sim: CheckpointableRun, path: Union[str, pathlib.Path]) -> Dict:
    """Verify integrity, then restore the checkpoint into ``sim``."""
    meta = verify_checkpoint(path)
    _load_state(sim, path)
    return meta


def restore_newest_verified(
    sim: CheckpointableRun, directory: Union[str, pathlib.Path]
) -> "tuple[pathlib.Path, Dict, List[pathlib.Path]]":
    """Restore the newest generation that passes verification.

    Walks the rotation newest-first, skipping generations that fail
    their digest check (torn archive, bit rot), and restores the first
    one that verifies.  Returns ``(path, sidecar metadata, skipped)``
    where ``skipped`` lists the corrupt newer generations (newest
    first) so callers can log the degradation.  Raises
    :class:`CheckpointCorruptError` when no generation is usable.
    """
    generations = list_checkpoints(directory)
    skipped: List[pathlib.Path] = []
    for path in reversed(generations):
        try:
            meta = load_verified(sim, path)
        except CheckpointCorruptError:
            skipped.append(path)
            continue
        return path, meta, skipped
    raise CheckpointCorruptError(
        f"no usable checkpoint among {len(generations)} generation(s) "
        f"in {directory}"
    )
