"""Deterministic, seeded fault injection for resilience testing.

Production DC-MESH trajectories run for thousands of MD steps on
hundreds of nodes, where SCF divergence, NaN-poisoned orbitals, device
out-of-memory bursts, dropped messages and failed ranks are routine.
None of those failure paths can be tested unless they can be *provoked*
on demand, reproducibly.  This module provides that: named fault sites
are wired into the hot paths (``qxmd.scf``, ``lfd.propagator``,
``device.allocator``, ``parallel.comm``, checkpoint writing) and stay
no-ops unless a :class:`FaultPlan` is armed, so the fault-free path is a
single module-global ``None`` check.

A plan is fully deterministic: each site keeps an arrival counter and a
spec fires on an exact call index (``at_call``/``count``) or, for soak
testing, with a seeded per-arrival probability.  Two runs with the same
plan and the same workload observe the same faults.

Usage::

    from repro.resilience.faults import FaultPlan, FaultSpec, armed

    plan = FaultPlan([FaultSpec("lfd.nan", at_call=7)])
    with armed(plan):
        supervisor.run(100)      # QD sub-step 7 is NaN-poisoned
    assert plan.fired == [("lfd.nan", 7)]
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class RankFailure(RuntimeError):
    """An injected (or detected) failure of one simulated MPI rank."""

    def __init__(self, rank: int, op: str = "collective") -> None:
        super().__init__(f"rank {rank} failed during {op}")
        self.rank = int(rank)
        self.op = op


#: Every fault site wired into the codebase.  Plans naming an unknown
#: site fail fast at construction instead of silently never firing.
KNOWN_SITES: Tuple[str, ...] = (
    "qxmd.scf_diverge",    # GlobalDCSolver / scf_solve SCF iteration
    "lfd.nan",             # QDPropagator.step orbital poisoning
    "device.oom",          # DeviceAllocator.allocate OOM burst
    "comm.drop",           # SimComm.send message dropped
    "comm.dup",            # SimComm.send message duplicated
    "comm.rank_fail",      # SimComm collective rank failure
    "checkpoint.corrupt",  # resilience.checkpointing post-write corruption
    "executor.worker_crash",  # ProcessBackend worker SIGKILL mid-map
    # hang-aware fault classes (hang / slow / torn_write / enospc):
    "executor.hang",          # worker wedges mid-chunk (no heartbeats)
    "executor.slow",          # worker runs its chunk late (still beating)
    "checkpoint.torn_write",  # checkpoint archive truncated after publish
    "checkpoint.enospc",      # disk full while writing a checkpoint
    "cache.torn_write",       # tuning cache JSON published truncated
    "cache.enospc",           # disk full while saving the tuning cache
    "eventlog.torn_write",    # resilience event log line torn mid-append
    "eventlog.enospc",        # disk full while appending an event
    "artifact.torn_write",    # artifact-store npz published truncated
    "artifact.enospc",        # disk full while publishing an artifact
    "jsondoc.torn_write",     # JSON document store published truncated
    "jsondoc.enospc",         # disk full while saving a JSON document
)


@dataclass
class FaultSpec:
    """One injectable fault at a named site.

    Attributes
    ----------
    site:
        One of :data:`KNOWN_SITES`.
    at_call:
        Zero-based arrival index at the site on which to start firing.
    count:
        Number of consecutive arrivals that fire (a "burst").
    probability:
        When set, overrides the deterministic window: every arrival from
        ``at_call`` onward fires with this probability, drawn from the
        plan's seeded RNG (still reproducible run-to-run).
    payload:
        Site-specific parameters (e.g. ``{"orbital": 2}`` for ``lfd.nan``,
        ``{"rank": 3}`` for ``comm.rank_fail``, ``{"nbytes": 64}`` for
        ``checkpoint.corrupt``).
    """

    site: str
    at_call: int = 0
    count: int = 1
    probability: Optional[float] = None
    payload: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; options: {sorted(KNOWN_SITES)}"
            )
        if self.at_call < 0:
            raise ValueError("at_call must be non-negative")
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must lie in [0, 1]")


class FaultPlan:
    """A seeded collection of fault specs plus per-site arrival counters."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._calls: Dict[str, int] = {}
        #: Chronological (site, arrival_index) record of every firing.
        self.fired: List[Tuple[str, int]] = []

    def add(self, site: str, **kwargs: Any) -> "FaultPlan":
        """Append a spec (chainable): ``plan.add("lfd.nan", at_call=3)``."""
        self.specs.append(FaultSpec(site, **kwargs))
        return self

    def calls(self, site: str) -> int:
        """Arrivals observed at ``site`` so far."""
        return self._calls.get(site, 0)

    def check(self, site: str) -> Optional[FaultSpec]:
        """Record one arrival at ``site``; return the spec if a fault fires."""
        n = self._calls.get(site, 0)
        self._calls[site] = n + 1
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.probability is None:
                if spec.at_call <= n < spec.at_call + spec.count:
                    self.fired.append((site, n))
                    return spec
            elif n >= spec.at_call and self.rng.random() < spec.probability:
                self.fired.append((site, n))
                return spec
        return None

    def reset(self) -> None:
        """Rewind counters, the RNG and the firing record (keeps specs)."""
        self._calls.clear()
        self.fired.clear()
        self.rng = np.random.default_rng(self.seed)


_ACTIVE: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the active plan observed by every fault site."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def disarm() -> None:
    """Deactivate fault injection (all sites become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or None."""
    return _ACTIVE


def fault_point(site: str) -> Optional[FaultSpec]:
    """Hot-path hook: returns a firing spec, or None (the common case).

    With no plan armed this is one global read and a ``None`` check, so
    instrumented kernels pay essentially nothing.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.check(site)


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope-bound arming; restores the previously armed plan on exit."""
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        if previous is None:
            disarm()
        else:
            arm(previous)
