"""RunSupervisor: fault-tolerant execution of DC-MESH trajectories.

The supervisor wraps a :class:`~repro.core.mesh.DCMESHSimulation` and
runs it in checkpointed *segments* of ``checkpoint_every`` MD steps.
When a segment raises a recoverable fault -- a numerical health guard
(:mod:`repro.resilience.guards`), a device OOM, a simulated rank
failure, or a corrupt checkpoint -- the supervisor:

1. records a structured JSON event (fault class, message, step, retry
   count, wall time) and counts it in a :class:`~repro.perf.CounterSet`;
2. backs off exponentially in the retry count (``backoff_base`` seconds,
   0 disables sleeping -- the default for tests);
3. optionally degrades gracefully on repeated numerical divergence by
   halving ``dt_md`` or doubling ``n_qd`` (both halve the electronic
   sub-step);
4. restores the newest *verified* checkpoint, falling back to the
   previous generation when the newest fails its integrity check;
5. replays the segment, up to ``max_retries`` times before raising
   :class:`SupervisorAbort`.

Checkpoints are written with the hardened atomic/digest/rotating writer
of :mod:`repro.resilience.checkpointing`, so a crash mid-write or bit
rot on disk degrades a run instead of ending it.
"""

from __future__ import annotations

import errno
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Union

from repro.core.mesh import MDStepRecord
from repro.core.timescale import TimescaleSplit
from repro.device.allocator import DeviceMemoryError
from repro.obs import trace_span
from repro.perf.counters import CounterSet
from repro.perf.timers import Timer
from repro.resilience.checkpointing import (
    _CKPT_RE,
    CheckpointCorruptError,
    list_checkpoints,
    load_verified,
    sidecar_path,
    write_checkpoint,
)
from repro.resilience.faults import RankFailure, fault_point
from repro.resilience.guards import (
    GuardConfig,
    HealthGuard,
    NumericalHealthError,
)
from repro.resilience.liveness import (
    CircuitBreaker,
    DeadlineExceeded,
    RetryBudget,
    deadline_scope,
)

#: Exception classes the supervisor retries from a checkpoint.
RECOVERABLE = (
    NumericalHealthError,
    DeviceMemoryError,
    RankFailure,
    CheckpointCorruptError,
    DeadlineExceeded,
)


class SupervisorAbort(RuntimeError):
    """Raised when recovery is exhausted (retries or checkpoints ran out)."""


class SupervisableRun(Protocol):
    """Structural contract of a run the supervisor can drive.

    :class:`~repro.core.mesh.DCMESHSimulation` satisfies it natively;
    the trajectory-ensemble engine's
    :class:`~repro.ensemble.engine.EnsembleRun` satisfies it by treating
    one batch *round* as one "MD step" (plus ``save_state``/``load_state``
    methods that route its partial-ensemble schema through the
    checkpoint writer).  ``config`` only needs a ``timescale`` attribute
    when ``degrade_mode`` is enabled.
    """

    step_count: int
    time: float
    config: Any
    history: List[Any]
    health_guard: Any

    def md_step(self) -> Any:
        """Advance the run by one supervisable unit of work."""
        ...


@dataclass
class SupervisorConfig:
    """Checkpoint cadence, retry policy and degradation knobs.

    Attributes
    ----------
    checkpoint_every:
        MD steps per checkpointed segment (the paper's production runs
        checkpoint every few hundred of their ~50k steps).
    max_retries:
        Consecutive failed replays of one segment before aborting.
    keep_checkpoints:
        Checkpoint generations retained by the rotation.
    backoff_base:
        Base of the exponential retry backoff in seconds
        (``backoff_base * 2**(retry-1)``); 0 disables sleeping.
    degrade_after:
        Retry count at which graceful degradation kicks in (only for
        numerical-health faults).
    degrade_mode:
        ``"none"``, ``"halve_dt"`` (halve ``dt_md``) or ``"double_nqd"``
        (double ``n_qd``); both halve the electronic sub-step.
    log_path:
        Optional JSON-lines file receiving every event as it happens.
    guard:
        Tolerances/cadence of the installed :class:`HealthGuard`.
    deadline_s:
        Wall-clock budget per checkpointed segment (seconds).  An
        over-budget segment raises
        :class:`~repro.resilience.liveness.DeadlineExceeded`, which is
        recovered like any other fault; ``None`` (default) disarms the
        budget entirely.
    deadline_growth:
        Multiplier applied to the segment budget after each deadline
        fault (>= 1), so a budget that was merely too tight relaxes
        instead of failing the same way forever.
    retry_budget:
        Total recoveries allowed across the whole run (all segments
        combined); ``None`` keeps the legacy per-segment-only bound.
    breaker_threshold:
        Consecutive faults without one completed segment that trip the
        circuit breaker into a fast :class:`SupervisorAbort`; 0 (the
        default) disables the breaker.
    """

    checkpoint_every: int = 5
    max_retries: int = 3
    keep_checkpoints: int = 3
    backoff_base: float = 0.0
    degrade_after: int = 2
    degrade_mode: str = "none"
    log_path: Optional[Union[str, pathlib.Path]] = None
    guard: GuardConfig = field(default_factory=GuardConfig)
    deadline_s: Optional[float] = None
    deadline_growth: float = 2.0
    retry_budget: Optional[int] = None
    breaker_threshold: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be at least 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be at least 1")
        if self.degrade_mode not in ("none", "halve_dt", "double_nqd"):
            raise ValueError(
                "degrade_mode must be 'none', 'halve_dt' or 'double_nqd'"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.deadline_growth < 1.0:
            raise ValueError("deadline_growth must be at least 1")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative (or None)")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")


class ResilienceLog:
    """Structured event log backed by the perf counter machinery.

    Every event is a plain dict (JSON-serializable); event kinds are
    additionally tallied in a :class:`CounterSet` under ``event.<kind>``
    so existing perf reporting sees resilience activity for free.

    The file mirror is best-effort: a failed append (ENOSPC, permission
    loss, or the ``eventlog.enospc`` fault site) records a
    ``log_write_failed`` event and disables mirroring rather than
    killing the run -- losing telemetry must never lose physics.  The
    in-memory list stays complete either way, and
    :func:`read_event_log` tolerates torn trailing lines on readback.
    """

    def __init__(self, path: Optional[Union[str, pathlib.Path]] = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.events: List[Dict] = []
        self.counters = CounterSet()
        self._t0 = time.perf_counter()
        self._mirror = self.path is not None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    def _mirror_line(self, event: Dict) -> None:
        """Best-effort append of one JSON line to the mirror file."""
        assert self.path is not None
        line = json.dumps(event) + "\n"
        spec = fault_point("eventlog.torn_write")
        if spec is not None:
            keep = float(spec.payload.get("keep_fraction", 0.5))
            line = line[: max(0, int(len(line) * keep))]
        try:
            if fault_point("eventlog.enospc") is not None:
                raise OSError(errno.ENOSPC,
                              "No space left on device (injected fault)",
                              str(self.path))
            with open(self.path, "a") as fh:
                fh.write(line)
        except OSError as exc:
            self._mirror = False
            self.record("log_write_failed", path=str(self.path),
                        error=str(exc))

    def record(self, kind: str, **fields: object) -> Dict:
        """Append one event; mirrors it to the JSON-lines file if set."""
        event = {"event": kind, "wall_time": time.perf_counter() - self._t0}
        event.update(fields)
        self.events.append(event)
        self.counters.add(f"event.{kind}", 0.0, 0.0)
        if self._mirror and self.path is not None:
            self._mirror_line(event)
        return event

    def count(self, kind: str) -> int:
        """Number of events of one kind recorded so far."""
        return self.counters.calls.get(f"event.{kind}", 0)

    def to_json(self) -> str:
        """The full event list as a JSON array."""
        return json.dumps(self.events, indent=1)


def read_event_log(path: Union[str, pathlib.Path]) -> List[Dict]:
    """Parse a JSON-lines resilience log, skipping torn/corrupt lines.

    A crash mid-append leaves a truncated final line (and the next
    append may concatenate onto it); such lines fail to decode and are
    dropped instead of failing the whole readback.  A missing file reads
    as an empty log.
    """
    p = pathlib.Path(path)
    out: List[Dict] = []
    if not p.exists():
        return out
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn by a mid-write crash; the survivors stand
        if isinstance(event, dict):
            out.append(event)
    return out


class RunSupervisor:
    """Checkpointed, self-healing driver around one DC-MESH simulation."""

    def __init__(
        self,
        sim: SupervisableRun,
        checkpoint_dir: Union[str, pathlib.Path],
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.sim = sim
        self.checkpoint_dir = pathlib.Path(checkpoint_dir)
        self.config = config if config is not None else SupervisorConfig()
        self.guard = HealthGuard(self.config.guard)
        sim.health_guard = self.guard
        self.log = ResilienceLog(self.config.log_path)
        self.total_retries = 0
        self.recovery_timer = Timer()
        #: Run-wide recovery budget (None budget = unbounded).
        self.retry_budget = RetryBudget(self.config.retry_budget)
        #: Consecutive-fault breaker (threshold 0 = disabled).
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        #: Live per-segment deadline; grows by ``deadline_growth`` after
        #: every deadline fault, so it can exceed ``config.deadline_s``.
        self.deadline_s = self.config.deadline_s

    # ------------------------------------------------------------------ #
    def _checkpoint(self) -> None:
        with trace_span("checkpoint.write", "checkpoint",
                        step=self.sim.step_count):
            path = write_checkpoint(
                self.sim, self.checkpoint_dir, keep=self.config.keep_checkpoints
            )
        self.log.record(
            "checkpoint", step=self.sim.step_count, path=str(path.name)
        )

    def _backoff(self, retry: int) -> float:
        delay = self.config.backoff_base * (2.0 ** (retry - 1))
        if delay > 0:
            time.sleep(delay)
        return delay

    def _maybe_degrade(self, retry: int, exc: Exception) -> None:
        cfg = self.config
        if cfg.degrade_mode == "none" or retry < cfg.degrade_after:
            return
        if not isinstance(exc, NumericalHealthError):
            return
        ts = self.sim.config.timescale
        if cfg.degrade_mode == "halve_dt":
            new_ts = TimescaleSplit(dt_md=ts.dt_md / 2.0, n_qd=ts.n_qd)
        else:
            new_ts = TimescaleSplit(dt_md=ts.dt_md, n_qd=ts.n_qd * 2)
        self.sim.config.timescale = new_ts
        self.log.record(
            "degrade",
            mode=cfg.degrade_mode,
            dt_md=new_ts.dt_md,
            n_qd=new_ts.n_qd,
            dt_qd=new_ts.dt_qd,
        )

    def _restore(self) -> None:
        """Load the newest verified checkpoint, falling back on corruption."""
        with trace_span("checkpoint.restore", "checkpoint"):
            self._restore_inner()

    def _restore_inner(self) -> None:
        generations = list_checkpoints(self.checkpoint_dir)
        for path in reversed(generations):
            try:
                meta = load_verified(self.sim, path)
            except CheckpointCorruptError as exc:
                self.log.record(
                    "corrupt_checkpoint", path=str(path.name), error=str(exc)
                )
                continue
            # Drop history beyond the restored step so records stay
            # consistent with the replayed trajectory.
            self.sim.history[:] = [
                r for r in self.sim.history if r.step <= self.sim.step_count
            ]
            self.guard.reset_energy_reference()
            self.log.record(
                "restore", step=self.sim.step_count, path=str(path.name),
                checkpoint_time=meta["time"],
            )
            return
        raise SupervisorAbort(
            f"no usable checkpoint among {len(generations)} generation(s) "
            f"in {self.checkpoint_dir}"
        )

    # ------------------------------------------------------------------ #
    def run(self, nsteps: int) -> List[MDStepRecord]:
        """Advance ``nsteps`` MD steps with checkpointing and recovery.

        Returns the records of the steps taken by this call (replayed
        segments appear once, with their final successful values).
        """
        if nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        sim = self.sim
        cfg = self.config
        start_step = sim.step_count
        target = start_step + nsteps
        # Record the tuned parameters this run executes under: replayed
        # segments restore checkpoints that carry the same profile, so
        # the log documents what a resume will replay.
        from repro.tuning.profile import get_active_profile

        profile = get_active_profile()
        self.log.record(
            "tuning_profile",
            source=profile.source,
            tuned=list(profile.tuned_ids),
        )
        # Prune generations from a previous run of this directory that lie
        # ahead of the current trajectory: restoring one would teleport the
        # simulation into a *different* run's future.
        for path in list_checkpoints(self.checkpoint_dir):
            step = int(_CKPT_RE.match(path.name).group(1))
            if step > start_step:
                path.unlink()
                sidecar = sidecar_path(path)
                if sidecar.exists():
                    sidecar.unlink()
                self.log.record(
                    "stale_checkpoint", path=str(path.name), step=step
                )
        if not list_checkpoints(self.checkpoint_dir):
            self._checkpoint()  # generation 0: the pre-run state
        retries = 0
        while sim.step_count < target:
            seg_end = min(sim.step_count + cfg.checkpoint_every, target)
            try:
                with trace_span("supervisor.segment", "md",
                                start=sim.step_count, end=seg_end,
                                deadline_s=self.deadline_s):
                    with deadline_scope(self.deadline_s,
                                        f"supervisor.segment@{seg_end}"):
                        while sim.step_count < seg_end:
                            sim.md_step()
                    self._checkpoint()
                retries = 0
                self.breaker.record_success()
            except RECOVERABLE as exc:
                retries += 1
                self.total_retries += 1
                self.breaker.record_failure()
                self.log.record(
                    "fault",
                    error=type(exc).__name__,
                    message=str(exc),
                    step=sim.step_count,
                    retry=retries,
                )
                if retries > cfg.max_retries:
                    self.log.record(
                        "abort", step=sim.step_count, retries=retries
                    )
                    raise SupervisorAbort(
                        f"segment ending at step {seg_end} failed "
                        f"{retries} time(s): {exc}"
                    ) from exc
                if not self.retry_budget.consume():
                    self.log.record(
                        "retry_budget_exhausted",
                        step=sim.step_count,
                        budget=cfg.retry_budget,
                    )
                    raise SupervisorAbort(
                        f"run-wide retry budget of {cfg.retry_budget} "
                        f"recoveries exhausted at step {sim.step_count}: {exc}"
                    ) from exc
                if self.breaker.open:
                    self.log.record(
                        "breaker_open",
                        step=sim.step_count,
                        consecutive=self.breaker.consecutive_failures,
                        threshold=cfg.breaker_threshold,
                    )
                    raise SupervisorAbort(
                        f"circuit breaker open after "
                        f"{self.breaker.consecutive_failures} consecutive "
                        f"fault(s) without a completed segment: {exc}"
                    ) from exc
                if (isinstance(exc, DeadlineExceeded)
                        and self.deadline_s is not None
                        and cfg.deadline_growth > 1.0):
                    relaxed = self.deadline_s * cfg.deadline_growth
                    self.log.record(
                        "deadline_relaxed",
                        budget_s=self.deadline_s,
                        new_budget_s=relaxed,
                    )
                    self.deadline_s = relaxed
                self.recovery_timer.start()
                delay = self._backoff(retries)
                self._maybe_degrade(retries, exc)
                try:
                    self._restore()
                finally:
                    recovery_s = self.recovery_timer.stop()
                self.log.record(
                    "recovered",
                    step=sim.step_count,
                    retry=retries,
                    backoff_s=delay,
                    recovery_s=recovery_s,
                )
        return [r for r in sim.history if r.step > start_step]
