"""Torn-write-proof persistence: fsync'd same-directory atomic writes.

Every persistence path in the repo (tuning cache, checkpoint sidecars,
resilience event log) must survive two failure modes that plain
``open().write()`` does not:

* **torn writes** -- a crash (or SIGKILL) mid-write leaves a truncated
  file; ``os.rename`` from another filesystem (``tempfile`` defaults to
  ``/tmp``) degrades to a copy and can tear the same way;
* **ENOSPC** -- a full disk fails the write halfway; the *previous*
  version of the file must survive untouched.

:func:`atomic_write_bytes` provides the full discipline: the temp file
is created *in the destination directory* (same filesystem, so
``os.replace`` is a true atomic rename), its contents are flushed and
``fsync``'d before the rename (so the rename can never publish a name
pointing at unwritten blocks), and the directory entry itself is
``fsync``'d after the rename (so the publish survives a power cut).  On
any failure the temp file is removed and the previous destination bytes
are left untouched.

Fault injection: callers pass a ``fault_prefix`` naming their subsystem
(``"cache"``, ``"checkpoint"``, ``"eventlog"``); the writer then honours
the ``<prefix>.enospc`` site (raise ``OSError(ENOSPC)`` with the old
file intact) and the ``<prefix>.torn_write`` site (publish deliberately
truncated bytes, simulating the torn outcome the atomic discipline
exists to prevent -- so reader-side recovery can be tested).
"""

from __future__ import annotations

import errno
import itertools
import os
import pathlib
import threading
from typing import Optional, Union

from repro.resilience.faults import FaultSpec, fault_point

#: Disambiguates temp names when several threads of one process write
#: the same destination concurrently (e.g. racing artifact-store puts):
#: a pid-only suffix would make them scribble on each other's temp file.
_TMP_COUNTER = itertools.count()


def fsync_directory(directory: Union[str, pathlib.Path]) -> None:
    """Flush a directory entry to disk (best effort on exotic filesystems)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # platform without directory fds (or no permission)
        return
    try:
        os.fsync(fd)
    except OSError:  # some filesystems reject directory fsync; not fatal
        pass
    finally:
        os.close(fd)


def _torn_bytes(data: bytes, spec: FaultSpec) -> bytes:
    """The truncated payload a torn write would have left behind."""
    frac = float(spec.payload.get("keep_fraction", 0.5))
    frac = min(max(frac, 0.0), 1.0)
    return data[: int(len(data) * frac)]


def atomic_write_bytes(
    path: Union[str, pathlib.Path],
    data: bytes,
    fault_prefix: Optional[str] = None,
) -> pathlib.Path:
    """Atomically publish ``data`` at ``path`` with full fsync discipline.

    Either the destination holds the complete new bytes or it is left
    exactly as it was -- a crash, kill or ENOSPC mid-write can never
    tear it.  Returns the destination path.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fault_prefix is not None:
        spec = fault_point(f"{fault_prefix}.enospc")
        if spec is not None:
            raise OSError(
                errno.ENOSPC, "No space left on device (injected fault)",
                str(path),
            )
        spec = fault_point(f"{fault_prefix}.torn_write")
        if spec is not None:
            data = _torn_bytes(data, spec)
    tmp = path.parent / (
        f".tmp-{path.name}.{os.getpid()}"
        f".{threading.get_ident()}.{next(_TMP_COUNTER)}"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: Union[str, pathlib.Path],
    text: str,
    fault_prefix: Optional[str] = None,
) -> pathlib.Path:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), fault_prefix)
