"""Resilience layer: fault injection, health guards, supervised runs.

Cooperating sub-modules:

* :mod:`repro.resilience.faults` -- seeded deterministic fault injection
  with named sites wired into the SCF, propagator, allocator, SimComm,
  executor, persistence and checkpoint hot paths (no-ops unless a plan
  is armed);
* :mod:`repro.resilience.guards` -- typed numerical health guards
  (finiteness, norm drift, energy drift) for the QD loop and MD step;
* :mod:`repro.resilience.liveness` -- deadline budgets, run-wide retry
  budgets and a circuit breaker (the bounded-waiting primitives);
* :mod:`repro.resilience.atomicio` -- fsync'd same-directory atomic
  writes shared by every persistence path;
* :mod:`repro.resilience.supervisor` -- checkpointed segment execution
  with bounded retries, deadline enforcement, graceful degradation,
  corrupt-checkpoint fallback and a structured JSON event log, on top
  of the hardened atomic/digest/rotating writer in
  :mod:`repro.resilience.checkpointing`.

``faults``, ``guards``, ``liveness`` and ``atomicio`` are
dependency-free (NumPy at most) and imported eagerly -- instrumented
hot paths may import them during ``repro.core`` initialization.
``checkpointing`` and ``supervisor`` depend on ``repro.core`` and are
loaded lazily (PEP 562) to keep the import graph acyclic.
"""

from repro.resilience.atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    RankFailure,
    active_plan,
    arm,
    armed,
    disarm,
    fault_point,
)
from repro.resilience.guards import (
    EnergyDriftError,
    GuardConfig,
    HealthGuard,
    NormDriftError,
    NumericalDivergenceError,
    NumericalHealthError,
    SCFDivergenceError,
)
from repro.resilience.liveness import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryBudget,
    active_deadline,
    check_deadline,
    deadline_scope,
)

_LAZY = {
    "CheckpointCorruptError": "repro.resilience.checkpointing",
    "checkpoint_path": "repro.resilience.checkpointing",
    "list_checkpoints": "repro.resilience.checkpointing",
    "load_verified": "repro.resilience.checkpointing",
    "restore_newest_verified": "repro.resilience.checkpointing",
    "verify_checkpoint": "repro.resilience.checkpointing",
    "write_checkpoint": "repro.resilience.checkpointing",
    "RECOVERABLE": "repro.resilience.supervisor",
    "ResilienceLog": "repro.resilience.supervisor",
    "RunSupervisor": "repro.resilience.supervisor",
    "SupervisorAbort": "repro.resilience.supervisor",
    "SupervisorConfig": "repro.resilience.supervisor",
    "read_event_log": "repro.resilience.supervisor",
}

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RetryBudget",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "KNOWN_SITES",
    "FaultPlan",
    "FaultSpec",
    "RankFailure",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "fault_point",
    "EnergyDriftError",
    "GuardConfig",
    "HealthGuard",
    "NormDriftError",
    "NumericalDivergenceError",
    "NumericalHealthError",
    "SCFDivergenceError",
] + sorted(_LAZY)


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> "list[str]":
    return sorted(__all__)
