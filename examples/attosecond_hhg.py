#!/usr/bin/env python
"""Attosecond physics demo: high harmonics and strong-field ionization.

The paper's introduction motivates DC-MESH with the 2023 Nobel-prize
physics of attosecond pulses -- generated through the highly nonlinear
response of matter to intense lasers.  This example drives a model system
with a strong CW field and extracts the two strong-field signatures:

1. the high-harmonic emission spectrum (odd harmonics only, by inversion
   symmetry), via the 4th-order Suzuki propagator;
2. the ionization yield, measured as the norm absorbed by a complex
   absorbing potential (CAP) at the cell boundary, versus intensity.

Run:  python examples/attosecond_hhg.py
"""

import numpy as np

from repro.analysis import (
    harmonic_peak_intensities,
    harmonic_spectrum,
    odd_even_contrast,
)
from repro.grids import Grid3D
from repro.lfd import (
    PropagatorConfig,
    QDPropagator,
    WaveFunctionSet,
    cos2_absorber,
    ionization_yield,
)
from repro.lfd.observables import dipole_moment
from repro.maxwell.laser import CWField
from repro.qxmd import KSHamiltonian, cg_eigensolve


def ground_state():
    g = Grid3D.cubic(10, 0.5)
    c = (10 - 1) * 0.5 / 2.0
    xs, ys, zs = g.meshgrid()
    vloc = -2.0 * np.exp(-((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 2.0)
    ham = KSHamiltonian(g, vloc)
    wf = WaveFunctionSet.random(g, 2, np.random.default_rng(0))
    evals = cg_eigensolve(ham, wf, ncg=25)
    return g, vloc, wf, evals


def main() -> None:
    g, vloc, wf0, evals = ground_state()
    print(f"model levels (Ha): {np.round(evals, 4)}")
    occ = np.array([2.0, 0.0])
    omega0 = 0.35

    # --- part 1: HHG spectrum ------------------------------------------- #
    driver = CWField(e0=0.08, omega=omega0)
    prop = QDPropagator(
        wf0.copy(), vloc, PropagatorConfig(dt=0.1, order=4),
        a_of_t=lambda t: driver.vector_potential(t),
    )
    times, dips = [], []
    ncycles = 14
    nsteps = int(ncycles * 2 * np.pi / omega0 / 0.1)
    print(f"\ndriving {ncycles} optical cycles ({nsteps} Suzuki-4 steps) ...")
    prop.run(nsteps, observer=lambda p: (times.append(p.time),
                                         dips.append(dipole_moment(p.wf, occ)[0])))
    orders, intensity = harmonic_spectrum(np.array(times), np.array(dips),
                                          omega0)
    peaks = harmonic_peak_intensities(orders, intensity,
                                      harmonics=(1, 2, 3, 4, 5),
                                      half_width=0.3)
    print("harmonic emission (arb. units):")
    imax = max(peaks.values())
    for h, v in peaks.items():
        bar = "#" * max(1, int(30 * np.log10(max(v / imax, 1e-6)) / 6 + 30))
        print(f"  H{h}: {v:9.3e} |{bar}")
    print(f"odd/even contrast (H2-H4 band): "
          f"{odd_even_contrast({2: peaks[2], 3: peaks[3], 4: peaks[4]}):.2f} "
          f"decades (inversion symmetry forbids even harmonics)")

    # --- part 2: ionization vs intensity --------------------------------- #
    # A larger box keeps the bound-state tail off the absorber; the
    # residual field-free absorption is subtracted as the baseline.
    gi = Grid3D.cubic(14, 0.5)
    ci = (14 - 1) * 0.5 / 2.0
    xs, ys, zs = gi.meshgrid()
    vloc_i = -2.0 * np.exp(
        -((xs - ci) ** 2 + (ys - ci) ** 2 + (zs - ci) ** 2) / 2.0
    )
    ham_i = KSHamiltonian(gi, vloc_i)
    wf_i = WaveFunctionSet.random(gi, 2, np.random.default_rng(1))
    cg_eigensolve(ham_i, wf_i, ncg=25)
    cap = cos2_absorber(gi, width_points=2, strength=0.5, axes=(0,))

    def run_yield(e0: float) -> float:
        wf = wf_i.copy()
        n0 = wf.norms().copy()
        drv = CWField(e0=e0, omega=omega0)
        p = QDPropagator(
            wf, vloc_i, PropagatorConfig(dt=0.1), cap=cap,
            a_of_t=lambda t, _d=drv: _d.vector_potential(t),
        )
        p.run(400)
        return ionization_yield(n0, wf, occ)

    baseline = run_yield(0.0)
    print("\nionization yield vs field strength (CAP at the cell faces,")
    print(f"field-free baseline {baseline:.4f} electrons subtracted):")
    print("  E0 [a.u.]   field-induced yield")
    for e0 in (0.02, 0.05, 0.1, 0.2):
        y = run_yield(e0) - baseline
        print(f"  {e0:8.2f}   {max(y, 0.0):12.6f}")
    print("yield grows strongly nonlinearly with intensity -- the "
          "strong-field regime the paper's attosecond motivation targets.")


if __name__ == "__main__":
    main()
