#!/usr/bin/env python
"""Light-induced switching of a flux-closure domain in PbTiO3 (Fig. 7).

The paper's application scenario, reproduced with the in-repo multiscale
pipeline:

1. a neural-network force field is trained against the effective
   Hamiltonian (the stand-in for the QMD-trained NNFF of Ref. 35);
2. a flux-closure polar topology is prepared and relaxed -- its winding
   number is the protected topological invariant;
3. a femtosecond "laser" deposits photo-excited carriers, renormalizing
   the ferroelectric double well; below threshold the texture survives,
   above threshold it collapses -- the ultrafast switching event;
4. the texture is rendered as an ASCII quiver plot before and after.

Run:  python examples/flux_closure_switching.py
"""

import numpy as np

from repro.materials import (
    EffectiveHamiltonian,
    flux_closure_modes,
    train_nnff,
    winding_number,
)

SHAPE = (16, 2, 16)
ARROWS = {(1, 0): ">", (-1, 0): "<", (0, 1): "^", (0, -1): "v"}


def quiver(modes: np.ndarray, p_ref: float) -> str:
    """ASCII in-plane quiver of the y-midplane polarization."""
    lines = []
    for k in reversed(range(modes.shape[2])):
        row = []
        for i in range(modes.shape[0]):
            px, pz = modes[i, 0, k, 0], modes[i, 0, k, 2]
            mag = np.hypot(px, pz)
            if mag < 0.15 * p_ref:
                row.append(".")
            elif abs(px) >= abs(pz):
                row.append(">" if px > 0 else "<")
            else:
                row.append("^" if pz > 0 else "v")
        lines.append(" ".join(row))
    return "\n".join(lines)


def main() -> None:
    # Ref. 35 ("...Flux Closure Domains in Strained PbTiO3"): a mild
    # compressive misfit stabilizes the out-of-plane limbs of the closure.
    from repro.materials import LandauParameters

    ham = EffectiveHamiltonian(
        SHAPE, LandauParameters(misfit_strain=-0.05)
    )
    p0 = ham.params.p_min
    threshold = ham.params.switching_threshold
    rng = np.random.default_rng(1)
    print(f"epitaxial misfit strain: {ham.params.misfit_strain:+.2f} "
          f"(compressive, per the strained-PbTiO3 setup of Ref. 35)")

    # --- step 1: NNFF preparation (Ref. 35 stand-in) -------------------- #
    print("training the NNFF against the effective Hamiltonian ...")
    nnff, history = train_nnff(ham, rng, hidden=24, nconfigs=30, epochs=200)
    print(f"  force-fit loss: {history[0]:.3f} -> {history[-1]:.3f}")

    # --- step 2: prepare and relax the flux closure --------------------- #
    texture = flux_closure_modes(SHAPE, p0)
    texture, e0 = ham.relax(texture, nsteps=400)
    w0 = winding_number(texture)
    print(f"\nground-state flux closure: E = {e0:.2f}, winding = {w0:+.2f}")
    print(quiver(texture, p0))

    # --- step 3: laser-driven excitation sweep -------------------------- #
    print(f"\nLandau switching threshold: n_exc = {threshold:.2f}")
    print("n_exc   mean|p|   winding   survives?")
    for n_exc in (0.1, 0.3, 0.5, 0.65, 0.8):
        relaxed, _ = ham.relax(texture.copy(), nsteps=400, n_exc=n_exc)
        mags = float(np.linalg.norm(relaxed, axis=-1).mean())
        alive = mags > 0.05 * p0
        w = winding_number(relaxed) if alive else 0.0
        print(
            f"{n_exc:5.2f}  {mags:8.3f}  {w:+8.2f}   "
            f"{'yes' if alive else 'NO -- switched'}"
        )
        if n_exc == 0.8:
            print("\npost-pulse texture at n_exc = 0.8:")
            print(quiver(relaxed, p0))

    # --- step 4: transient dynamics through a pulse --------------------- #
    print("\ntime-resolved switching (n_exc ramps with a Gaussian pulse):")
    modes = texture.copy()
    vel = np.zeros_like(modes)
    for step in range(120):
        t = step * 0.1
        n_exc = 0.9 * np.exp(-((t - 5.0) ** 2) / 4.0)  # fs-pulse envelope
        modes, vel = ham.dynamics_step(
            modes, vel, dt=0.1, damping=0.4, n_exc=n_exc
        )
        if step % 20 == 0:
            mags = float(np.linalg.norm(modes, axis=-1).mean())
            print(f"  t = {t:5.1f}  n_exc = {n_exc:4.2f}  mean|p| = {mags:.3f}")
    final_mag = float(np.linalg.norm(modes, axis=-1).mean())
    print(f"final mean |p| after the pulse: {final_mag:.3f} "
          f"(texture {'destroyed' if final_mag < 0.3 * p0 else 'recovered'})")

    # --- step 5: hand the texture to the atomistic level ---------------- #
    from repro.materials import PBTIO3, modes_to_positions, roundtrip_alignment

    reps = (6, 2, 6)
    from repro.materials import flux_closure_modes as _fc

    small = _fc(reps, p0)
    positions, species, box = modes_to_positions(PBTIO3, reps, small,
                                                 amplitude=0.2)
    align = roundtrip_alignment(small, PBTIO3, reps, amplitude=0.2)
    print(f"\natomistic handoff (Section V): {len(species)} atoms in a "
          f"{reps[0]}x{reps[1]}x{reps[2]} PbTiO3 supercell, texture "
          f"alignment after the round trip: {align:.3f} "
          f"-- this configuration is what DC-MESH would excite.")


if __name__ == "__main__":
    main()
