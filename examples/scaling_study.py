#!/usr/bin/env python
"""Weak/strong scaling of DC-MESH on the Polaris machine model (Figs. 2-3).

Reproduces the paper's scaling methodology end to end: per-rank kernel
costs from the LFD inventory + device rooflines, communication from the
Slingshot/NVLink alpha-beta model, efficiencies per the paper's exact
definitions, and least-squares fits of the paper's closed-form laws.

Run:  python examples/scaling_study.py
"""

from repro.parallel import (
    PolarisModel,
    fit_strong_efficiency_law,
    fit_weak_efficiency_law,
    strong_scaling_study,
    weak_scaling_study,
)
from repro.parallel.scaling import calibrated_model


def spark(value: float, lo: float = 0.6, hi: float = 1.0, width: int = 30) -> str:
    n = int(width * (value - lo) / (hi - lo))
    return "#" * max(0, min(width, n))


def main() -> None:
    model = calibrated_model()
    print(
        f"calibrated Polaris step model: tree factor = "
        f"{model.tree_levels_factor:.1f}, fixed overhead = "
        f"{model.fixed_step_overhead:.2f} s\n"
    )

    # --- weak scaling (Fig. 2) ------------------------------------------ #
    print("weak scaling, 40 atoms/rank (paper anchor: 0.9673 at P = 1024)")
    print("ranks   atoms    t_step    efficiency")
    points = weak_scaling_study(model)
    for p in points:
        print(
            f"{p.nranks:5d}  {int(p.natoms):6d}  {p.step_time:7.2f} s  "
            f"{p.efficiency:.4f} |{spark(p.efficiency, 0.95, 1.0)}"
        )
    a_const, beta = fit_weak_efficiency_law(points)
    print(f"fitted law: 1/eta - 1 = {a_const:.2e} + {beta:.2e} log2(P)\n")

    # --- strong scaling (Fig. 3) ----------------------------------------- #
    for natoms, p_list, anchor in (
        (5120.0, (64, 128, 256), "paper: 0.6634 at P = 256"),
        (10240.0, (128, 256, 512), "paper: 0.8083 at P = 512"),
    ):
        print(f"strong scaling, {int(natoms)} atoms ({anchor})")
        print("ranks   atoms/rank   t_step    efficiency")
        pts = strong_scaling_study(model, natoms, p_list)
        for p in pts:
            print(
                f"{p.nranks:5d}  {natoms / p.nranks:10.1f}  "
                f"{p.step_time:7.2f} s  {p.efficiency:.4f} "
                f"|{spark(p.efficiency, 0.5, 1.0)}"
            )
        alpha, beta = fit_strong_efficiency_law(pts)
        print(
            f"fitted law: 1/eta - 1 = {alpha:.2e} (P/N)^(1/3) "
            f"+ {beta:.2e} P log2(P)/N\n"
        )

    # --- the machine behind the numbers ---------------------------------- #
    polaris = PolarisModel(nnodes=256)
    print(
        f"largest modeled allocation: {polaris.nnodes} nodes, "
        f"{polaris.nranks} ranks/GPUs, aggregate "
        f"{polaris.peak_flops_dp() / 1e15:.1f} PFLOP/s DP"
    )


if __name__ == "__main__":
    main()
