#!/usr/bin/env python
"""Self-consistent Maxwell-TDDFT propagation across DC domains.

Demonstrates the multiscale light-matter machinery of Section II: a laser
pulse is injected on the coarse 1-D light mesh, propagates at c, reaches
electron-carrying DC domains at *retarded* times, drives their TDDFT
dynamics through the velocity-gauge coupling, and (with feedback enabled)
their polarization currents act back on the field.

Run:  python examples/maxwell_propagation.py
"""

import numpy as np

from repro.constants import AUT_FS, C_LIGHT
from repro.core import CoupledDomain, MaxwellCoupledLFD
from repro.grids import Grid3D
from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
from repro.maxwell import GaussianPulse, VectorPotentialFDTD

DT = 0.05       # lockstep Delta_QD (a.u.)
DZ = 40.0       # light-mesh spacing (bohr); CFL: c*DT = 6.9 << 40
NZ = 256


def make_domain(z_cells: int, seed: int) -> CoupledDomain:
    grid = Grid3D.cubic(8, 0.5)
    rng = np.random.default_rng(seed)
    wf = WaveFunctionSet.random(grid, 3, rng)
    # Real-valued initial orbitals carry zero paramagnetic current, so the
    # domains radiate only after the pulse arrives (clean retardation).
    wf.psi.imag[...] = 0.0
    wf.normalize()
    vloc = 0.2 * rng.standard_normal(grid.shape)
    prop = QDPropagator(wf, vloc, PropagatorConfig(dt=DT))
    return CoupledDomain(
        propagator=prop,
        occupations=np.full(3, 2.0),
        z_position=z_cells * DZ,
        volume=grid.volume,
    )


def build(feedback: bool) -> MaxwellCoupledLFD:
    pulse = GaussianPulse(e0=0.02, omega=0.4, t0=6.0, sigma=2.0)
    fdtd = VectorPotentialFDTD(nz=NZ, dz=DZ, dt=DT, source=pulse)
    # All domains in the first half of the periodic mesh so the direct
    # path beats the wrap-around image of the injected pulse.
    domains = [make_domain(40, 1), make_domain(80, 2), make_domain(120, 3)]
    return MaxwellCoupledLFD(fdtd, domains, feedback=feedback,
                             current_scale=20.0)


def main() -> None:
    print(f"light mesh: {NZ} cells x {DZ} bohr; c = {C_LIGHT:.1f} a.u.")

    # --- part 1: retardation (feedback off -> the pure injected pulse) --- #
    coupled = build(feedback=False)
    expected = [
        coupled.arrival_delay_cells(0.0, d.z_position) * DT * AUT_FS
        for d in coupled.domains
    ]
    print("expected arrival times at the three domains (fs):",
          [f"{t:.3f}" for t in expected])
    arrivals = [None, None, None]
    print("\n   t[fs]   A(dom0)    A(dom1)    A(dom2)")
    nsteps = 1500
    for step in range(1, nsteps + 1):
        coupled.step()
        a = coupled.sampled_fields()
        for i in range(3):
            if arrivals[i] is None and abs(a[i]) > 1e-3:
                arrivals[i] = step * DT * AUT_FS
        if step % 250 == 0:
            print(f"{step * DT * AUT_FS:8.3f}  " +
                  "  ".join(f"{x:+9.5f}" for x in a))
    print("\nmeasured arrival times (fs):",
          [f"{t:.3f}" if t else "-" for t in arrivals])
    print("retardation reproduced: each domain sees the pulse later.")

    norms = [np.abs(d.propagator.wf.norms() - 1).max()
             for d in coupled.domains]
    print(f"orbital norm drift across the run: {max(norms):.2e} "
          f"(unitary propagation)")

    # --- part 2: self-consistent feedback reshapes the field ------------- #
    on = build(feedback=True)
    off = build(feedback=False)
    for _ in range(nsteps):
        on.step()
        off.step()
    delta = np.abs(on.fdtd.a - off.fdtd.a).max()
    print(f"\nwith polarization-current feedback: max field modification "
          f"{delta:.3e} (vs free propagation), field energy stays bounded: "
          f"{on.total_field_energy():.3e} a.u.")


if __name__ == "__main__":
    main()
