#!/usr/bin/env python
"""Quickstart: a complete (tiny) DC-MESH simulation.

Two oxygen pseudo-atoms in a periodic cell, split into two DC domains,
driven by a femtosecond Gaussian laser pulse.  One photo-excited carrier
is seeded; the run couples all of the machinery: DC-DFT SCF on the CPU
side, surface hopping, the scissor-corrected GPU-resident TDDFT
propagation, the shadow-dynamics occupation handshake, excited-state
forces and MD.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DCMESHConfig,
    DCMESHSimulation,
    TimescaleSplit,
    VirtualGPU,
    aut_to_fs,
)
from repro.grids import Grid3D
from repro.maxwell import GaussianPulse
from repro.pseudo import get_species


def main() -> None:
    # --- system: two O pseudo-atoms, one per DC domain ----------------- #
    grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    positions = np.array([[2.0, 4.8, 4.8], [7.0, 4.8, 4.8]])
    species = [get_species("O"), get_species("O")]

    # --- a weak fs pulse (800 nm-ish carrier in model units) ----------- #
    laser = GaussianPulse(e0=0.02, omega=0.3, t0=10.0, sigma=6.0)

    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=20),  # dt_QD = 0.1 a.u.
        nscf=2,
        ncg=3,
        norb_extra=2,
        seed=11,
    )
    sim = DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        laser=laser, config=config, device=VirtualGPU(), buffer_width=3,
    )

    # Seed one photo-excited electron in domain 0 (HOMO -> LUMO).
    sim.excite_carrier(0)

    print("step    t[fs]   T[K]    E_band[Ha]  n_exc   hops  A(t)")
    for record in sim.run(5):
        a = np.linalg.norm(record.vector_potential)
        print(
            f"{record.step:4d}  {aut_to_fs(record.time):7.4f}  "
            f"{record.temperature:6.1f}  {record.band_energy:10.4f}  "
            f"{record.excited_population:5.2f}  {record.hops:4d}  {a:8.3f}"
        )

    # The shadow-dynamics audit: wave functions were uploaded once, and
    # the per-step handshake is a vanishing fraction of their footprint.
    sim.ledger.assert_no_psi_traffic()
    print(
        f"\nshadow handshake: {sim.ledger.steady_state_bytes_per_step():,.0f} "
        f"bytes/MD step "
        f"({sim.ledger.traffic_ratio() * 100:.2f}% of the resident Psi data)"
    )
    print(f"modeled GPU time charged: {sim.device.elapsed * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
