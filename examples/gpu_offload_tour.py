#!/usr/bin/env python
"""Tour of the virtual-GPU substrate: the paper's Section III on one page.

Walks through the optimization sequence exactly as the paper presents it:

1. the kin_prop kernel variants (Algorithms 1-5) with live timings;
2. BLASification of the nonlocal correction (naive loops vs two GEMMs);
3. persistent device residency via the OMPallocator-style DeviceArray
   (enter/exit data semantics), with the transfer ledger;
4. asynchronous (nowait) streams vs synchronous launches;
5. the shadow-dynamics traffic audit.

Run:  python examples/gpu_offload_tour.py
"""

import time

import numpy as np

from repro import VirtualGPU, WaveFunctionSet, kinetic_step
from repro.grids import Grid3D
from repro.lfd import nonlocal_correction_blas, nonlocal_correction_naive
from repro.lfd.costs import LFDWorkload


def main() -> None:
    grid = Grid3D.cubic(24, 0.5)
    rng = np.random.default_rng(0)
    wf = WaveFunctionSet.random(grid, 32, rng)

    # --- 1. Algorithms 1-5 ----------------------------------------------- #
    print("1) kin_prop optimization sequence (24^3 mesh, 32 orbitals):")
    base = None
    for variant in ("baseline", "interchange", "blocked", "collapsed"):
        w = wf.copy()
        t0 = time.perf_counter()
        kinetic_step(w, 0.02, variant=variant)
        dt = time.perf_counter() - t0
        base = base or dt
        print(f"   {variant:12s} {dt * 1e3:9.2f} ms   {base / dt:6.2f}x")

    # --- 2. BLASification -------------------------------------------------- #
    print("\n2) nonlocal correction: naive loops vs BLAS-3 (Eq. 9):")
    ref = WaveFunctionSet.random(grid, 16, rng)
    for label, fn in (("naive loops", nonlocal_correction_naive),
                      ("BLAS-3 GEMMs", nonlocal_correction_blas)):
        w = wf.copy()
        t0 = time.perf_counter()
        fn(w, ref, 0.1, 0.02)
        print(f"   {label:12s} {(time.perf_counter() - t0) * 1e3:9.2f} ms")

    # --- 3. persistent device residency ------------------------------------ #
    print("\n3) OMPallocator-style device residency:")
    gpu = VirtualGPU()
    with gpu.array(wf.psi, pinned=True, tag="psi") as psi_dev:
        psi_dev.update_to_device()  # the one-time upload
        print(f"   uploaded {psi_dev.nbytes / 1e6:.1f} MB "
              f"({gpu.transfer.total_time() * 1e3:.2f} ms modeled, pinned)")
        print(f"   device allocation: {gpu.allocator.bytes_allocated / 1e6:.1f}"
              f" MB live, peak {gpu.allocator.peak_bytes / 1e6:.1f} MB")
    print(f"   after scope exit: {gpu.allocator.bytes_allocated} bytes live "
          f"(exit data map(delete))")

    # --- 4. async streams --------------------------------------------------- #
    print("\n4) nowait (async) vs synchronous launches, 9 kinetic passes:")
    w = LFDWorkload(ngrid=grid.npoints, norb=32, nunocc=16, nqd=1)
    cost = w.kin_prop_pass()
    for mode, nowait in (("sync", False), ("async", True)):
        g = VirtualGPU()
        for i in range(9):
            g.launch(f"pass{i}", cost.flops, cost.bytes_moved, itemsize=8,
                     nowait=nowait)
        g.synchronize()
        print(f"   {mode:6s} {g.elapsed * 1e6:9.1f} us modeled")

    # --- 5. shadow traffic --------------------------------------------------- #
    print("\n5) shadow-dynamics handshake at paper scale:")
    paper = LFDWorkload(ngrid=70 * 70 * 72, norb=64, nunocc=32, nqd=1000)
    hs = paper.shadow_handshake_bytes()
    print(f"   resident Psi: {paper.psi_bytes / 1e6:8.1f} MB")
    print(f"   handshake:    {hs / 1e3:8.1f} kB per MD step "
          f"({hs / paper.psi_bytes * 100:.3f}% of Psi)")


if __name__ == "__main__":
    main()
