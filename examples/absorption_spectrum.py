#!/usr/bin/env python
"""Linear-response absorption spectrum via real-time TDDFT (LFD).

The standard validation experiment for a real-time propagator: solve the
ground state of a model potential, apply a weak delta-kick, propagate
with the LFD split-operator scheme (Eq. 6), record the dipole, and
Fourier-transform into the absorption strength function.  The peaks land
on the Kohn-Sham excitation energies -- printed side by side.

Run:  python examples/absorption_spectrum.py
"""

import numpy as np

from repro import PropagatorConfig, QDPropagator, WaveFunctionSet, hartree_to_ev
from repro.analysis import absorption_peaks, dipole_to_spectrum
from repro.grids import Grid3D
from repro.lfd.observables import dipole_moment
from repro.qxmd import KSHamiltonian, cg_eigensolve


def main() -> None:
    # --- model system: a soft Gaussian well ---------------------------- #
    grid = Grid3D.cubic(12, 0.5)
    centre = 2.75
    xs, ys, zs = grid.meshgrid()
    vloc = -3.0 * np.exp(
        -((xs - centre) ** 2 + (ys - centre) ** 2 + (zs - centre) ** 2) / 1.8
    )
    ham = KSHamiltonian(grid, vloc)
    wf = WaveFunctionSet.random(grid, 5, np.random.default_rng(0))
    evals = cg_eigensolve(ham, wf, ncg=40)
    print("Kohn-Sham levels (Ha):", np.round(evals, 4))
    gaps = evals[1:] - evals[0]
    print("transition energies from the ground level (Ha):", np.round(gaps, 4))

    # --- delta-kick + real-time propagation ---------------------------- #
    k0 = 1e-3
    kicked = wf.copy()
    kicked.psi *= np.exp(1j * k0 * xs)[..., None]
    occupations = np.array([2.0, 0.0, 0.0, 0.0, 0.0])

    prop = QDPropagator(kicked, vloc, PropagatorConfig(dt=0.05))
    times, dips = [], []

    def observe(p: QDPropagator) -> None:
        times.append(p.time)
        dips.append(dipole_moment(p.wf, occupations)[0])

    nsteps = 1600
    print(f"propagating {nsteps} QD steps of dt = 0.05 a.u. ...")
    prop.run(nsteps, observer=observe)

    # --- spectrum ------------------------------------------------------- #
    omega, strength = dipole_to_spectrum(
        np.array(times), np.array(dips), kick_strength=k0, damping=0.01
    )
    peaks = absorption_peaks(omega, strength, min_height=0.25)
    print("\nabsorption peaks (Ha | eV):")
    for p in peaks[:6]:
        match = min(gaps, key=lambda g: abs(g - p))
        print(
            f"  {p:7.4f} | {hartree_to_ev(p):7.3f} eV   "
            f"(nearest KS gap {match:7.4f}, offset {p - match:+.4f})"
        )

    # Simple terminal rendering of the strength function.
    print("\nS(omega), 0..2 Ha:")
    sel = omega <= 2.0
    o_sel, s_sel = omega[sel], strength[sel]
    smax = s_sel.max()
    for i in range(0, len(o_sel), max(1, len(o_sel) // 40)):
        bar = "#" * int(40 * max(s_sel[i], 0.0) / smax)
        print(f"  {o_sel[i]:5.2f} |{bar}")


if __name__ == "__main__":
    main()
