"""Table II: LFD runtime across build configurations, SP and DP.

Paper values (1,000 QD steps, 64 orbitals, 70x70x72 mesh, one OpenMP
thread), seconds:

                                electron prop.   nonlocal corr.   total
    CPU OpenMP                   444 / 471        443 / 456       1082 / 1167
    CPU OpenMP + BLAS            19.7 / 30.9      10.7 / 21.5     38.8 / 65.9
    GPU offload + (host) BLAS     7.0 / 11.5       6.8 / 11.1     17.1 / 29.2
    GPU offload + cuBLAS          0.61 / 0.94      0.46 / 0.76    1.33 / 2.11
    + pinned memory / streams     0.51 / 0.68      0.35 / 0.51    1.06 / 1.48
                                                    (SP / DP columns: SP, DP)

Reproduction strategy: the two CPU builds are *measured* at reduced scale
(real naive-loop vs BLAS-3 nonlocal kernels, real kinetic variants); the
three GPU builds are *modeled* at full paper scale.  The key structural
effect reproduced by the model: the "GPU + host BLAS" build must ship the
whole Psi matrix across PCIe every QD step (its nonlocal GEMMs run on the
host), while cuBLAS keeps Psi device-resident and pinned memory/streams
accelerate what little traffic remains.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.bench_common import (
    PAPER_WORKLOAD,
    paper_workload,
    write_bench_json,
    write_report,
)
from repro.device import (
    A100,
    EPYC_7543_CORE,
    KernelCostModel,
    PCIE_GEN4,
)
from repro.device.blas import GEMM_EFFICIENCY
from repro.grids import Grid3D
from repro.lfd import (
    WaveFunctionSet,
    kinetic_step,
    nonlocal_correction_blas,
    nonlocal_correction_naive,
    potential_phase_step,
)
from repro.perf import Table, format_seconds

PAPER_DP = {
    "cpu_loops": (470.73, 455.75, 1167.0),
    "cpu_blas": (30.92, 21.54, 65.93),
    "gpu_host_blas": (11.45, 11.12, 29.23),
    "gpu_cublas": (0.94, 0.761, 2.11),
    "gpu_cublas_pinned": (0.68, 0.51, 1.48),
}
PAPER_SP = {
    "cpu_loops": (444.44, 442.84, 1082.0),
    "cpu_blas": (19.72, 10.71, 38.83),
    "gpu_host_blas": (7.03, 6.75, 17.14),
    "gpu_cublas": (0.61, 0.46, 1.33),
    "gpu_cublas_pinned": (0.512, 0.35, 1.06),
}

BUILD_ORDER = [
    "cpu_loops", "cpu_blas", "gpu_host_blas", "gpu_cublas",
    "gpu_cublas_pinned",
]


# --------------------------------------------------------------------- #
# measured CPU builds (reduced scale: 16^3 mesh, 12 orbitals, 1 QD step)
# --------------------------------------------------------------------- #
def _measured_cpu_build(blas: bool, dtype) -> tuple[float, float]:
    """(electron propagation, nonlocal correction) wall seconds."""
    grid = Grid3D.cubic(16, 0.5)
    rng = np.random.default_rng(3)
    wf = WaveFunctionSet.random(grid, 12, rng, dtype=dtype)
    ref = WaveFunctionSet.random(grid, 6, rng, dtype=dtype)
    vloc = 0.2 * rng.standard_normal(grid.shape)

    kin_variant = "blocked" if blas else "baseline"
    nl = nonlocal_correction_blas if blas else nonlocal_correction_naive

    best_prop, best_nl = float("inf"), float("inf")
    for _ in range(2):
        w = wf.copy()
        t0 = time.perf_counter()
        potential_phase_step(w, vloc, 0.01)
        kinetic_step(w, 0.02, variant=kin_variant)
        potential_phase_step(w, vloc, 0.01)
        best_prop = min(best_prop, time.perf_counter() - t0)
        t0 = time.perf_counter()
        nl(w, ref, 0.1, 0.02)
        nl(w, ref, 0.1, 0.02)
        best_nl = min(best_nl, time.perf_counter() - t0)
    return best_prop, best_nl


# --------------------------------------------------------------------- #
# modeled GPU builds (full paper scale)
# --------------------------------------------------------------------- #
def _modeled_build(build: str, itemsize: int) -> tuple[float, float]:
    """(electron propagation, nonlocal) modeled seconds at paper scale."""
    w = paper_workload(itemsize=itemsize)
    gpu = KernelCostModel(A100)
    cpu = KernelCostModel(EPYC_7543_CORE)
    kin = w.kin_prop_step()
    pot = w.pot_prop_half()
    nl = w.nonlocal_half()

    t_prop_gpu = w.nqd * (
        gpu.kernel_time(kin.flops, kin.bytes_moved, itemsize=w.real_itemsize)
        + 2 * gpu.kernel_time(pot.flops, pot.bytes_moved, itemsize=w.real_itemsize)
    )
    if build == "cpu_loops":
        t_prop = w.nqd * (
            cpu.kernel_time(kin.flops, kin.bytes_moved,
                            itemsize=w.real_itemsize, vectorized=False)
            + 2 * cpu.kernel_time(pot.flops, pot.bytes_moved,
                                  itemsize=w.real_itemsize, vectorized=False)
        )
        nl_naive = w.nonlocal_half_naive()
        t_nl = w.nqd * 2 * cpu.kernel_time(
            nl_naive.flops, nl_naive.bytes_moved,
            itemsize=w.real_itemsize, vectorized=False,
        )
    elif build == "cpu_blas":
        t_prop = w.nqd * (
            cpu.kernel_time(kin.flops, kin.bytes_moved,
                            itemsize=w.real_itemsize)
            + 2 * cpu.kernel_time(pot.flops, pot.bytes_moved,
                                  itemsize=w.real_itemsize)
        )
        t_nl = w.nqd * 2 * cpu.kernel_time(
            nl.flops, nl.bytes_moved, itemsize=w.real_itemsize,
            efficiency=GEMM_EFFICIENCY,
        )
    elif build == "gpu_host_blas":
        # Nonlocal GEMMs stay on the host: Psi crosses PCIe (pageable)
        # down and up every QD step, then runs on the CPU's BLAS.
        t_nl = w.nqd * (
            2 * cpu.kernel_time(nl.flops, nl.bytes_moved,
                                itemsize=w.real_itemsize,
                                efficiency=GEMM_EFFICIENCY)
            + 2 * PCIE_GEN4.transfer_time(w.psi_bytes, pinned=False)
        )
        t_prop = t_prop_gpu + w.nqd * 13 * A100.launch_latency
    elif build == "gpu_cublas":
        t_nl = w.nqd * 2 * gpu.kernel_time(
            nl.flops, nl.bytes_moved, itemsize=w.real_itemsize,
            efficiency=GEMM_EFFICIENCY,
        ) + w.nqd * 4 * A100.launch_latency
        t_prop = t_prop_gpu + w.nqd * 13 * A100.launch_latency
    elif build == "gpu_cublas_pinned":
        # Pinned host staging + streams: launch gaps hidden down to the
        # async enqueue cost.
        t_nl = w.nqd * 2 * gpu.kernel_time(
            nl.flops, nl.bytes_moved, itemsize=w.real_itemsize,
            efficiency=GEMM_EFFICIENCY,
        ) + w.nqd * 4 * 1.5e-6
        t_prop = t_prop_gpu + w.nqd * 13 * 1.5e-6
    else:
        raise ValueError(build)
    return t_prop, t_nl


@pytest.mark.parametrize("blas", [False, True], ids=["loops", "blas"])
@pytest.mark.parametrize("precision", ["sp", "dp"])
def test_cpu_build(benchmark, blas, precision):
    """Measured CPU builds (Table II rows 1-2) at reduced scale."""
    dtype = np.complex64 if precision == "sp" else np.complex128

    def run():
        return _measured_cpu_build(blas, dtype)

    prop, nl = benchmark.pedantic(run, rounds=1, iterations=1)
    key = "cpu_blas" if blas else "cpu_loops"
    paper = PAPER_SP if precision == "sp" else PAPER_DP
    benchmark.extra_info["paper_total_s"] = paper[key][2]
    benchmark.extra_info["measured_prop_s"] = prop
    benchmark.extra_info["measured_nonlocal_s"] = nl


def emit_table2_json(modeled, measured):
    """One kernel entry per (build, precision) total + the measured CPU rows."""
    kernels = {}
    for (build, precision), (prop, nl) in modeled.items():
        paper = (PAPER_SP if precision == "sp" else PAPER_DP)[build]
        kernels[f"{build}_{precision}"] = {
            "time_s": prop + nl,
            "kind": "modeled",
            "prop_s": prop,
            "nonlocal_s": nl,
            "paper_time_s": paper[2],
        }
    for (build, precision), (prop, nl) in measured.items():
        kernels[f"measured_{build}_{precision}"] = {
            "time_s": prop + nl,
            "kind": "measured",
            "prop_s": prop,
            "nonlocal_s": nl,
        }
    return write_bench_json(
        "table2_builds",
        kernels,
        workload=dict(
            PAPER_WORKLOAD,
            measured_scale="16^3 mesh, 12 orbitals, 1 QD step",
        ),
    )


def test_table2_report(benchmark):
    """Full Table II reproduction: measured CPU + modeled GPU builds."""

    def build_all():
        modeled = {}
        for precision, itemsize in (("sp", 8), ("dp", 16)):
            for b in BUILD_ORDER:
                modeled[(b, precision)] = _modeled_build(b, itemsize)
        measured = {
            ("cpu_loops", "dp"): _measured_cpu_build(False, np.complex128),
            ("cpu_blas", "dp"): _measured_cpu_build(True, np.complex128),
        }
        return modeled, measured

    modeled, measured = benchmark.pedantic(build_all, rounds=1, iterations=1)

    table = Table(
        ["build", "prec", "paper prop", "paper nl", "paper total",
         "modeled prop", "modeled nl", "modeled total"],
        title="Table II -- LFD build matrix, modeled at paper scale "
              "(70x70x72 mesh, 64 orbitals, 1000 QD steps)",
    )
    totals = {}
    for build in BUILD_ORDER:
        for precision in ("sp", "dp"):
            paper = (PAPER_SP if precision == "sp" else PAPER_DP)[build]
            prop, nl = modeled[(build, precision)]
            total = prop + nl
            totals[(build, precision)] = total
            table.add_row(
                build, precision.upper(),
                format_seconds(paper[0]), format_seconds(paper[1]),
                format_seconds(paper[2]),
                format_seconds(prop), format_seconds(nl),
                format_seconds(total),
            )
    sp_gain_prop = 1.0 - modeled[("gpu_cublas_pinned", "sp")][0] / modeled[
        ("gpu_cublas_pinned", "dp")][0]
    m_loops = sum(measured[("cpu_loops", "dp")])
    m_blas = sum(measured[("cpu_blas", "dp")])
    text = table.render() + (
        f"\nSP vs DP reduction (pinned build, electron propagation): "
        f"{sp_gain_prop * 100:.0f}% (paper: 35%)"
        f"\nmeasured CPU layer at reduced scale (16^3, 12 orbitals, DP): "
        f"loops {m_loops:.4f} s vs BLAS {m_blas:.4f} s "
        f"-> {m_loops / m_blas:.1f}x (paper CPU->CPU+BLAS: "
        f"{1167.0 / 65.93:.1f}x)"
    )
    write_report("table2_builds", text)
    emit_table2_json(modeled, measured)
    print("\n" + text)

    # Shape: modeled build sequence strictly monotone per precision,
    # modeled SP never slower than DP, and the *measured* CPU layer
    # reproduces the BLASification win.
    for precision in ("sp", "dp"):
        seq = [totals[(b, precision)] for b in BUILD_ORDER]
        assert all(a > b for a, b in zip(seq, seq[1:])), seq
    for build in BUILD_ORDER:
        assert totals[(build, "sp")] <= totals[(build, "dp")] * 1.001
    assert m_loops / m_blas > 5.0
