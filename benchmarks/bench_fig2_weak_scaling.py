"""Fig. 2: weak-scaling parallel efficiency on Polaris.

Paper: 40 atoms of PbTiO3 per granule, P = 4..1,024 MPI ranks (up to 256
nodes / 1,024 GPUs), 288 KS states per rank, 3 SCF x 3 CG, 1,000 QD steps
per MD step; efficiency 0.9673 at P = 1,024.

Reproduction: the calibrated DC-MESH step model (one fitted constant,
``tree_levels_factor``, anchored to the P = 1,024 point; every other
point is a prediction).  The paper's closed-form law
1/eta - 1 = A + beta' log2 P is fitted to the generated curve.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import write_report
from repro.parallel import fit_weak_efficiency_law, weak_scaling_study
from repro.parallel.scaling import calibrated_model
from repro.perf import Table

#: The paper reports 0.9673 at the largest configuration.
PAPER_ETA_1024 = 0.9673


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


def test_weak_scaling_sweep(benchmark, model):
    """Benchmark the scaling-study evaluation itself (modeled)."""
    points = benchmark(weak_scaling_study, model)
    assert len(points) == 9


def test_fig2_report(benchmark, model):
    points = benchmark.pedantic(
        weak_scaling_study, args=(model,), rounds=1, iterations=1
    )
    a_const, beta = fit_weak_efficiency_law(points)
    table = Table(
        ["ranks", "atoms", "step time", "speed (atom*steps/s)",
         "efficiency", "paper"],
        title="Fig. 2 -- weak-scaling parallel efficiency (modeled Polaris; "
              "tree constant fitted to the P=1024 anchor only)",
    )
    for p in points:
        paper = f"{PAPER_ETA_1024:.4f}" if p.nranks == 1024 else "-"
        table.add_row(
            p.nranks, int(p.natoms), f"{p.step_time:.3f} s",
            f"{p.speed:.2f}", f"{p.efficiency:.4f}", paper,
        )
    text = table.render() + (
        f"\nfitted weak-scaling law: 1/eta - 1 = {a_const:.3e} "
        f"+ {beta:.3e} * log2(P)  (paper form: logarithmic in P)"
    )
    write_report("fig2_weak_scaling", text)
    print("\n" + text)

    eta = {p.nranks: p.efficiency for p in points}
    assert eta[1024] == pytest.approx(PAPER_ETA_1024, abs=2e-3)
    # Shape: monotone decline, all points above 0.96 (near-flat curve).
    effs = [p.efficiency for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))
    assert min(effs) > 0.96
    assert beta > 0.0  # the paper's logarithmic degradation term
