"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablation (the ``nowait`` row of Table I), these
quantify:

* orbital block-size sweep for Algorithm 4;
* AoS vs SoA data layout (the Section III-A transformation);
* shadow dynamics on/off: per-MD-step CPU-GPU traffic with occupations-
  only handshake vs full wave-function round-trips;
* scissor correction on/off: the gap error the projected nonlocal
  operator removes;
* LDC buffer width vs domain eigenvalue error (the density-adaptive
  boundary condition).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.bench_common import measured_setup, write_report
from repro.device import PCIE_GEN4
from repro.grids import Grid3D, DomainDecomposition
from repro.lfd import kinetic_step
from repro.lfd.costs import LFDWorkload
from repro.perf import Table, format_seconds


# --------------------------------------------------------------------- #
# block-size sweep (Algorithm 4)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("block_size", [1, 4, 16, 64])
def test_block_size_sweep(benchmark, block_size):
    _, wf, _, _ = measured_setup(norb=64)

    def run():
        kinetic_step(wf, 0.02, variant="blocked", block_size=block_size)

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["block_size"] = block_size


def test_block_size_report(benchmark):
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for block_size in (1, 2, 4, 8, 16, 32, 64):
        _, wf, _, _ = measured_setup(norb=64)
        best = float("inf")
        for _ in range(2):
            w = wf.copy()
            t0 = time.perf_counter()
            kinetic_step(w, 0.02, variant="blocked", block_size=block_size)
            best = min(best, time.perf_counter() - t0)
        rows.append((block_size, best))
    table = Table(["block size", "kinetic step time"],
                  title="Ablation -- Algorithm 4 orbital block size "
                        "(24^3 mesh, 64 orbitals)")
    for b, t in rows:
        table.add_row(b, format_seconds(t))
    text = table.render()
    write_report("ablation_block_size", text)
    print("\n" + text)
    times = dict(rows)
    # Tiny blocks strand the vector units; large blocks recover.
    assert times[1] > times[32]


# --------------------------------------------------------------------- #
# AoS vs SoA layout
# --------------------------------------------------------------------- #
def test_layout_report(benchmark):
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    _, wf, _, _ = measured_setup(norb=64)
    results = {}
    for variant, label in (("baseline", "AoS (orbital-first)"),
                           ("collapsed", "SoA (orbital-last)")):
        best = float("inf")
        for _ in range(2):
            w = wf.copy()
            t0 = time.perf_counter()
            kinetic_step(w, 0.02, variant=variant)
            best = min(best, time.perf_counter() - t0)
        results[label] = best
    table = Table(["layout", "kinetic step time"],
                  title="Ablation -- AoS vs SoA wave-function layout")
    for k, v in results.items():
        table.add_row(k, format_seconds(v))
    text = table.render()
    write_report("ablation_layout", text)
    print("\n" + text)
    assert results["SoA (orbital-last)"] < results["AoS (orbital-first)"]


# --------------------------------------------------------------------- #
# shadow dynamics traffic
# --------------------------------------------------------------------- #
def test_shadow_traffic_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    w = LFDWorkload(ngrid=70 * 70 * 72, norb=64, nunocc=32, itemsize=16,
                    nqd=1000)
    shadow_bytes = w.shadow_handshake_bytes()
    # Without shadow dynamics the occupations would be produced on the
    # CPU: Psi(t) must round-trip every MD step (and the paper's point is
    # that naive coupling even does so per QD step).
    no_shadow_md = 2 * w.psi_bytes
    no_shadow_qd = 2 * w.psi_bytes * w.nqd
    t_shadow = PCIE_GEN4.transfer_time(shadow_bytes, pinned=True)
    t_no_shadow = 2 * PCIE_GEN4.transfer_time(w.psi_bytes, pinned=True)
    table = Table(
        ["coupling scheme", "bytes / MD step", "transfer time / MD step"],
        title="Ablation -- shadow dynamics vs wave-function shipping "
              "(paper-scale domain)",
    )
    table.add_row("shadow handshake (occupations)", f"{shadow_bytes:,}",
                  format_seconds(t_shadow))
    table.add_row("Psi round-trip per MD step", f"{no_shadow_md:,}",
                  format_seconds(t_no_shadow))
    table.add_row("Psi round-trip per QD step", f"{no_shadow_qd:,}",
                  format_seconds(t_no_shadow * w.nqd))
    text = table.render()
    write_report("ablation_shadow", text)
    print("\n" + text)
    assert shadow_bytes < 0.01 * w.psi_bytes


# --------------------------------------------------------------------- #
# scissor correction accuracy
# --------------------------------------------------------------------- #
def test_scissor_gap_report(benchmark):
    """The scissor-projected nonlocal operator restores the nl gap."""
    import scipy.linalg as sla

    from repro.core import scissor_shift
    from repro.core.scissor import homo_lumo_gap
    from repro.lfd import WaveFunctionSet
    from repro.pseudo import KBProjectorSet, get_species
    from repro.qxmd import KSHamiltonian, cg_eigensolve

    grid = Grid3D.cubic(16, 0.6)
    rng = np.random.default_rng(5)
    pos = np.array([[4.8, 4.8, 4.8]])
    kb = KBProjectorSet(grid, pos, [get_species("Ti")])
    vloc = -1.5 * np.exp(-sum((x - 4.8) ** 2 for x in grid.meshgrid()) / 2.0)
    ham = KSHamiltonian(grid, vloc, kb=kb)
    wf = WaveFunctionSet.random(grid, 4, rng)

    def solve():
        cg_eigensolve(ham, wf, ncg=10)
        return scissor_shift(ham, wf, np.array([2.0, 2.0, 0.0, 0.0]))

    dsci = benchmark.pedantic(solve, rounds=1, iterations=1)
    occ = np.array([2.0, 2.0, 0.0, 0.0])
    ssub = wf.overlap_matrix()
    e_nl = sla.eigh(ham.subspace_matrix(wf), ssub, eigvals_only=True)
    e_loc = sla.eigh(ham.without_nonlocal().subspace_matrix(wf), ssub,
                     eigvals_only=True)
    gap_nl, _, _ = homo_lumo_gap(e_nl, occ)
    gap_loc, _, _ = homo_lumo_gap(e_loc, occ)
    table = Table(["quantity", "value (Ha)"],
                  title="Ablation -- scissor correction (Eq. 8)")
    table.add_row("gap with nonlocal", f"{gap_nl:.4f}")
    table.add_row("gap local-only", f"{gap_loc:.4f}")
    table.add_row("scissor shift Dsci", f"{dsci:.4f}")
    table.add_row("gap error without scissor", f"{abs(gap_nl - gap_loc):.4f}")
    table.add_row("gap error with scissor", f"{abs(gap_nl - gap_loc - dsci):.4f}")
    text = table.render()
    write_report("ablation_scissor", text)
    print("\n" + text)
    # The scissor exactly closes the subspace gap error by construction.
    assert abs(gap_nl - gap_loc - dsci) < 1e-10


# --------------------------------------------------------------------- #
# LDC buffer width
# --------------------------------------------------------------------- #
def test_ldc_buffer_report(benchmark):
    """Wider LDC buffers converge domain eigenvalues to the global ones."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.pseudo import get_species
    from repro.qxmd import GlobalDCSolver, SCFConfig, scf_solve

    grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    pos = np.array([[2.0, 4.8, 4.8], [7.0, 4.8, 4.8]])
    sp = [get_species("H"), get_species("H")]
    # Reference: one global SCF solve.
    ref = scf_solve(grid, pos, sp, norb=4, config=SCFConfig(nscf=3, ncg=4))
    rows = []
    for buffer_width in (1, 2, 3, 5):
        dec = DomainDecomposition(grid, (2, 1, 1), buffer_width=buffer_width)
        solver = GlobalDCSolver(grid, dec, pos, sp, norb_extra=2,
                                nscf=3, ncg=4)
        res = solver.solve()
        e0 = np.mean([st.eigenvalues[0] for st in res.states])
        rows.append((buffer_width, e0, abs(e0 - ref.eigenvalues[0])))
    table = Table(
        ["buffer width", "mean domain HOMO (Ha)", "|error| vs global"],
        title="Ablation -- LDC density-adaptive boundary (buffer width)",
    )
    for b, e, err in rows:
        table.add_row(b, f"{e:.4f}", f"{err:.4f}")
    text = table.render() + (
        "\nnote: at this toy scale (8-point cores comparable to the orbital "
        "extent) the trend is not monotone -- very wide buffers let local "
        "orbitals weight the neighbouring atom, which the core-only "
        "recombination then truncates.  In the paper's regime (domains "
        ">> orbital decay length) the buffer converges the boundary."
    )
    write_report("ablation_ldc_buffer", text)
    print("\n" + text)
    errors = [r[2] for r in rows]
    # All buffer widths keep the domain HOMO within a few 10 mHa of the
    # global solve.
    assert max(errors) < 0.05


# --------------------------------------------------------------------- #
# Strang (order 2) vs Suzuki (order 4) propagator
# --------------------------------------------------------------------- #
def test_propagator_order_report(benchmark):
    """Accuracy/cost trade of the 4th-order Suzuki composition."""
    import time

    from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    grid = Grid3D.cubic(10, 0.5)
    rng = np.random.default_rng(0)
    wf0 = WaveFunctionSet.random(grid, 4, rng)
    vloc = 0.4 * rng.standard_normal(grid.shape)
    T = 1.0
    ref = wf0.copy()
    QDPropagator(ref, vloc, PropagatorConfig(dt=T / 512, order=4)).run(512)

    rows = []
    for order in (2, 4):
        for nsteps in (10, 20):
            w = wf0.copy()
            t0 = time.perf_counter()
            QDPropagator(
                w, vloc, PropagatorConfig(dt=T / nsteps, order=order)
            ).run(nsteps)
            wall = time.perf_counter() - t0
            rows.append((order, nsteps, ref.max_abs_diff(w), wall))
    table = Table(["order", "steps", "error vs fine ref", "wall time"],
                  title="Ablation -- Strang (2nd) vs Suzuki (4th) propagator")
    for order, nsteps, err, wall in rows:
        table.add_row(order, nsteps, f"{err:.2e}", format_seconds(wall))
    text = table.render()
    write_report("ablation_propagator_order", text)
    print("\n" + text)
    errs = {(o, n): e for o, n, e, _ in rows}
    # Order 4 at 10 steps beats order 2 at 20 steps despite ~2.5x cost.
    assert errs[(4, 10)] < errs[(2, 20)]
