"""Fig. 6: cumulative whole-code speedup from the optimization sequence.

Paper: BLASification gives 25.2x on CPU; GPU offload (with cuBLAS)
multiplies by 18.6x; pinned memory adds 37.6%; cumulative 644x.

Reproduction: stage 1 (BLASification) is *measured* -- the real naive vs
BLAS LFD step at reduced scale; stages 2-3 (GPU offload, pinning) come
from the modeled Table II builds at paper scale.  The cumulative product
is compared against 644x.
"""

from __future__ import annotations


import numpy as np

from benchmarks.bench_common import write_bench_json, write_report
from benchmarks.bench_table2_builds import _measured_cpu_build, _modeled_build
from repro.analysis import cumulative_speedup
from repro.perf import Table, format_speedup

PAPER_STAGES = {"blas_on_cpu": 25.2, "gpu_offload": 18.6, "pinned": 1.376}
PAPER_TOTAL = 644.0


def test_fig6_report(benchmark):
    def run():
        # Stage 1 (measured): naive-loop LFD step vs BLASified step.
        loops = sum(_measured_cpu_build(False, np.complex128))
        blas = sum(_measured_cpu_build(True, np.complex128))
        # Stages 2-3 (modeled at paper scale, DP totals).
        t_cpu_blas = sum(_modeled_build("cpu_blas", 16))
        t_gpu = sum(_modeled_build("gpu_cublas", 16))
        t_pinned = sum(_modeled_build("gpu_cublas_pinned", 16))
        return loops, blas, t_cpu_blas, t_gpu, t_pinned

    loops, blas, t_cpu_blas, t_gpu, t_pinned = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    s1 = loops / blas
    s2 = t_cpu_blas / t_gpu
    s3 = t_gpu / t_pinned
    total = cumulative_speedup([s1, s2, s3])
    write_bench_json(
        "fig6_cumulative",
        {
            "cpu_loops": {"time_s": loops, "kind": "measured"},
            "cpu_blas": {"time_s": blas, "kind": "measured"},
            "modeled_cpu_blas": {"time_s": t_cpu_blas, "kind": "modeled"},
            "modeled_gpu_cublas": {"time_s": t_gpu, "kind": "modeled"},
            "modeled_gpu_pinned": {"time_s": t_pinned, "kind": "modeled"},
        },
        extra={
            "stage_speedups": {"blas_on_cpu": s1, "gpu_offload": s2,
                               "pinned": s3},
            "cumulative": total,
            "paper_cumulative": PAPER_TOTAL,
        },
    )
    table = Table(
        ["stage", "paper speedup", "ours", "note"],
        title="Fig. 6 -- cumulative DC-MESH speedup",
    )
    table.add_row("BLASification on CPU", format_speedup(PAPER_STAGES["blas_on_cpu"]),
                  format_speedup(s1), "measured (reduced scale)")
    table.add_row("GPU offload + cuBLAS", format_speedup(PAPER_STAGES["gpu_offload"]),
                  format_speedup(s2), "modeled (paper scale)")
    table.add_row("pinned memory/streams",
                  format_speedup(PAPER_STAGES["pinned"]),
                  format_speedup(s3), "modeled (paper scale)")
    table.add_row("cumulative", format_speedup(PAPER_TOTAL),
                  format_speedup(total), "")
    text = table.render()
    write_report("fig6_cumulative", text)
    print("\n" + text)

    # Shape: all three stages > 1, BLASification and offload are the two
    # big multipliers, pinning is a modest tail gain, cumulative is in
    # the hundreds.
    assert s1 > 5.0
    assert s2 > 5.0
    assert 1.0 < s3 < 2.0
    assert total > 100.0
