"""Serving-layer benchmark: latency, batching throughput, warm reuse.

The daemon exists to amortize request overheads that one-shot CLI runs
pay every time: process startup, ground-state recomputation, and -- under
concurrent load -- per-request kernel dispatch.  This bench holds the
three serving claims to numbers:

- **latency under load**: client-observed per-job latency (p50/p99) and
  jobs/sec at 1x, 4x and 16x concurrent clients submitting ensemble
  jobs to a batching daemon;
- **batching wins at load**: the same 16x workload through a coalescing
  daemon (``max_batch=16``) vs a singleton daemon (``max_batch=1``).
  Coalescing must deliver at least ``MIN_BATCH_SPEEDUP`` (1.3x) more
  jobs/sec -- asserted in-bench;
- **warm-state reuse**: cold scf jobs (pool invalidated before each) vs
  warm resubmissions of the same job.  Warm p50 must be at most
  ``MAX_WARM_OVER_COLD`` (0.5x) of cold p50 -- asserted in-bench.

Every job runs with memoization off and a distinct seed, so the numbers
measure serving mechanics, not artifact-cache hits.  The committed
``BENCH_serve.json`` baseline gate only needs to catch
order-of-magnitude drift (cross-machine ``--max-ratio 25`` in CI).
"""

from __future__ import annotations

import contextlib
import pathlib
import tempfile
import threading
import time
from typing import Dict, List, Tuple

import numpy as np

#: The per-job ensemble workload: small but real (tens of milliseconds),
#: hop-active so trajectories are seed-dependent.
ENS = {"ntraj": 8, "nsteps": 20, "nstates": 3, "coupling": 0.3,
       "batch_size": 32}

#: The warm-reuse workload: an scf ground state whose eigensolve
#: dominates its request cost.
SCF = {"grid": 12, "norb": 4, "nscf": 3, "ncg": 3}

#: (concurrent clients, jobs per client) per load level.
LOAD_LEVELS: Tuple[Tuple[int, int], ...] = ((1, 8), (4, 3), (16, 2))

#: Coalescing must beat singleton dispatch by this much at 16x load.
MIN_BATCH_SPEEDUP = 1.3

#: Warm p50 must be at most this fraction of cold p50.
MAX_WARM_OVER_COLD = 0.5


@contextlib.contextmanager
def _daemon(root: pathlib.Path, name: str, max_batch: int):
    from repro.serve import BatchPolicy, DaemonHandle, ServeClient, ServeConfig

    config = ServeConfig(
        socket_path=root / f"{name}.sock",
        artifact_root=None,  # measure serving mechanics, not memo hits
        scratch_root=root / f"{name}-scratch",
        policy=BatchPolicy(max_batch=max_batch, max_wait_s=0.05),
        max_queue=256,
    )
    with DaemonHandle(config):
        yield ServeClient(config.socket_path, timeout_s=300)


def _run_load(client, clients: int, jobs_each: int,
              seed0: int) -> Tuple[float, List[float]]:
    """Drive one load level; returns (wall_s, per-job latencies)."""
    latencies: List[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker(ci: int) -> None:
        barrier.wait()
        for j in range(jobs_each):
            seed = seed0 + 1000 * ci + j
            t0 = time.perf_counter()
            client.run_job("ensemble", {**ENS, "seed": seed},
                           memoize=False)
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)

    threads = [threading.Thread(target=worker, args=(ci,))
               for ci in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, latencies


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    arr = np.asarray(latencies)
    return {"p50_s": float(np.percentile(arr, 50)),
            "p99_s": float(np.percentile(arr, 99))}


def emit_serve():
    """Measure every serving claim; persist BENCH_serve.json."""
    from benchmarks.bench_common import write_bench_json

    kernels: Dict[str, Dict] = {}
    extra: Dict[str, object] = {}

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        root = pathlib.Path(tmp)

        # -- latency under load (batching daemon) ---------------------- #
        with _daemon(root, "batched", max_batch=16) as client:
            client.run_job("ensemble", {**ENS, "seed": 1},
                           memoize=False)  # warm-up (imports on worker)
            for clients, jobs_each in LOAD_LEVELS:
                wall, lats = _run_load(client, clients, jobs_each,
                                       seed0=100 * clients)
                njobs = clients * jobs_each
                kernels[f"serve_load_{clients}x"] = {
                    "time_s": wall, "kind": "measured",
                    "clients": clients, "jobs": njobs,
                }
                extra[f"load_{clients}x"] = {
                    **_percentiles(lats),
                    "jobs_per_s": njobs / wall,
                }
            batched_wall = kernels["serve_load_16x"]["time_s"]

        # -- batched vs unbatched at 16x load -------------------------- #
        with _daemon(root, "singleton", max_batch=1) as client:
            client.run_job("ensemble", {**ENS, "seed": 1}, memoize=False)
            clients, jobs_each = LOAD_LEVELS[-1]
            unbatched_wall, lats = _run_load(client, clients, jobs_each,
                                             seed0=100 * clients)
            kernels["serve_unbatched_16x"] = {
                "time_s": unbatched_wall, "kind": "measured",
                "clients": clients, "jobs": clients * jobs_each,
            }
            extra["unbatched_16x"] = {
                **_percentiles(lats),
                "jobs_per_s": clients * jobs_each / unbatched_wall,
            }
        batching_speedup = unbatched_wall / batched_wall
        extra["batching_speedup_16x"] = batching_speedup
        extra["min_batch_speedup"] = MIN_BATCH_SPEEDUP

        # -- cold vs warm ground states -------------------------------- #
        with _daemon(root, "warm", max_batch=16) as client:
            cold: List[float] = []
            for _ in range(3):
                client.invalidate(scope="pool")
                t0 = time.perf_counter()
                client.run_job("scf", dict(SCF), memoize=False)
                cold.append(time.perf_counter() - t0)
            warm: List[float] = []
            for _ in range(5):
                t0 = time.perf_counter()
                client.run_job("scf", dict(SCF), memoize=False)
                warm.append(time.perf_counter() - t0)
        cold_p50 = float(np.percentile(np.asarray(cold), 50))
        warm_p50 = float(np.percentile(np.asarray(warm), 50))
        kernels["serve_cold_scf"] = {
            "time_s": cold_p50, "kind": "measured", "samples": len(cold),
        }
        kernels["serve_warm_scf"] = {
            "time_s": warm_p50, "kind": "measured", "samples": len(warm),
        }
        warm_over_cold = warm_p50 / cold_p50
        extra["warm_over_cold_p50"] = warm_over_cold
        extra["max_warm_over_cold"] = MAX_WARM_OVER_COLD

    path = write_bench_json(
        "serve",
        kernels,
        workload={"ensemble": ENS, "scf": SCF,
                  "load_levels": [list(lv) for lv in LOAD_LEVELS]},
        extra=extra,
    )
    return path, batching_speedup, warm_over_cold, extra


def test_serve_telemetry():
    """Emit BENCH_serve.json; both serving gates must hold."""
    path, batching_speedup, warm_over_cold, extra = emit_serve()
    assert path.exists()
    assert batching_speedup >= MIN_BATCH_SPEEDUP, extra
    assert warm_over_cold <= MAX_WARM_OVER_COLD, extra


if __name__ == "__main__":
    out, batching_speedup, warm_over_cold, info = emit_serve()
    print(f"wrote {out}")
    print(f"batching speedup at 16x load: {batching_speedup:.2f}x "
          f"(gate >= {MIN_BATCH_SPEEDUP}x)")
    print(f"warm/cold p50: {warm_over_cold:.3f} "
          f"(gate <= {MAX_WARM_OVER_COLD})")
    for level, _ in ((f"load_{c}x", j) for c, j in LOAD_LEVELS):
        stats = info[level]
        print(f"  {level}: p50 {stats['p50_s'] * 1e3:.1f} ms, "
              f"p99 {stats['p99_s'] * 1e3:.1f} ms, "
              f"{stats['jobs_per_s']:.1f} jobs/s")
    ub = info["unbatched_16x"]
    print(f"  unbatched_16x: p50 {ub['p50_s'] * 1e3:.1f} ms, "
          f"{ub['jobs_per_s']:.1f} jobs/s")
