"""Performance-regression gate over BENCH_*.json telemetry files.

Compares a *current* telemetry file against a committed *baseline* and
fails (exit code 1) when any kernel regressed:

- ``modeled`` entries are deterministic roofline arithmetic, so any
  drift beyond ``--modeled-rtol`` (default 1e-6) means the cost model
  itself changed and the baseline must be regenerated deliberately.
- ``measured`` entries carry machine noise, so they gate on a ratio:
  current/baseline above ``--max-ratio`` (default 1.5) is a regression,
  and entries faster than ``--min-time`` seconds are skipped entirely
  (interpreter jitter dominates below that).  CI passes a generous
  ``--max-ratio`` because baseline and runner hardware differ.

Usage::

    python -m benchmarks.regression BASELINE.json CURRENT.json \
        [--max-ratio 1.5] [--min-time 1e-4] [--modeled-rtol 1e-6] \
        [--allow-missing]

A current file compared against itself always passes.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from benchmarks.bench_common import load_bench_json

#: Measured entries may be this many times slower than baseline.
DEFAULT_MAX_RATIO = 1.5

#: Measured entries faster than this are pure noise; skip them.
DEFAULT_MIN_TIME_S = 1e-4

#: Modeled entries are deterministic; allow only float round-off drift.
DEFAULT_MODELED_RTOL = 1e-6


@dataclass
class Verdict:
    """Outcome of one kernel comparison."""

    kernel: str
    kind: str
    baseline_s: float
    current_s: float
    status: str  # "ok" | "regressed" | "skipped" | "missing" | "new"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")


def compare_bench(
    baseline: Union[str, Dict],
    current: Union[str, Dict],
    max_ratio: float = DEFAULT_MAX_RATIO,
    min_time_s: float = DEFAULT_MIN_TIME_S,
    modeled_rtol: float = DEFAULT_MODELED_RTOL,
    allow_missing: bool = False,
) -> List[Verdict]:
    """Compare two telemetry documents kernel by kernel.

    Accepts loaded documents or paths.  Returns one :class:`Verdict`
    per baseline kernel (plus ``new`` verdicts for kernels only in the
    current file, which never fail).  The run regresses iff any verdict
    has ``failed``.
    """
    if not isinstance(baseline, dict):
        baseline = load_bench_json(baseline)
    if not isinstance(current, dict):
        current = load_bench_json(current)
    for label, doc in (("baseline", baseline), ("current", current)):
        if "kernels" not in doc or not isinstance(doc["kernels"], dict):
            raise ValueError(
                f"{label} document has no 'kernels' mapping -- not a "
                f"repro-bench telemetry file?"
            )
    base_k = baseline["kernels"]
    cur_k = current["kernels"]
    verdicts: List[Verdict] = []
    for name, b in sorted(base_k.items()):
        bt = float(b["time_s"])
        c = cur_k.get(name)
        if c is None:
            status = "skipped" if allow_missing else "missing"
            verdicts.append(Verdict(name, b["kind"], bt, float("nan"),
                                    status, "absent from current file"))
            continue
        ct = float(c["time_s"])
        kind = c.get("kind", b["kind"])
        # NaN/inf would sail through every later comparison (NaN > x is
        # always False), silently turning a corrupt file into "ok" --
        # fail loudly instead.
        if not math.isfinite(bt) or not math.isfinite(ct):
            verdicts.append(Verdict(
                name, kind, bt, ct, "regressed",
                f"non-finite time (base {bt!r}, cur {ct!r}) -- corrupt "
                f"telemetry"))
            continue
        if kind == "modeled":
            scale = max(abs(bt), abs(ct), 1e-300)
            drift = abs(ct - bt) / scale
            if drift > modeled_rtol:
                verdicts.append(Verdict(
                    name, kind, bt, ct, "regressed",
                    f"modeled drift {drift:.2e} > rtol {modeled_rtol:.0e} "
                    f"(cost model changed?)"))
            else:
                verdicts.append(Verdict(name, kind, bt, ct, "ok",
                                        f"drift {drift:.2e}"))
            continue
        if bt < min_time_s and ct < min_time_s:
            verdicts.append(Verdict(name, kind, bt, ct, "skipped",
                                    f"both below {min_time_s:g}s noise floor"))
            continue
        ratio = ct / bt if bt > 0 else float("inf")
        if ratio > max_ratio:
            verdicts.append(Verdict(
                name, kind, bt, ct, "regressed",
                f"{ratio:.2f}x slower (limit {max_ratio:g}x)"))
        else:
            verdicts.append(Verdict(name, kind, bt, ct, "ok",
                                    f"{ratio:.2f}x"))
    for name, c in sorted(cur_k.items()):
        if name not in base_k:
            verdicts.append(Verdict(name, c["kind"], float("nan"),
                                    float(c["time_s"]), "new",
                                    "not in baseline"))
    return verdicts


def render_verdicts(verdicts: List[Verdict]) -> str:
    """Aligned text table of the comparison outcome."""
    if not verdicts:
        return "(no kernels compared)"
    width = max(len(v.kernel) for v in verdicts)
    lines = []
    for v in verdicts:
        mark = "FAIL" if v.failed else ("SKIP" if v.status in
                                        ("skipped", "new") else "ok")
        lines.append(
            f"{mark:<4}  {v.kernel:<{width}}  {v.kind:<8}  "
            f"base {v.baseline_s:12.6g}s  cur {v.current_s:12.6g}s  "
            f"{v.detail}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit code 1 on any regression."""
    parser = argparse.ArgumentParser(
        prog="benchmarks.regression",
        description="Gate a BENCH_*.json file against a committed baseline",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--max-ratio", type=float,
                        default=DEFAULT_MAX_RATIO,
                        help="max measured current/baseline slowdown "
                             "(default %(default)s)")
    parser.add_argument("--min-time", type=float,
                        default=DEFAULT_MIN_TIME_S,
                        help="measured noise floor in seconds "
                             "(default %(default)s)")
    parser.add_argument("--modeled-rtol", type=float,
                        default=DEFAULT_MODELED_RTOL,
                        help="relative tolerance for modeled entries "
                             "(default %(default)s)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="kernels absent from the current file are "
                             "skipped instead of failing")
    args = parser.parse_args(argv)
    verdicts = compare_bench(
        args.baseline, args.current,
        max_ratio=args.max_ratio,
        min_time_s=args.min_time,
        modeled_rtol=args.modeled_rtol,
        allow_missing=args.allow_missing,
    )
    print(render_verdicts(verdicts))
    nfail = sum(v.failed for v in verdicts)
    if nfail:
        print(f"REGRESSION: {nfail} kernel(s) failed the gate")
        return 1
    print(f"ok: {len(verdicts)} kernel(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
