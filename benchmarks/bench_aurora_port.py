"""Forward prediction: the Aurora port (the paper's closing teaser).

The conclusion states "Most recently, the DC-MESH code has been ported to
the Aurora supercomputer at Argonne, which will be presented elsewhere."
This bench makes that claim reproducible ahead of time: the same
calibrated DC-MESH step model evaluated on the Aurora node architecture
(6 Intel Max 1550 GPUs per node, Xeon Max hosts, Slingshot fabric), with
no re-fitting -- every constant carries over from the Polaris
calibration.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.bench_common import write_report
from repro.device.spec import PVC_MAX_1550, XEON_MAX_CORE
from repro.parallel import weak_scaling_study
from repro.parallel.scaling import calibrated_model
from repro.perf import Table


@pytest.fixture(scope="module")
def models():
    polaris = calibrated_model()
    aurora = replace(polaris, gpu=PVC_MAX_1550, cpu_core=XEON_MAX_CORE)
    return polaris, aurora


def test_aurora_step_model(benchmark, models):
    _, aurora = models
    t = benchmark(aurora.step_time, 6)
    assert t > 0


def test_aurora_report(benchmark, models):
    polaris, aurora = models

    def run():
        out = {}
        out["polaris_node"] = polaris.step_time(4)       # 4 ranks/node
        out["aurora_node"] = aurora.step_time(6)         # 6 ranks/node
        out["aurora_weak"] = weak_scaling_study(
            aurora, p_list=(6, 12, 24, 48, 96, 192, 384, 768, 1536), p_ref=6
        )
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # Node-level throughput: atoms * steps / s per node.
    thr_polaris = 4 * polaris.atoms_per_rank / res["polaris_node"]
    thr_aurora = 6 * aurora.atoms_per_rank / res["aurora_node"]
    table = Table(
        ["machine", "ranks/node", "step time", "node throughput",
         "vs Polaris"],
        title="Aurora port prediction (no re-fitting; Polaris-calibrated "
              "constants + Aurora datasheet hardware)",
    )
    table.add_row("Polaris (4x A100)", 4, f"{res['polaris_node']:.2f} s",
                  f"{thr_polaris:.2f}", "1.00x")
    table.add_row("Aurora (6x Max 1550)", 6, f"{res['aurora_node']:.2f} s",
                  f"{thr_aurora:.2f}", f"{thr_aurora / thr_polaris:.2f}x")
    lines = [table.render(), "", "Aurora weak scaling (40 atoms/rank):"]
    for p in res["aurora_weak"]:
        lines.append(
            f"  P={p.nranks:5d}  t={p.step_time:7.2f}s  eta={p.efficiency:.4f}"
        )
    text = "\n".join(lines)
    write_report("aurora_port", text)
    print("\n" + text)

    # Shape: the PVC node outruns the A100 node (more + faster GPUs, but
    # the CPU-side QXMD limits the gain -- Amdahl at the node level);
    # weak scaling stays efficient.
    assert thr_aurora > 1.2 * thr_polaris
    assert res["aurora_weak"][-1].efficiency > 0.9
