"""Fig. 3: strong-scaling parallel efficiency for 5,120 / 10,240 atoms.

Paper: eta = 0.6634 at P = 256 for 5,120 atoms (P = 64..256) and
eta = 0.8083 at P = 512 for 10,240 atoms (P = 128..512).

Reproduction: the calibrated step model (fixed overhead fitted to the
5,120-atom anchor; the 10,240-atom curve is a pure prediction).  Note the
paper's own two strong-scaling numbers are mutually inconsistent with its
closed-form law -- both systems run at identical atoms/rank ranges, so a
granularity-driven model necessarily predicts near-identical efficiencies;
EXPERIMENTS.md discusses the residual.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import write_report
from repro.parallel import fit_strong_efficiency_law, strong_scaling_study
from repro.parallel.scaling import calibrated_model
from repro.perf import Table

PAPER = {
    (5120, 256): 0.6634,
    (10240, 512): 0.8083,
}

CASES = [(5120.0, (64, 128, 256)), (10240.0, (128, 256, 512))]


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


@pytest.mark.parametrize("natoms,p_list", CASES, ids=["5120", "10240"])
def test_strong_scaling_sweep(benchmark, model, natoms, p_list):
    points = benchmark(strong_scaling_study, model, natoms, p_list)
    assert len(points) == len(p_list)


def test_fig3_report(benchmark, model):
    def run():
        return {n: strong_scaling_study(model, n, ps) for n, ps in CASES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["atoms", "ranks", "step time", "speedup", "efficiency", "paper"],
        title="Fig. 3 -- strong-scaling parallel efficiency (modeled "
              "Polaris; fixed overhead fitted to the 5,120@256 anchor)",
    )
    for natoms, pts in results.items():
        for p in pts:
            paper = PAPER.get((int(natoms), p.nranks))
            table.add_row(
                int(natoms), p.nranks, f"{p.step_time:.2f} s",
                f"{p.speedup:.3f}", f"{p.efficiency:.4f}",
                f"{paper:.4f}" if paper else "-",
            )
    alpha, beta = fit_strong_efficiency_law(results[5120.0])
    text = table.render() + (
        f"\nfitted strong law on 5,120 atoms: 1/eta - 1 = "
        f"{alpha:.3e} (P/N)^(1/3) + {beta:.3e} P log2(P) / N\n"
        f"note: the 10,240-atom P=512 prediction ({results[10240.0][-1].efficiency:.3f}) "
        f"differs from the paper's 0.8083 -- the paper's two strong-scaling "
        f"points are mutually inconsistent with its own efficiency law "
        f"(identical atoms/rank must give near-identical efficiency)."
    )
    write_report("fig3_strong_scaling", text)
    print("\n" + text)

    eta_5120 = {p.nranks: p.efficiency for p in results[5120.0]}
    assert eta_5120[256] == pytest.approx(0.6634, abs=0.02)
    # Shape: strong scaling is much worse than weak scaling and decays
    # with P for both problem sizes.
    for pts in results.values():
        effs = [p.efficiency for p in pts]
        assert all(a > b for a, b in zip(effs, effs[1:]))
        assert effs[-1] < 0.85
