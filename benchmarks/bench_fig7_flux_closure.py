"""Fig. 7: flux-closure structure during ferroelectric switching in PbTiO3.

The paper's application: a flux-closure polar topology is prepared with
the NNFF-accelerated multiscale pipeline and then driven by a fs laser
through DC-MESH; the interest is light-induced topological switching.

Reproduction: the in-repo pipeline --
  1. prepare the flux closure on the local-mode lattice (NNFF-relaxed),
  2. verify the winding number (the topological protection),
  3. sweep the photoexcitation fraction across the Landau threshold and
     track the collapse of the texture (the switching event).

The bench asserts the qualitative physics: the texture is metastable in
the ground state and switches only above the excitation threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.bench_common import write_report
from repro.materials import (
    EffectiveHamiltonian,
    flux_closure_modes,
    train_nnff,
    vorticity_field,
    winding_number,
)
from repro.perf import Table

SHAPE = (16, 2, 16)


@pytest.fixture(scope="module")
def ham():
    return EffectiveHamiltonian(SHAPE)


def test_flux_closure_relaxation(benchmark, ham):
    """Timing of the ground-state texture relaxation."""
    fc = flux_closure_modes(SHAPE, ham.params.p_min)

    def run():
        relaxed, e = ham.relax(fc, nsteps=150)
        return relaxed

    relaxed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert winding_number(relaxed) == pytest.approx(1.0, abs=0.05)


def test_nnff_preparation(benchmark, ham):
    """Timing of the NNFF training that accelerates topology preparation."""
    rng = np.random.default_rng(0)

    def run():
        model, hist = train_nnff(ham, rng, hidden=16, nconfigs=18, epochs=60)
        return hist

    hist = benchmark.pedantic(run, rounds=1, iterations=1)
    assert hist[-1] < hist[0]


def test_fig7_report(benchmark, ham):
    p0 = ham.params.p_min
    threshold = ham.params.switching_threshold

    def sweep():
        rows = []
        for n_exc in (0.0, 0.2, 0.4, 0.6, 0.8):
            relaxed, e = ham.relax(
                flux_closure_modes(SHAPE, p0), nsteps=400, n_exc=n_exc
            )
            mags = float(np.linalg.norm(relaxed, axis=-1).mean())
            # Winding is only meaningful while the texture survives.
            w = winding_number(relaxed) if mags > 0.05 * p0 else 0.0
            vort = float(np.abs(vorticity_field(relaxed)).max())
            rows.append((n_exc, mags, w, vort, e))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["excitation fraction", "mean |p|", "winding", "max vorticity",
         "energy"],
        title=f"Fig. 7 -- laser-driven flux-closure switching "
              f"(Landau threshold n_exc = {threshold:.2f})",
    )
    for n_exc, mags, w, vort, e in rows:
        table.add_row(f"{n_exc:.1f}", f"{mags:.3f}", f"{w:+.2f}",
                      f"{vort:.3f}", f"{e:.2f}")
    text = table.render()
    write_report("fig7_flux_closure", text)
    print("\n" + text)

    by_exc = {r[0]: r for r in rows}
    # Below threshold: topology protected (winding 1, finite |p|).
    assert by_exc[0.0][2] == pytest.approx(1.0, abs=0.05)
    assert by_exc[0.2][2] == pytest.approx(1.0, abs=0.05)
    assert by_exc[0.0][1] > 0.5 * p0
    # Above threshold: the polar texture collapses -- the switching event.
    assert by_exc[0.8][1] < 0.05 * p0
    assert by_exc[0.8][2] == 0.0
