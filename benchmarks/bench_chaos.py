"""Chaos-machinery overhead benchmark: disarmed hooks must be free.

The hang-aware execution layer threads two hot-path hooks through the
solver: ``fault_point(site)`` (chaos injection) and ``check_deadline()``
(liveness budgets).  Both are designed to cost one module-global read
when disarmed, so a production run that never arms a fault plan or a
deadline scope pays essentially nothing.  This bench holds that claim
to a number:

- the per-call disarmed cost of each hook, timed over a tight loop;
- a short serial DC-mesh solve, plain vs under a generous (armed but
  never-firing) deadline scope;
- the *modeled* overhead fraction -- per-call disarmed cost times a
  pessimistic calls-per-solve budget, over the plain solve wall --
  which must stay under ``MAX_OVERHEAD_FRACTION`` (1%).

The emitted ``BENCH_chaos.json`` regression-gates the loop timings and
solve walls against the committed baseline like every other kernel.
"""

from __future__ import annotations

import time

import numpy as np

#: Tight-loop iteration count for per-call hook costs.  Large enough
#: that the loop wall clears the regression gate's min-time floor.
HOOK_ITERS = 200_000

#: Best-of repeats for every timed section.
REPEATS = 5

#: MD steps in the solve comparison (serial backend, test-scale mesh).
SOLVE_STEPS = 2

#: Pessimistic hook-calls-per-MD-step budget for the modeled overhead:
#: an instrumented step issues a few dozen hook calls (one per mapped
#: domain chunk plus per-gather polls), so 500 is ~25x headroom.
CALLS_PER_STEP = 500

#: Disarmed hooks may cost at most this fraction of the solve wall.
MAX_OVERHEAD_FRACTION = 0.01


def _make_sim():
    from repro.core.mesh import DCMESHConfig, DCMESHSimulation
    from repro.core.timescale import TimescaleSplit
    from repro.grids.grid import Grid3D
    from repro.pseudo.elements import get_species

    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=42,
    )
    return DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        config=config, buffer_width=2,
    )


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _hook_loop_s(hook) -> float:
    """Best wall time for HOOK_ITERS disarmed hook calls."""
    def loop():
        for _ in range(HOOK_ITERS):
            hook()
    loop()  # warm up
    return _best_of(loop)


def emit_chaos():
    """Time the disarmed hooks and the scoped-vs-plain solve; persist."""
    from benchmarks.bench_common import write_bench_json
    from repro.resilience.faults import disarm, fault_point
    from repro.resilience.liveness import check_deadline, deadline_scope

    disarm()

    check_loop_s = _hook_loop_s(lambda: check_deadline("bench"))
    fault_loop_s = _hook_loop_s(lambda: fault_point("bench.site"))
    per_call_check_s = check_loop_s / HOOK_ITERS
    per_call_fault_s = fault_loop_s / HOOK_ITERS

    def solve_plain():
        _make_sim().run(SOLVE_STEPS)

    def solve_scoped():
        with deadline_scope(3600.0, "bench.solve"):
            _make_sim().run(SOLVE_STEPS)

    solve_plain()  # warm up caches/imports once for both variants
    plain_s = _best_of(solve_plain, repeats=3)
    scoped_s = _best_of(solve_scoped, repeats=3)

    per_call_s = per_call_check_s + per_call_fault_s
    overhead_fraction = per_call_s * CALLS_PER_STEP * SOLVE_STEPS / plain_s
    extra = {
        "per_call_check_deadline_s": per_call_check_s,
        "per_call_fault_point_s": per_call_fault_s,
        "calls_per_step_budget": CALLS_PER_STEP,
        "overhead_fraction": overhead_fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "scoped_over_plain": scoped_s / plain_s,
    }
    path = write_bench_json(
        "chaos",
        {
            "check_deadline_disarmed_loop": {
                "time_s": check_loop_s, "kind": "measured",
                "calls": HOOK_ITERS,
            },
            "fault_point_disarmed_loop": {
                "time_s": fault_loop_s, "kind": "measured",
                "calls": HOOK_ITERS,
            },
            "solve_plain": {"time_s": plain_s, "kind": "measured"},
            "solve_deadline_scoped": {"time_s": scoped_s, "kind": "measured"},
        },
        workload={
            "hook_iters": HOOK_ITERS,
            "solve_steps": SOLVE_STEPS,
            "grid": [12, 12, 12],
            "natoms": 2,
        },
        extra=extra,
    )
    return path, extra


def test_chaos_telemetry():
    """Emit BENCH_chaos.json; disarmed hook overhead stays under 1%.

    The gate is modeled, not a raw A/B wall-clock diff: two short solve
    walls differ by machine noise larger than the hooks' true cost, so
    the bench gates on per-call disarmed cost times a pessimistic
    calls-per-solve budget instead, which is orders of magnitude more
    sensitive than the comparison it replaces.
    """
    path, extra = emit_chaos()
    assert path.exists()
    assert extra["overhead_fraction"] < MAX_OVERHEAD_FRACTION, extra
    # Each individual hook must be sub-microsecond when disarmed.
    assert extra["per_call_check_deadline_s"] < 1e-6, extra
    assert extra["per_call_fault_point_s"] < 1e-6, extra


if __name__ == "__main__":
    out, info = emit_chaos()
    print(f"wrote {out} (disarmed overhead fraction "
          f"{info['overhead_fraction']:.2e}, "
          f"scoped/plain {info['scoped_over_plain']:.3f}x)")
