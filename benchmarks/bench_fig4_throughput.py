"""Fig. 4: single-node throughput, CPU-only vs CPU+GPU.

Paper: 4 MPI ranks on one Polaris node, 40-atom PbTiO3 per rank;
throughput = ranks completing the fixed problem per unit time
(P / t_completion); offloading the key computations gives 19x.

Reproduction: the DC-MESH step model evaluated with the LFD work charged
to the A100 (CPU+GPU) or to the EPYC core (CPU-only).  The ratio emerges
from the rooflines; no constant is fitted to this figure.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import write_report
from repro.analysis import throughput
from repro.parallel.scaling import calibrated_model
from repro.perf import Table

PAPER_SPEEDUP = 19.0


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


def test_single_node_step(benchmark, model):
    t = benchmark(model.step_time, 4)
    assert t > 0


def test_fig4_report(benchmark, model):
    def run():
        t_gpu = model.step_time(4, use_gpu=True)
        t_cpu = model.step_time(4, use_gpu=False)
        return t_gpu, t_cpu

    t_gpu, t_cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    thr_gpu = throughput(4, t_gpu)
    thr_cpu = throughput(4, t_cpu)
    ratio = thr_gpu / thr_cpu
    table = Table(
        ["configuration", "step time", "throughput (ranks/s)", "speedup"],
        title="Fig. 4 -- single Polaris node throughput (modeled; "
              "4 ranks x 40-atom PbTiO3)",
    )
    table.add_row("CPU only (EPYC 7543P)", f"{t_cpu:.2f} s",
                  f"{thr_cpu:.4f}", "1.00x")
    table.add_row("CPU + 4x A100", f"{t_gpu:.2f} s", f"{thr_gpu:.4f}",
                  f"{ratio:.2f}x")
    # Energy-to-solution extension: faster beats hungrier.
    from repro.device.energy import NodeEnergyModel

    e_gpu = NodeEnergyModel(ngpus=4).energy_to_solution(t_gpu)
    e_cpu = NodeEnergyModel(ngpus=0).energy_to_solution(t_cpu)
    text = table.render() + (
        f"\npaper speedup: {PAPER_SPEEDUP:.0f}x"
        f"\nenergy-to-solution per MD step: CPU-only {e_cpu / 1e3:.1f} kJ vs "
        f"CPU+GPU {e_gpu / 1e3:.1f} kJ "
        f"({e_cpu / e_gpu:.1f}x less energy despite "
        f"{NodeEnergyModel(ngpus=4).node_power / NodeEnergyModel(ngpus=0).node_power:.1f}x the power)"
    )
    write_report("fig4_throughput", text)
    print("\n" + text)

    # Shape: GPU wins by an order of magnitude (paper: 19x).  The exact
    # factor depends on the QXMD/LFD split; accept the right decade.
    assert 5.0 < ratio < 80.0
