"""Table I: runtime of the kin_prop() kernel across Algorithms 1-5.

Paper values (1,000 QD steps, 64 orbitals, 70x70x72 mesh, one CPU core /
one A100):

    Algorithm 1 (baseline, CPU)      8.655 s   1x
    Algorithm 3 (interchange, CPU)   2.356 s   3.67x
    Algorithm 4 (blocked, CPU)       0.939 s   9.22x
    Algorithm 5 (GPU, nowait)        0.026 s   338x
    Algorithm 5 (GPU, sync)          0.029 s   298x   (async gain 10.35%)

Here: the CPU rows are *measured* (real NumPy kernels at the reduced
scale documented in bench_common; interpreter/cache costs stand in for
scalar/cache costs), the GPU rows are *modeled* on the A100 roofline for
the same reduced workload, including the nowait/sync launch contrast.
"""

from __future__ import annotations

import sys
import time
from typing import Dict

import pytest

from benchmarks.bench_common import (
    MEASURED_GRID_N,
    MEASURED_NUNOCC,
    measured_setup,
    write_bench_json,
    write_report,
)
from repro.device import A100, KernelLauncher, SimClock, Stream
from repro.lfd import kinetic_step
from repro.lfd.costs import LFDWorkload
from repro.perf import Table, format_seconds, format_speedup

PAPER = {
    "baseline": (8.655, 1.0),
    "interchange": (2.356, 3.67),
    "blocked": (0.939, 9.22),
    "gpu_async": (0.026, 338.0),
    "gpu_sync": (0.029, 298.0),
}

#: QD steps per measured round (paper: 1,000; ratios are per-step anyway).
NSTEPS = 1

#: Table I keeps the paper's 64 orbitals: the loop-interchange gain
#: (Algorithm 3) only materializes when the orbital axis is long enough
#: to amortize the plane loops, exactly as in the paper's cache argument.
TABLE1_NORB = 64


def measure_cpu_variants(rounds: int = 2) -> Dict[str, float]:
    """Best-of-``rounds`` wall times per CPU variant at the reduced scale."""
    times = {}
    for variant in ("baseline", "interchange", "blocked", "collapsed"):
        _, wf, _, _ = measured_setup(norb=TABLE1_NORB)
        best = float("inf")
        for _ in range(rounds):
            w = wf.copy()
            t0 = time.perf_counter()
            for _ in range(NSTEPS):
                kinetic_step(w, 0.02, variant=variant)
            best = min(best, time.perf_counter() - t0)
        times[variant] = best
    return times


@pytest.fixture(scope="module")
def measured_times():
    """Module-cached :func:`measure_cpu_variants` result."""
    return measure_cpu_variants()


@pytest.mark.parametrize(
    "variant", ["baseline", "interchange", "blocked", "collapsed"]
)
def test_kin_prop_variant(benchmark, variant):
    """pytest-benchmark timing of each Algorithm variant (measured rows)."""
    _, wf, _, _ = measured_setup(norb=TABLE1_NORB)

    def run():
        kinetic_step(wf, 0.02, variant=variant)

    benchmark.pedantic(run, rounds=2, iterations=1)
    key = {"collapsed": "gpu_async"}.get(variant, variant)
    benchmark.extra_info["paper_runtime_s"] = PAPER[key][0]
    benchmark.extra_info["workload"] = (
        f"{MEASURED_GRID_N}^3 mesh, {TABLE1_NORB} orbitals, 1 QD step "
        f"(paper: 70x70x72, 64 orbitals, 1000 steps)"
    )


def _modeled_gpu_times() -> tuple[float, float]:
    """(async, sync) modeled A100 times for the measured workload size."""
    w = LFDWorkload(
        ngrid=MEASURED_GRID_N ** 3,
        norb=TABLE1_NORB,
        nunocc=MEASURED_NUNOCC,
        itemsize=16,
        nqd=1,
    )
    pass_cost = w.kin_prop_pass()
    npasses = 9 * NSTEPS

    sync_clock = SimClock()
    sync_launcher = KernelLauncher(A100, sync_clock)
    for i in range(npasses):
        sync_launcher.launch(
            f"kin{i}", pass_cost.flops, pass_cost.bytes_moved, itemsize=8
        )

    async_clock = SimClock()
    async_launcher = KernelLauncher(A100, async_clock)
    stream = Stream(async_clock)
    for i in range(npasses):
        async_launcher.launch(
            f"kin{i}", pass_cost.flops, pass_cost.bytes_moved, itemsize=8,
            stream=stream, nowait=True,
        )
    stream.synchronize()
    return async_clock.now, sync_clock.now


def collect_table1(measured: Dict[str, float]) -> Dict[str, float]:
    """Join the measured CPU rows with the modeled GPU rows."""
    t_async, t_sync = _modeled_gpu_times()
    ours = dict(measured)
    ours["gpu_async"] = t_async
    ours["gpu_sync"] = t_sync
    return ours


def emit_table1_json(ours: Dict[str, float]):
    """Write BENCH_table1_kinprop.json; returns (path, total seconds).

    One kernel entry per Table I row; ``total_s`` is their exact sum, so
    the per-kernel entries reconcile with the reported total by
    construction.  The intermediate ``collapsed`` variant (the GPU
    algorithm's loop structure timed on the CPU) rides along as a
    measured entry so the regression gate also covers it.
    """
    kernels = {}
    for key, t in ours.items():
        kind = "modeled" if key.startswith("gpu_") else "measured"
        entry = {"time_s": t, "kind": kind}
        if key in PAPER:
            entry["paper_time_s"] = PAPER[key][0]
            entry["paper_speedup"] = PAPER[key][1]
        kernels[key] = entry
    total = sum(e["time_s"] for e in kernels.values())
    path = write_bench_json(
        "table1_kinprop",
        kernels,
        workload=dict(
            ngrid=MEASURED_GRID_N ** 3,
            norb=TABLE1_NORB,
            nunocc=MEASURED_NUNOCC,
            nsteps=NSTEPS,
            paper_workload="70x70x72 mesh, 64 orbitals, 1000 QD steps",
        ),
        extra={"async_gain": ours["gpu_sync"] / ours["gpu_async"] - 1.0},
        total_s=total,
    )
    return path, total


def test_table1_report(benchmark, measured_times):
    """Assemble the Table I reproduction and check its shape."""
    ours = benchmark.pedantic(
        collect_table1, args=(measured_times,), rounds=1, iterations=1
    )
    text, speedups = render_table1(ours)
    write_report("table1_kinprop", text)
    emit_table1_json(ours)
    print("\n" + text)

    # Shape assertions: monotone optimization sequence; GPU wins by a
    # large factor; async beats sync.
    assert speedups["interchange"] > 1.2
    assert speedups["blocked"] > speedups["interchange"]
    assert speedups["gpu_async"] > 20.0
    assert speedups["gpu_async"] > speedups["gpu_sync"]


def render_table1(ours: Dict[str, float]):
    """Render the Table I text report; returns (text, speedups-vs-baseline)."""
    base = ours["baseline"]
    table = Table(
        ["implementation", "paper runtime", "paper speedup",
         "ours runtime", "ours speedup", "note"],
        title="Table I -- kin_prop() optimization sequence "
              "(CPU rows measured at reduced scale, GPU rows modeled)",
    )
    rows = [
        ("Algorithm 1 (CPU baseline)", "baseline", "measured"),
        ("Algorithm 3 (loop interchange)", "interchange", "measured"),
        ("Algorithm 4 (blocking)", "blocked", "measured"),
        ("Algorithm 5 (GPU, nowait)", "gpu_async", "modeled A100"),
        ("Algorithm 5 (GPU, sync)", "gpu_sync", "modeled A100"),
    ]
    speedups = {}
    for label, key, note in rows:
        paper_t, paper_s = PAPER[key]
        s = base / ours[key]
        speedups[key] = s
        table.add_row(
            label,
            format_seconds(paper_t),
            format_speedup(paper_s),
            format_seconds(ours[key]),
            format_speedup(s),
            note,
        )
    async_gain = ours["gpu_sync"] / ours["gpu_async"] - 1.0
    text = table.render() + (
        f"\nasync (nowait) gain over sync: {async_gain * 100:.2f}% "
        f"(paper: 10.35%)"
    )
    return text, speedups


def main() -> int:
    """Standalone entry: measure, model, write text report + BENCH JSON."""
    ours = collect_table1(measure_cpu_variants())
    text, _ = render_table1(ours)
    report = write_report("table1_kinprop", text)
    json_path, total = emit_table1_json(ours)
    print(text)
    print(f"report: {report}")
    print(f"telemetry: {json_path} (total {total:.6f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
