"""Substrate micro-benchmarks: the solvers under the headline kernels.

Not a paper table, but what a downstream user of this library profiles
first: the O(N) multigrid Poisson solve, the CG eigensolver, one full SCF
iteration, an FDTD step, the FSSH electronic step, and the effective-
Hamiltonian relaxation.  The O(N) property of the multigrid is asserted
directly (time per point roughly flat across sizes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.maxwell import VectorPotentialFDTD
from repro.materials import EffectiveHamiltonian, flux_closure_modes
from repro.multigrid import PoissonMultigrid
from repro.pseudo import get_species
from repro.qxmd import FSSH, KSHamiltonian, SurfaceHoppingState, cg_eigensolve
from repro.qxmd.scf import SCFConfig, scf_solve


@pytest.mark.parametrize("n", [16, 32])
def test_multigrid_poisson(benchmark, n):
    grid = Grid3D.cubic(n, 0.5)
    rng = np.random.default_rng(0)
    rho = rng.standard_normal(grid.shape)
    rho -= rho.mean()
    mg = PoissonMultigrid(grid)

    def solve():
        v, stats = mg.solve(rho, tol=1e-8)
        assert stats.converged
        return v

    benchmark(solve)
    benchmark.extra_info["points"] = grid.npoints


def test_multigrid_is_linear_scaling(benchmark):
    """Time per mesh point stays within ~3x from 16^3 to 32^3."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    per_point = []
    for n in (16, 32):
        grid = Grid3D.cubic(n, 0.5)
        rng = np.random.default_rng(0)
        rho = rng.standard_normal(grid.shape)
        rho -= rho.mean()
        mg = PoissonMultigrid(grid)
        mg.solve(rho, tol=1e-8)  # warm up
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            mg.solve(rho, tol=1e-8)
            best = min(best, time.perf_counter() - t0)
        per_point.append(best / grid.npoints)
    assert per_point[1] < 3.0 * per_point[0]


def test_cg_eigensolver(benchmark):
    grid = Grid3D.cubic(12, 0.5)
    rng = np.random.default_rng(1)
    vloc = rng.standard_normal(grid.shape)
    ham = KSHamiltonian(grid, vloc)

    def solve():
        wf = WaveFunctionSet.random(grid, 6, np.random.default_rng(2))
        return cg_eigensolve(ham, wf, ncg=3)

    evals = benchmark(solve)
    assert np.all(np.diff(evals) >= -1e-9)


def test_scf_iteration(benchmark):
    grid = Grid3D.cubic(12, 0.6)
    L = grid.lengths[0]
    pos = np.array([[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]])
    sp = [get_species("H"), get_species("H")]

    def solve():
        return scf_solve(grid, pos, sp, norb=3,
                         config=SCFConfig(nscf=1, ncg=3))

    res = benchmark(solve)
    assert res.occupations.sum() == pytest.approx(2.0)


def test_fdtd_step(benchmark):
    solver = VectorPotentialFDTD(nz=4096, dz=10.0, dt=0.05)
    solver.a[:] = np.sin(np.linspace(0, 20 * np.pi, 4096))
    solver.a_prev[:] = solver.a
    benchmark(solver.step)


def test_fssh_step(benchmark):
    rng = np.random.default_rng(3)
    fssh = FSSH(rng, decoherence_c=0.1)
    n = 32
    energies = np.sort(rng.standard_normal(n))
    m = 0.05 * (rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)))
    nac = 0.5 * (m - m.conj().T)

    def step():
        state = SurfaceHoppingState.on_state(n, 5)
        return fssh.step(state, energies, nac, dt=1.0, kinetic_energy=5.0)

    benchmark(step)


def test_effective_ham_relax(benchmark):
    ham = EffectiveHamiltonian((16, 2, 16))
    fc = flux_closure_modes((16, 2, 16), ham.params.p_min)

    def relax():
        modes, e = ham.relax(fc, nsteps=50)
        return e

    e = benchmark(relax)
    assert np.isfinite(e)


def test_distributed_dc_solver(benchmark):
    """SPMD DC solve over 4 simulated ranks (result checked vs serial)."""
    from repro.grids import DomainDecomposition
    from repro.parallel.distributed import DistributedDCSolver
    from repro.qxmd import GlobalDCSolver

    grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    dec = DomainDecomposition(grid, (2, 2, 1), buffer_width=3)
    pos = np.array(
        [[2.0, 2.0, 4.8], [7.0, 2.0, 4.8], [2.0, 7.0, 4.8], [7.0, 7.0, 4.8]]
    )
    sp = [get_species("H")] * 4

    def run():
        return DistributedDCSolver(
            grid, dec, pos, sp, nranks=4, nscf=2, ncg=2
        ).solve()

    dist = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = GlobalDCSolver(grid, dec, pos, sp, norb_extra=2,
                            nscf=2, ncg=2).solve()
    assert np.array_equal(dist.rho_global, serial.rho_global)


# --------------------------------------------------------------------- #
# executor backend scaling (BENCH_backend_scaling.json)
# --------------------------------------------------------------------- #
#: Rank counts of the modeled Fig. 3 strong-scaling excerpt.  P = 1 vs
#: P = 4 is the worker count the process/thread backends target on one
#: node; the modeled speedup is deterministic roofline arithmetic and
#: carries the regression gate (modeled rtol pins it bitwise-stable).
BACKEND_SCALING_P = (1, 2, 4)
BACKEND_SCALING_NATOMS = 5120.0

#: The modeled P=4 speedup over P=1 must clear this floor (paper Fig. 3
#: shows near-linear scaling at small P; 1.3x is a deliberately loose
#: floor so calibration tweaks don't flap the gate).
MIN_MODELED_SPEEDUP = 1.3


def _measure_backend(name: str, workers: int):
    """Wall-time one small distributed DC solve on a given backend."""
    import time

    from repro.grids import DomainDecomposition
    from repro.parallel.distributed import DistributedDCSolver
    from repro.parallel.executor import make_executor

    grid = Grid3D((12, 12, 12), (0.6, 0.6, 0.6))
    dec = DomainDecomposition(grid, (2, 2, 1), buffer_width=2)
    L = grid.lengths[0]
    pos = np.array(
        [[L / 4, L / 4, L / 2], [3 * L / 4, L / 4, L / 2],
         [L / 4, 3 * L / 4, L / 2], [3 * L / 4, 3 * L / 4, L / 2]]
    )
    sp = [get_species("H")] * 4
    with make_executor(name, workers=workers, seed=5) as ex:
        solver = DistributedDCSolver(
            grid, dec, pos, sp, nranks=4, norb_extra=1, nscf=2, ncg=1,
            seed=5, executor=ex,
        )
        t0 = time.perf_counter()
        result = solver.solve()
        wall = time.perf_counter() - t0
    assert np.isfinite(result.energy_history[-1])
    return wall, result


def emit_backend_scaling():
    """Build and persist the backend-scaling telemetry document.

    Modeled entries come from the calibrated Fig. 3 strong-scaling model
    (deterministic, regression-gated at 1e-6 rtol); measured entries are
    real wall times of one small distributed DC solve per backend at the
    documented reduced scale (gated only as a ratio, since worker
    processes on a single-core runner are slower than serial).
    """
    import os

    from benchmarks.bench_common import write_bench_json
    from repro.parallel import strong_scaling_study
    from repro.parallel.scaling import calibrated_model

    points = strong_scaling_study(
        calibrated_model(), BACKEND_SCALING_NATOMS, BACKEND_SCALING_P
    )
    by_p = {p.nranks: p for p in points}
    kernels = {
        f"dcmesh_step_p{p}_modeled": {
            "time_s": by_p[p].step_time,
            "kind": "modeled",
            "nranks": p,
        }
        for p in BACKEND_SCALING_P
    }
    measured = {}
    for name, workers in (("serial", 1), ("thread", 4), ("process", 4)):
        wall, _ = _measure_backend(name, workers)
        measured[name] = wall
        kernels[f"distributed_solve_{name}"] = {
            "time_s": wall,
            "kind": "measured",
            "workers": workers,
        }
    modeled_speedup = by_p[1].step_time / by_p[4].step_time
    extra = {
        "modeled_speedup_p4_over_p1": modeled_speedup,
        "measured_speedup_thread": measured["serial"] / measured["thread"],
        "measured_speedup_process": measured["serial"] / measured["process"],
        "cpu_count": os.cpu_count(),
    }
    path = write_bench_json(
        "backend_scaling",
        kernels,
        workload={
            "natoms_modeled": BACKEND_SCALING_NATOMS,
            "p_list": list(BACKEND_SCALING_P),
            "measured_grid": [12, 12, 12],
            "measured_natoms": 4,
        },
        extra=extra,
    )
    return path, modeled_speedup, extra


def test_backend_scaling_telemetry():
    """Emit BENCH_backend_scaling.json; modeled P=4 speedup > 1.3x.

    The measured per-backend times only assert a speedup when the host
    actually has cores to scale onto -- single-core CI runners pay pure
    IPC overhead for worker processes and that is expected, documented
    behaviour, not a regression.
    """
    import os

    path, modeled_speedup, extra = emit_backend_scaling()
    assert path.exists()
    assert modeled_speedup > MIN_MODELED_SPEEDUP
    if (os.cpu_count() or 1) >= 4:
        assert extra["measured_speedup_process"] > 1.0


if __name__ == "__main__":
    out, speedup, info = emit_backend_scaling()
    print(f"wrote {out} (modeled P=4 speedup {speedup:.2f}x, "
          f"cpu_count={info['cpu_count']})")
