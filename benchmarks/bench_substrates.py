"""Substrate micro-benchmarks: the solvers under the headline kernels.

Not a paper table, but what a downstream user of this library profiles
first: the O(N) multigrid Poisson solve, the CG eigensolver, one full SCF
iteration, an FDTD step, the FSSH electronic step, and the effective-
Hamiltonian relaxation.  The O(N) property of the multigrid is asserted
directly (time per point roughly flat across sizes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.maxwell import VectorPotentialFDTD
from repro.materials import EffectiveHamiltonian, flux_closure_modes
from repro.multigrid import PoissonMultigrid
from repro.pseudo import get_species
from repro.qxmd import FSSH, KSHamiltonian, SurfaceHoppingState, cg_eigensolve
from repro.qxmd.scf import SCFConfig, scf_solve


@pytest.mark.parametrize("n", [16, 32])
def test_multigrid_poisson(benchmark, n):
    grid = Grid3D.cubic(n, 0.5)
    rng = np.random.default_rng(0)
    rho = rng.standard_normal(grid.shape)
    rho -= rho.mean()
    mg = PoissonMultigrid(grid)

    def solve():
        v, stats = mg.solve(rho, tol=1e-8)
        assert stats.converged
        return v

    benchmark(solve)
    benchmark.extra_info["points"] = grid.npoints


def test_multigrid_is_linear_scaling(benchmark):
    """Time per mesh point stays within ~3x from 16^3 to 32^3."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    per_point = []
    for n in (16, 32):
        grid = Grid3D.cubic(n, 0.5)
        rng = np.random.default_rng(0)
        rho = rng.standard_normal(grid.shape)
        rho -= rho.mean()
        mg = PoissonMultigrid(grid)
        mg.solve(rho, tol=1e-8)  # warm up
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            mg.solve(rho, tol=1e-8)
            best = min(best, time.perf_counter() - t0)
        per_point.append(best / grid.npoints)
    assert per_point[1] < 3.0 * per_point[0]


def test_cg_eigensolver(benchmark):
    grid = Grid3D.cubic(12, 0.5)
    rng = np.random.default_rng(1)
    vloc = rng.standard_normal(grid.shape)
    ham = KSHamiltonian(grid, vloc)

    def solve():
        wf = WaveFunctionSet.random(grid, 6, np.random.default_rng(2))
        return cg_eigensolve(ham, wf, ncg=3)

    evals = benchmark(solve)
    assert np.all(np.diff(evals) >= -1e-9)


def test_scf_iteration(benchmark):
    grid = Grid3D.cubic(12, 0.6)
    L = grid.lengths[0]
    pos = np.array([[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]])
    sp = [get_species("H"), get_species("H")]

    def solve():
        return scf_solve(grid, pos, sp, norb=3,
                         config=SCFConfig(nscf=1, ncg=3))

    res = benchmark(solve)
    assert res.occupations.sum() == pytest.approx(2.0)


def test_fdtd_step(benchmark):
    solver = VectorPotentialFDTD(nz=4096, dz=10.0, dt=0.05)
    solver.a[:] = np.sin(np.linspace(0, 20 * np.pi, 4096))
    solver.a_prev[:] = solver.a
    benchmark(solver.step)


def test_fssh_step(benchmark):
    rng = np.random.default_rng(3)
    fssh = FSSH(rng, decoherence_c=0.1)
    n = 32
    energies = np.sort(rng.standard_normal(n))
    m = 0.05 * (rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)))
    nac = 0.5 * (m - m.conj().T)

    def step():
        state = SurfaceHoppingState.on_state(n, 5)
        return fssh.step(state, energies, nac, dt=1.0, kinetic_energy=5.0)

    benchmark(step)


def test_effective_ham_relax(benchmark):
    ham = EffectiveHamiltonian((16, 2, 16))
    fc = flux_closure_modes((16, 2, 16), ham.params.p_min)

    def relax():
        modes, e = ham.relax(fc, nsteps=50)
        return e

    e = benchmark(relax)
    assert np.isfinite(e)


def test_distributed_dc_solver(benchmark):
    """SPMD DC solve over 4 simulated ranks (result checked vs serial)."""
    from repro.grids import DomainDecomposition
    from repro.parallel.distributed import DistributedDCSolver
    from repro.qxmd import GlobalDCSolver

    grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    dec = DomainDecomposition(grid, (2, 2, 1), buffer_width=3)
    pos = np.array(
        [[2.0, 2.0, 4.8], [7.0, 2.0, 4.8], [2.0, 7.0, 4.8], [7.0, 7.0, 4.8]]
    )
    sp = [get_species("H")] * 4

    def run():
        return DistributedDCSolver(
            grid, dec, pos, sp, nranks=4, nscf=2, ncg=2
        ).solve()

    dist = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = GlobalDCSolver(grid, dec, pos, sp, norb_extra=2,
                            nscf=2, ncg=2).solve()
    assert np.array_equal(dist.rho_global, serial.rho_global)
