"""Trajectory-ensemble throughput benchmark: batched swarms vs the loop.

The ensemble engine exists to make FSSH swarms cheap: stepping ``ntraj``
trajectories as stacked ``(ntraj, nstates)`` arrays amortizes the RK4
amplitude integration and hop bookkeeping that a Python loop of
standalone :class:`~repro.qxmd.surface_hopping.FSSH` runs pays per
trajectory.  This bench holds that claim to a number:

- ``ensemble_loop_reference``: a plain loop of
  :func:`~repro.ensemble.swarm.run_reference_trajectory` (the exact-tier
  ground truth of the equivalence harness);
- ``ensemble_swarm_serial/thread/process``: the same ensemble through
  :func:`~repro.ensemble.run_ensemble` on each executor backend.

The batched serial engine must beat the loop by at least
``MIN_BATCH_SPEEDUP`` (1.3x) -- asserted in-bench, so the committed
``BENCH_ensemble.json`` baseline gate only needs to catch
order-of-magnitude drift.  All variants produce bit-identical
trajectories (the equivalence suite proves it), so this is a pure
speed comparison.
"""

from __future__ import annotations

import time

#: Ensemble workload: big enough that batching wins clearly, small
#: enough for the CI bench-smoke window.
NTRAJ = 64
NSTEPS = 40
NSTATES = 4
SUBSTEPS = 20
BATCH_SIZE = 32

#: Best-of repeats for every timed section (process backend included:
#: the executor is reused, so spawn cost is paid once outside timing).
REPEATS = 3

#: The batched serial engine must beat the trajectory loop by this much.
MIN_BATCH_SPEEDUP = 1.3


def _workload():
    from repro.ensemble import EnsembleConfig, model_path

    path = model_path(nsteps=NSTEPS, nstates=NSTATES, dt=1.0, seed=11,
                      coupling=0.12)
    config = EnsembleConfig(ntraj=NTRAJ, seed=99, batch_size=BATCH_SIZE)
    return path, config


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def emit_ensemble():
    """Time the loop reference and every backend; persist telemetry."""
    from benchmarks.bench_common import write_bench_json
    from repro.ensemble import EnsembleRun, run_reference_trajectory

    path, config = _workload()
    istate = path.nstates - 1

    def loop_reference():
        for i in range(config.ntraj):
            run_reference_trajectory(path, i, config.seed, istate,
                                     config.substeps, config.policy)

    loop_reference()  # warm-up (imports, JIT-free but cache-warm)
    loop_s = _best_of(loop_reference)

    kernels = {
        "ensemble_loop_reference": {
            "time_s": loop_s, "kind": "measured", "calls": config.ntraj,
        },
    }
    measured = {}
    for backend, workers in (("serial", 1), ("thread", 2), ("process", 2)):
        with EnsembleRun(path, config, backend=backend,
                         workers=workers) as run:
            run.md_step()  # warm-up round also spawns process workers

            def sweep(run=run):
                run.done[:] = False
                while not run.complete:
                    run.md_step()

            wall = _best_of(sweep)
        measured[backend] = wall
        kernels[f"ensemble_swarm_{backend}"] = {
            "time_s": wall, "kind": "measured", "workers": workers,
        }

    speedup = loop_s / measured["serial"]
    extra = {
        "batch_speedup_serial_over_loop": speedup,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "traj_per_s_loop": NTRAJ / loop_s,
        **{f"traj_per_s_{b}": NTRAJ / t for b, t in measured.items()},
    }
    path_out = write_bench_json(
        "ensemble",
        kernels,
        workload={
            "ntraj": NTRAJ, "nsteps": NSTEPS, "nstates": NSTATES,
            "substeps": SUBSTEPS, "batch_size": BATCH_SIZE,
        },
        extra=extra,
    )
    return path_out, speedup, extra


def test_ensemble_telemetry():
    """Emit BENCH_ensemble.json; batching beats the loop by >= 1.3x."""
    path, speedup, extra = emit_ensemble()
    assert path.exists()
    assert speedup >= MIN_BATCH_SPEEDUP, extra


if __name__ == "__main__":
    out, speedup, info = emit_ensemble()
    print(f"wrote {out}")
    print(f"batched-vs-loop speedup: {speedup:.2f}x "
          f"(gate {MIN_BATCH_SPEEDUP}x)")
    for key, val in sorted(info.items()):
        if key.startswith("traj_per_s"):
            print(f"  {key}: {val:.1f}")
