"""Tuning-subsystem benchmark: tuned vs default probe-step medians.

Runs the correctness-gated search for the tunables with real block-shape
headroom on CPU (the BLAS-3 nonlocal panel width and the multigrid
smoother schedule) into a throwaway cache, then records the search's own
apples-to-apples medians: the default configuration is exempt from
pruning and timed at the same repeat count as the gated winner, so
``speedup = default_median / best_median`` is >= 1.0 by construction.
The emitted ``BENCH_tuning.json`` carries that floor in ``extra`` and
the test gates it; the per-config medians regression-gate as measured
ratios against the committed baseline like every other kernel.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

#: Tunables benchmarked here: the two with genuine block-shape headroom
#: on CPU.  The executor and kin-prop searches are exercised by the CI
#: tune-smoke job instead, at reduced scale.
TUNE_SELECT = ("lfd.nonlocal", "multigrid.poisson")
TUNE_REPEATS = 3
TUNE_SEED = 0

#: The gated winner is chosen against the default at equal repeat count,
#: so a speedup below this floor means the search invariant broke.
MIN_SPEEDUP = 1.0


def emit_tuning():
    """Run the gated search and persist the tuning telemetry document."""
    from benchmarks.bench_common import write_bench_json
    from repro.tuning import GATE_TOL, TuningCache, TuningSession, default_registry

    with tempfile.TemporaryDirectory() as td:
        session = TuningSession(
            cache=TuningCache(Path(td) / "cache.json"),
            registry=default_registry(),
        )
        result = session.run(select=list(TUNE_SELECT),
                             repeats=TUNE_REPEATS, seed=TUNE_SEED)
    kernels = {}
    extra = {"gate_tol": GATE_TOL}
    speedups = {}
    for rec in result.records:
        out = rec.outcome
        key = out.tunable_id.replace(".", "_")
        kernels[f"{key}_default"] = {
            "time_s": out.default_median_s,
            "kind": "measured",
            "params": dict(out.default_params),
        }
        kernels[f"{key}_tuned"] = {
            "time_s": out.best_median_s,
            "kind": "measured",
            "params": dict(out.best_params),
        }
        speedups[key] = out.speedup
        extra[f"speedup_{key}"] = out.speedup
        extra[f"gate_rejected_{key}"] = out.gate_rejected
        extra[f"non_default_{key}"] = out.non_default
    extra["min_speedup"] = min(speedups.values())
    path = write_bench_json(
        "tuning",
        kernels,
        workload={
            "select": list(TUNE_SELECT),
            "repeats": TUNE_REPEATS,
            "seed": TUNE_SEED,
        },
        extra=extra,
    )
    return path, extra


def test_tuning_telemetry():
    """Emit BENCH_tuning.json; tuned-over-default floor >= 1.0x.

    Every candidate that reached a timed repeat already passed the
    1e-12 correctness gate, so a zero gate-rejection count here means
    all probed configurations are numerically interchangeable on this
    machine (the gate did not have to discard anything).
    """
    path, extra = emit_tuning()
    assert path.exists()
    assert extra["min_speedup"] >= MIN_SPEEDUP
    for key in ("lfd_nonlocal", "multigrid_poisson"):
        assert extra[f"speedup_{key}"] >= MIN_SPEEDUP


if __name__ == "__main__":
    out, info = emit_tuning()
    print(f"wrote {out} (min tuned/default speedup "
          f"{info['min_speedup']:.2f}x)")
