"""Fig. 5: DP runtime of compute-intensive kernels across builds.

Paper (DP, comparing CPU+AOCL-BLAS against GPU+cuBLAS+pinned): 45x
speedup in electron propagation, 42x in nonlocal propagation, 46x in the
energy-calculation kernel.

Reproduction: the same three kernels exist here -- the Eq. (6) electron
propagator (potential/kinetic/nonlinear), the Eq. (7) nonlocal
propagation GEMMs, and the BLASified ``calc_energy``.  The measured layer
contrasts the real naive vs BLAS implementations; the modeled layer gives
the CPU-BLAS -> GPU-cuBLAS-pinned speedups at paper scale.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_common import measured_setup, paper_workload, write_report
from repro.device import A100, EPYC_7543_CORE, KernelCostModel
from repro.device.blas import GEMM_EFFICIENCY
from repro.lfd import (
    NonlocalCorrector,
    WaveFunctionSet,
    band_energies,
    kinetic_step,
    potential_phase_step,
)
from repro.lfd.energy import band_energies_naive
from repro.perf import Table, format_speedup

PAPER = {"electron_propagation": 45.0, "nonlocal_propagation": 42.0,
         "energy_calculation": 46.0}


def _modeled_speedups() -> dict:
    w = paper_workload(itemsize=16)
    gpu = KernelCostModel(A100)
    cpu = KernelCostModel(EPYC_7543_CORE)

    def pair(cost, gemm=False):
        eff = GEMM_EFFICIENCY if gemm else 1.0
        t_cpu = cpu.kernel_time(cost.flops, cost.bytes_moved, itemsize=8,
                                efficiency=eff)
        t_gpu = gpu.kernel_time(cost.flops, cost.bytes_moved, itemsize=8,
                                efficiency=eff)
        return t_cpu / t_gpu

    kin = w.kin_prop_step()
    pot = w.pot_prop_half()
    elec = type(kin)("elec", kin.flops + 2 * pot.flops,
                     kin.bytes_moved + 2 * pot.bytes_moved)
    return {
        "electron_propagation": pair(elec),
        "nonlocal_propagation": pair(w.nonlocal_half(), gemm=True),
        "energy_calculation": pair(w.calc_energy(), gemm=True),
    }


@pytest.mark.parametrize("kernel", ["electron_propagation",
                                    "nonlocal_propagation",
                                    "energy_calculation"])
def test_kernel_measured(benchmark, kernel):
    """Real kernel timings at reduced scale (the BLASified versions)."""
    grid, wf, vloc, rng = measured_setup()
    ref = WaveFunctionSet.random(grid, 8, rng)
    corr = NonlocalCorrector(ref, 0.1)

    if kernel == "electron_propagation":
        def run():
            potential_phase_step(wf, vloc, 0.01)
            kinetic_step(wf, 0.02, variant="collapsed")
            potential_phase_step(wf, vloc, 0.01)
    elif kernel == "nonlocal_propagation":
        def run():
            corr.apply(wf, 0.02)
    else:
        def run():
            band_energies(wf, vloc, corrector=corr)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["paper_speedup_vs_cpu_blas"] = PAPER[kernel]


def test_fig5_report(benchmark):
    speedups = benchmark.pedantic(_modeled_speedups, rounds=1, iterations=1)

    # Also a *measured* naive-vs-BLAS energy contrast for the record.
    grid, wf, vloc, rng = measured_setup(norb=12, n=16)
    ref = WaveFunctionSet.random(grid, 6, rng)
    corr = NonlocalCorrector(ref, 0.1)
    t0 = time.perf_counter()
    band_energies_naive(wf, vloc, corrector=corr)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    band_energies(wf, vloc, corrector=corr)
    t_blas = time.perf_counter() - t0

    table = Table(
        ["kernel", "paper speedup (CPU+BLAS -> GPU pinned)",
         "modeled speedup"],
        title="Fig. 5 -- compute-intensive kernel speedups (DP, modeled "
              "at paper scale)",
    )
    for k, paper in PAPER.items():
        table.add_row(k, format_speedup(paper), format_speedup(speedups[k]))
    text = table.render() + (
        f"\nmeasured energy kernel, naive loops vs BLASified "
        f"(16^3, 12 orbitals): {t_naive / t_blas:.1f}x"
    )
    write_report("fig5_kernels", text)
    print("\n" + text)

    # Shape: all three kernels accelerate by tens of x on the GPU, and
    # the three speedups are the same order of magnitude (paper: 42-46x).
    # The pure roofline overestimates skinny-GEMM speedups (cuBLAS does
    # not reach peak on 64-wide panels); accept the right order.
    for k, s in speedups.items():
        assert 10.0 < s < 250.0, (k, s)
    assert max(speedups.values()) / min(speedups.values()) < 5.0
