"""Shared helpers for the paper-reproduction benchmark harness.

Every bench measures/models one table or figure of the paper and emits a
paper-vs-ours text report under ``benchmarks/reports/`` (consumed when
updating EXPERIMENTS.md).  Real measurements run at a documented reduced
scale; modeled numbers use the device/cluster rooflines at full paper
scale.  See DESIGN.md section 2 for the substitution policy.
"""

from __future__ import annotations

import pathlib
from typing import Optional

import numpy as np

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.lfd.costs import LFDWorkload

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: The paper's LFD kernel-benchmark workload (Tables I-II):
#: 1,000 QD steps, 64 KS orbitals, 70 x 70 x 72 mesh.
PAPER_WORKLOAD = dict(ngrid=70 * 70 * 72, norb=64, nunocc=32, nqd=1000)

#: Reduced measured workload: 24^3 mesh (14.3x fewer points), 16 orbitals
#: (4x fewer), few QD steps -- documented scale factors for EXPERIMENTS.md.
MEASURED_GRID_N = 24
MEASURED_NORB = 16
MEASURED_NUNOCC = 8


def paper_workload(itemsize: int = 16) -> LFDWorkload:
    """The full Table I/II workload for the roofline models."""
    return LFDWorkload(itemsize=itemsize, **PAPER_WORKLOAD)


def measured_setup(norb: int = MEASURED_NORB, n: int = MEASURED_GRID_N,
                   seed: int = 7, dtype=np.complex128):
    """A real wave-function set at the reduced measured scale."""
    grid = Grid3D.cubic(n, 0.5)
    rng = np.random.default_rng(seed)
    wf = WaveFunctionSet.random(grid, norb, rng, dtype=dtype)
    vloc = 0.3 * rng.standard_normal(grid.shape)
    return grid, wf, vloc, rng


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a bench report for the EXPERIMENTS.md index."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def ratio_note(ours: float, paper: float) -> str:
    """Human-readable ours-vs-paper ratio."""
    if paper == 0:
        return "-"
    return f"{ours / paper:.2f}x of paper"
