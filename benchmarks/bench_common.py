"""Shared helpers for the paper-reproduction benchmark harness.

Every bench measures/models one table or figure of the paper and emits a
paper-vs-ours text report under ``benchmarks/reports/`` (consumed when
updating EXPERIMENTS.md).  Real measurements run at a documented reduced
scale; modeled numbers use the device/cluster rooflines at full paper
scale.  See DESIGN.md section 2 for the substitution policy.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Dict, Optional, Union

import numpy as np

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.lfd.costs import LFDWorkload

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: Schema tag of the machine-readable bench telemetry files.
BENCH_SCHEMA = "repro-bench/1"

#: Per-kernel entry kinds: real wall time vs roofline-model time.
BENCH_KINDS = ("measured", "modeled")

#: The paper's LFD kernel-benchmark workload (Tables I-II):
#: 1,000 QD steps, 64 KS orbitals, 70 x 70 x 72 mesh.
PAPER_WORKLOAD = dict(ngrid=70 * 70 * 72, norb=64, nunocc=32, nqd=1000)

#: Reduced measured workload: 24^3 mesh (14.3x fewer points), 16 orbitals
#: (4x fewer), few QD steps -- documented scale factors for EXPERIMENTS.md.
MEASURED_GRID_N = 24
MEASURED_NORB = 16
MEASURED_NUNOCC = 8


def paper_workload(itemsize: int = 16) -> LFDWorkload:
    """The full Table I/II workload for the roofline models."""
    return LFDWorkload(itemsize=itemsize, **PAPER_WORKLOAD)


def measured_setup(norb: int = MEASURED_NORB, n: int = MEASURED_GRID_N,
                   seed: int = 7, dtype=np.complex128):
    """A real wave-function set at the reduced measured scale."""
    grid = Grid3D.cubic(n, 0.5)
    rng = np.random.default_rng(seed)
    wf = WaveFunctionSet.random(grid, norb, rng, dtype=dtype)
    vloc = 0.3 * rng.standard_normal(grid.shape)
    return grid, wf, vloc, rng


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a bench report for the EXPERIMENTS.md index."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def ratio_note(ours: float, paper: float) -> str:
    """Human-readable ours-vs-paper ratio."""
    if paper == 0:
        return "-"
    return f"{ours / paper:.2f}x of paper"


# --------------------------------------------------------------------- #
# machine-readable telemetry (BENCH_<name>.json)
# --------------------------------------------------------------------- #
def bench_json_path(name: str) -> pathlib.Path:
    """Location of one bench's JSON telemetry file."""
    return REPORT_DIR / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    kernels: Dict[str, Dict],
    workload: Optional[Dict] = None,
    extra: Optional[Dict] = None,
    total_s: Optional[float] = None,
) -> pathlib.Path:
    """Persist one bench's machine-readable telemetry.

    ``kernels`` maps kernel name to an entry holding at least ``time_s``
    (seconds) and ``kind`` (``"measured"`` for real wall time at the
    documented reduced scale, ``"modeled"`` for deterministic roofline
    time).  Optional per-kernel fields (``paper_time_s``, ``calls``,
    ``flops``, ``bytes``, ...) ride along untouched; when a paper value
    is present the ours-vs-paper ratio is filled in.  ``total_s``
    defaults to the sum of the per-kernel times so the file is
    self-consistent by construction.  The result is the diffable unit
    the :mod:`benchmarks.regression` gate compares.
    """
    clean: Dict[str, Dict] = {}
    for kname, entry in kernels.items():
        entry = dict(entry)
        if "time_s" not in entry or "kind" not in entry:
            raise ValueError(f"kernel {kname!r} needs 'time_s' and 'kind'")
        if entry["kind"] not in BENCH_KINDS:
            raise ValueError(
                f"kernel {kname!r} kind must be one of {BENCH_KINDS}"
            )
        entry["time_s"] = float(entry["time_s"])
        paper = entry.get("paper_time_s")
        if paper:
            entry["vs_paper"] = entry["time_s"] / float(paper)
        clean[kname] = entry
    if total_s is None:
        total_s = sum(e["time_s"] for e in clean.values())
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": workload or {},
        "kernels": clean,
        "total_s": float(total_s),
    }
    if extra:
        doc["extra"] = extra
    REPORT_DIR.mkdir(exist_ok=True)
    path = bench_json_path(name)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def load_bench_json(path: Union[str, pathlib.Path]) -> Dict:
    """Load and structurally validate one BENCH_*.json file."""
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} telemetry file")
    for key in ("name", "kernels", "total_s"):
        if key not in doc:
            raise ValueError(f"{path}: missing {key!r}")
    for kname, entry in doc["kernels"].items():
        if "time_s" not in entry or entry.get("kind") not in BENCH_KINDS:
            raise ValueError(f"{path}: malformed kernel entry {kname!r}")
    return doc
