"""Coalescing correctness: stacked groups are bitwise-equal to solo runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import EnsembleConfig, model_path, run_ensemble
from repro.qxmd.sh_kernels import HopPolicy
from repro.resilience.checkpointing import CheckpointCorruptError
from repro.serve.coalesce import (
    EnsembleGroupRun,
    EnsembleMember,
    Segment,
    pack_segments,
    run_group_supervised,
)

PATH = model_path(nsteps=12, nstates=4, dt=1.0, seed=11, coupling=0.12)
POLICY = HopPolicy()


def solo(ntraj, seed, istate, batch_size=4):
    return run_ensemble(
        PATH,
        EnsembleConfig(ntraj=ntraj, seed=seed, istate=istate,
                       batch_size=batch_size),
    )


class TestPackSegments:
    def test_small_jobs_share_a_task(self):
        members = [EnsembleMember(3, 1, 10), EnsembleMember(3, 2, 20)]
        tasks = pack_segments(members, batch_size=8)
        assert len(tasks) == 1
        assert [(s.lo, s.hi, s.local_lo) for s in tasks[0]] == [
            (0, 3, 0), (3, 6, 0)
        ]

    def test_wide_job_splits_with_local_offsets(self):
        tasks = pack_segments([EnsembleMember(10, 0, 5)], batch_size=4)
        assert [(s.lo, s.hi, s.local_lo) for t in tasks for s in t] == [
            (0, 4, 0), (4, 8, 4), (8, 10, 8)
        ]

    def test_mixed_fill(self):
        members = [EnsembleMember(3, 0, 1), EnsembleMember(6, 1, 2)]
        tasks = pack_segments(members, batch_size=4)
        # task 0: [3 rows of m0][1 row of m1]; task 1: 4 rows; task 2: 1.
        assert [sum(s.hi - s.lo for s in t) for t in tasks] == [4, 4, 1]
        first = tasks[0]
        assert first[0].seed == 1 and first[1].seed == 2
        assert first[1].local_lo == 0 and tasks[1][0].local_lo == 1

    def test_total_rows_conserved(self):
        members = [EnsembleMember(n, 0, n) for n in (1, 7, 4, 9)]
        tasks = pack_segments(members, batch_size=5)
        rows = sorted(
            (s.seed, s.local_lo + i)
            for t in tasks for s in t for i in range(s.hi - s.lo)
        )
        want = sorted((m.seed, i) for m in members for i in range(m.ntraj))
        assert rows == want

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            pack_segments([EnsembleMember(2, 0, 1)], batch_size=0)


def assert_member_matches_solo(member_result, solo_result):
    """Bitwise equality of every trace a coalesced member hands back."""
    assert np.array_equal(member_result.hops, solo_result.hops)
    assert np.array_equal(member_result.final_active,
                          solo_result.final_active)
    assert np.array_equal(member_result.stats.pop_mean,
                          solo_result.stats.pop_mean)
    assert np.array_equal(member_result.stats.pop_stderr,
                          solo_result.stats.pop_stderr)
    assert np.array_equal(member_result.stats.active_fraction,
                          solo_result.stats.active_fraction)


class TestGroupEquivalence:
    def test_mixed_members_bitwise_equal_to_solo_runs(self):
        """The coalescing contract: stacking jobs with different seeds,
        widths and initial states changes nothing about any one job."""
        members = [
            EnsembleMember(ntraj=6, istate=3, seed=101),
            EnsembleMember(ntraj=3, istate=1, seed=202),
            EnsembleMember(ntraj=5, istate=3, seed=303),
        ]
        group = EnsembleGroupRun(PATH, members, POLICY, batch_size=4)
        results = group.run()
        for member, res in zip(members, results):
            assert_member_matches_solo(
                res, solo(member.ntraj, member.seed, member.istate)
            )

    def test_batch_size_invariance_of_the_group_itself(self):
        members = [EnsembleMember(4, 2, 7), EnsembleMember(4, 0, 9)]
        wide = EnsembleGroupRun(PATH, members, POLICY, batch_size=8).run()
        narrow = EnsembleGroupRun(PATH, members, POLICY, batch_size=3).run()
        for a, b in zip(wide, narrow):
            assert np.array_equal(a.populations, b.populations)
            assert np.array_equal(a.hops, b.hops)
            assert np.array_equal(a.final_amplitudes, b.final_amplitudes)

    def test_istate_validated_against_path(self):
        with pytest.raises(ValueError, match="istate"):
            EnsembleGroupRun(PATH, [EnsembleMember(2, 9, 1)], POLICY)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            EnsembleGroupRun(PATH, [], POLICY)

    def test_results_before_completion_rejected(self):
        group = EnsembleGroupRun(
            PATH, [EnsembleMember(4, 0, 1)], POLICY, batch_size=2
        )
        with pytest.raises(RuntimeError, match="incomplete"):
            group.results()


class TestRounds:
    def test_round_records(self):
        group = EnsembleGroupRun(
            PATH, [EnsembleMember(8, 0, 5)], POLICY,
            batch_size=2, round_size=3,
        )
        assert len(group.tasks) == 4
        assert group.rounds_remaining == 2
        rec = group.md_step()
        assert (rec.step, rec.tasks_run, rec.tasks_done) == (1, 3, 3)
        rec = group.md_step()
        assert (rec.tasks_run, rec.tasks_done, rec.tasks_total) == (1, 4, 4)
        assert group.complete
        assert group.rounds_remaining == 0


class TestCheckpoint:
    def make_group(self, **kw):
        members = [EnsembleMember(4, 3, 7), EnsembleMember(2, 1, 8)]
        return EnsembleGroupRun(PATH, members, POLICY, batch_size=2,
                                round_size=1, **kw)

    def test_round_trip_resumes_bitwise(self, tmp_path):
        ckpt = tmp_path / "group.npz"
        half = self.make_group()
        half.md_step()
        half.save_state(ckpt)

        resumed = self.make_group()
        resumed.load_state(ckpt)
        assert resumed.step_count == 1
        assert np.array_equal(resumed.done, half.done)
        results = resumed.run()

        straight = self.make_group().run()
        for a, b in zip(results, straight):
            assert np.array_equal(a.populations, b.populations)
            assert np.array_equal(a.hops, b.hops)

    def test_fingerprint_mismatch_detected(self, tmp_path):
        ckpt = tmp_path / "group.npz"
        self.make_group().save_state(ckpt)
        other = EnsembleGroupRun(
            PATH, [EnsembleMember(4, 3, 7), EnsembleMember(2, 1, 9)],
            POLICY, batch_size=2,
        )
        with pytest.raises(CheckpointCorruptError, match="fingerprint"):
            other.load_state(ckpt)

    def test_supervised_group_equals_unsupervised(self, tmp_path):
        members = [EnsembleMember(5, 2, 31), EnsembleMember(3, 0, 32)]
        group = EnsembleGroupRun(PATH, members, POLICY, batch_size=3)
        supervised = run_group_supervised(group, tmp_path / "ck")
        plain = EnsembleGroupRun(PATH, members, POLICY, batch_size=3).run()
        for a, b in zip(supervised, plain):
            assert np.array_equal(a.populations, b.populations)
            assert np.array_equal(a.final_active, b.final_active)
        for member, res in zip(members, supervised):
            assert_member_matches_solo(
                res, solo(member.ntraj, member.seed, member.istate,
                          batch_size=3)
            )
