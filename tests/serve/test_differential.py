"""End-to-end determinism: daemon answers == one-shot execution, bitwise.

The acceptance contract of the serving layer: a job routed through the
daemon -- whether it ran alone or coalesced into a batch, whether its
ground state came cold or from the warm pool, whether the answer was
computed or memoized -- is numerically indistinguishable from running
the same workload one-shot (the CLI bodies call the same
``repro.serve.workloads`` functions compared against here).  Every
comparison below is ``np.array_equal`` on the raw float64 arrays, which
is stricter than the <=1e-12 the issue asks for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import EnsembleConfig, run_ensemble
from repro.serve import BatchPolicy, DaemonHandle, ServeClient, ServeConfig
from repro.serve import workloads
from repro.serve.jobs import validate_job

ENS = {"ntraj": 6, "nsteps": 20, "nstates": 3, "coupling": 0.3,
       "batch_size": 4}
SCF = {"grid": 8, "norb": 2, "nscf": 1, "ncg": 2}
SPECT = {"grid": 8, "norb": 2, "steps": 30}
RUN = {"grid": 12, "steps": 2, "n_qd": 3, "nscf": 1, "ncg": 2}


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-diff")
    config = ServeConfig(
        socket_path=root / "serve.sock",
        artifact_root=root / "artifacts",
        scratch_root=root / "scratch",
        policy=BatchPolicy(max_batch=8, max_wait_s=0.02),
    )
    with DaemonHandle(config) as handle:
        yield handle, ServeClient(config.socket_path, timeout_s=300)


def canonical(kind, params):
    """The fully-defaulted parameter dict the daemon will execute."""
    return validate_job({"kind": kind, "params": dict(params)}).params


def ensemble_reference(params):
    full = canonical("ensemble", params)
    path = workloads.ensemble_path(full)
    istate = full["istate"]
    result = run_ensemble(path, EnsembleConfig(
        ntraj=int(full["ntraj"]),
        seed=int(full["seed"]),
        istate=(int(full["nstates"]) - 1 if istate is None else int(istate)),
        batch_size=int(full["batch_size"]),
        substeps=int(full["substeps"]),
    ))
    return workloads.ensemble_payload(result)


def assert_payloads_bitwise_equal(got, want):
    assert set(got) == set(want)
    for name, ref in want.items():
        if isinstance(ref, np.ndarray):
            assert got[name].dtype == ref.dtype, name
            assert np.array_equal(got[name], ref), name
        else:
            assert got[name] == ref, name


class TestEnsemble:
    def test_singleton_equals_one_shot(self, served):
        _, client = served
        got = client.run_job("ensemble", {**ENS, "seed": 41})
        assert_payloads_bitwise_equal(
            got, ensemble_reference({**ENS, "seed": 41})
        )

    def test_coalesced_batch_equals_each_one_shot(self, served):
        """Jobs that share one stacked execution still answer exactly
        what each would have answered alone."""
        _, client = served
        responses = client.submit([
            {"kind": "ensemble", "params": {**ENS, "seed": 51}},
            {"kind": "ensemble", "params": {**ENS, "seed": 52, "ntraj": 3}},
            {"kind": "ensemble", "params": {**ENS, "seed": 53, "istate": 0}},
        ])
        assert all(r["status"] == "ok" for r in responses)
        assert responses[0]["meta"]["coalesced"] == 3
        for response, params in zip(responses, (
            {**ENS, "seed": 51},
            {**ENS, "seed": 52, "ntraj": 3},
            {**ENS, "seed": 53, "istate": 0},
        )):
            assert_payloads_bitwise_equal(
                response["result"], ensemble_reference(params)
            )


class TestScf:
    def test_cold_and_warm_equal_one_shot(self, served):
        from repro.qxmd.scf import scf_solve_batch

        _, client = served
        full = canonical("scf", SCF)
        (result,) = scf_solve_batch([workloads.scf_task(full)])
        want = workloads.scf_payload(result)

        cold = client.submit([{"kind": "scf", "params": dict(SCF),
                               "memoize": False}])
        warm = client.submit([{"kind": "scf", "params": dict(SCF),
                               "memoize": False}])
        assert cold[0]["meta"]["warm"] is False
        assert warm[0]["meta"]["warm"] is True
        assert_payloads_bitwise_equal(cold[0]["result"], want)
        assert_payloads_bitwise_equal(warm[0]["result"], want)


class TestSpectrum:
    def test_cold_and_warm_equal_one_shot(self, served):
        _, client = served
        full = canonical("spectrum", SPECT)
        gs = workloads.spectrum_ground_state(full)
        want = workloads.spectrum_payload(gs, full)

        cold = client.submit([{"kind": "spectrum", "params": dict(SPECT),
                               "memoize": False}])
        warm = client.submit([{"kind": "spectrum", "params": dict(SPECT),
                               "memoize": False}])
        assert cold[0]["meta"]["warm"] is False
        assert warm[0]["meta"]["warm"] is True
        assert_payloads_bitwise_equal(cold[0]["result"], want)
        assert_payloads_bitwise_equal(warm[0]["result"], want)


class TestRun:
    def test_full_simulation_equals_one_shot(self, served, tmp_path):
        _, client = served
        full = canonical("run", RUN)
        want = workloads.run_payload(full, supervise_dir=tmp_path / "ck")
        got = client.run_job("run", dict(RUN))
        assert_payloads_bitwise_equal(got, want)


class TestMemoizedWire:
    def test_resubmission_is_bit_identical_on_the_wire(self, served):
        """A memo hit replays the stored arrays through the same codec:
        the encoded response payload (base64'd .npy blobs included) is
        byte-for-byte the first answer."""
        _, client = served
        job = {"kind": "ensemble", "params": {**ENS, "seed": 61}}
        first = client.submit([dict(job)], decode=False)
        again = client.submit([dict(job)], decode=False)
        assert first[0]["meta"]["memoized"] is False
        assert again[0]["meta"]["memoized"] is True
        assert again[0]["result"] == first[0]["result"]
