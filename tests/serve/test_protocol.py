"""Wire codec: bit-exact arrays, typed responses, line framing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    busy_response,
    decode_array,
    decode_payload,
    dumps_line,
    encode_array,
    encode_payload,
    error_response,
    loads_line,
    ok_response,
    shutdown_response,
)


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["float64", "int64", "complex128",
                                       "bool", "float32"])
    def test_round_trip_bit_exact(self, dtype):
        rng = np.random.default_rng(3)
        if dtype == "complex128":
            arr = (rng.standard_normal((3, 4))
                   + 1j * rng.standard_normal((3, 4)))
        elif dtype == "bool":
            arr = rng.standard_normal(7) > 0
        else:
            arr = rng.standard_normal((2, 5)).astype(dtype)
        back = decode_array(encode_array(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert back.tobytes() == arr.tobytes()

    def test_non_finite_and_denormal_survive(self):
        arr = np.array([np.inf, -np.inf, np.nan, 5e-324, -0.0])
        back = decode_array(encode_array(arr))
        assert back.tobytes() == arr.tobytes()

    def test_empty_and_zero_d(self):
        for arr in (np.zeros((0, 3)), np.array(2.5)):
            back = decode_array(encode_array(arr))
            assert back.shape == arr.shape
            assert back.tobytes() == arr.tobytes()

    def test_blob_is_json_safe(self):
        blob = encode_array(np.arange(4.0))
        json.dumps(blob)  # must not raise


class TestPayloadCodec:
    def test_nested_round_trip(self):
        payload = {
            "pops": np.eye(3),
            "scalars": {"n": 4, "x": 0.1 + 0.2, "name": "run"},
            "list": [np.arange(2), {"inner": np.ones(1)}],
            "flag": True,
            "nothing": None,
        }
        wire = encode_payload(payload)
        json.dumps(wire)
        back = decode_payload(wire)
        assert np.array_equal(back["pops"], payload["pops"])
        assert back["scalars"] == payload["scalars"]
        assert np.array_equal(back["list"][0], np.arange(2))
        assert np.array_equal(back["list"][1]["inner"], np.ones(1))
        assert back["flag"] is True and back["nothing"] is None

    def test_numpy_scalars_narrow(self):
        wire = encode_payload({"i": np.int64(3), "f": np.float64(1.5),
                               "b": np.bool_(True)})
        assert wire == {"i": 3, "f": 1.5, "b": True}
        assert type(wire["i"]) is int
        assert type(wire["f"]) is float
        assert type(wire["b"]) is bool

    def test_float64_json_exact(self):
        x = float(np.nextafter(0.3, 1.0))
        assert json.loads(json.dumps(x)) == x


class TestFraming:
    def test_dumps_is_one_line_deterministic(self):
        line = dumps_line({"b": 1, "a": [2, 3]})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert line == dumps_line({"a": [2, 3], "b": 1})  # sort_keys

    def test_loads_round_trip(self):
        obj = {"op": "ping", "n": 1}
        assert loads_line(dumps_line(obj)) == obj

    def test_loads_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            loads_line(b"{not json}\n")
        with pytest.raises(ProtocolError):
            loads_line(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            loads_line(b"\xff\xfe\n")


class TestResponses:
    def test_ok_encodes_result(self):
        resp = ok_response("j1", {"x": np.arange(3.0)}, {"memoized": False})
        assert resp["status"] == "ok"
        assert resp["id"] == "j1"
        decoded = decode_payload(resp["result"])
        assert np.array_equal(decoded["x"], np.arange(3.0))
        json.dumps(resp)

    def test_error_is_typed(self):
        resp = error_response("j2", ValueError("bad grid"))
        assert resp["status"] == "error"
        assert resp["error"]["type"] == "ValueError"
        assert "bad grid" in resp["error"]["message"]

    def test_busy_carries_queue_state(self):
        resp = busy_response("j3", queue_depth=64, max_queue=64)
        assert resp["status"] == "busy"
        assert resp["error"]["type"] == "ServerBusy"
        assert resp["error"]["queue_depth"] == 64
        assert resp["error"]["max_queue"] == 64

    def test_shutdown_is_typed(self):
        resp = shutdown_response("j4")
        assert resp["status"] == "shutdown"
        assert resp["error"]["type"] == "ServerShutdown"

    def test_protocol_marker(self):
        assert PROTOCOL == "repro-serve/1"
