"""WarmStatePool: LRU bounds, byte budget, invalidation, counters."""

from __future__ import annotations

import threading

import pytest

from repro.serve.pool import WarmStatePool


def test_get_put_and_counters():
    pool = WarmStatePool(max_entries=4)
    assert pool.get("k") is None
    pool.put("k", "value")
    assert pool.get("k") == "value"
    stats = pool.stats()
    assert stats == {"entries": 1, "bytes": 0, "hits": 1,
                     "misses": 1, "evictions": 0}


def test_entry_cap_evicts_lru():
    pool = WarmStatePool(max_entries=2)
    pool.put("a", 1)
    pool.put("b", 2)
    assert pool.get("a") == 1  # freshen "a": "b" is now LRU
    pool.put("c", 3)
    assert pool.get("b") is None
    assert pool.get("a") == 1 and pool.get("c") == 3
    assert pool.evictions == 1


def test_byte_budget_evicts_but_keeps_newest():
    pool = WarmStatePool(max_entries=10, max_bytes=100)
    pool.put("a", "x", nbytes=lambda _: 60)
    pool.put("b", "y", nbytes=lambda _: 60)
    # 120 > 100: "a" falls out; the just-put entry survives.
    assert pool.get("a") is None
    assert pool.get("b") == "y"
    # An oversized single entry is still admitted (never evict to empty).
    pool.put("huge", "z", nbytes=lambda _: 500)
    assert pool.get("huge") == "z"
    assert len(pool) >= 1


def test_get_or_create_builds_once_then_reuses():
    pool = WarmStatePool()
    calls = []

    def factory():
        calls.append(1)
        return "built"

    assert pool.get_or_create("k", factory) == "built"
    assert pool.get_or_create("k", factory) == "built"
    assert len(calls) == 1


def test_invalidate_single_and_all():
    pool = WarmStatePool()
    pool.put("a", 1)
    pool.put("b", 2)
    assert pool.invalidate("a") == 1
    assert pool.invalidate("a") == 0
    assert pool.invalidate() == 1
    assert len(pool) == 0


def test_keys_lru_order():
    pool = WarmStatePool()
    pool.put("a", 1)
    pool.put("b", 2)
    pool.get("a")
    assert pool.keys() == ["b", "a"]


def test_constructor_validation():
    with pytest.raises(ValueError):
        WarmStatePool(max_entries=0)
    with pytest.raises(ValueError):
        WarmStatePool(max_bytes=0)


def test_thread_safety_smoke():
    pool = WarmStatePool(max_entries=4)
    errors = []

    def worker(i):
        try:
            for j in range(200):
                pool.put(f"k{(i + j) % 6}", j, nbytes=lambda _: 8)
                pool.get(f"k{j % 6}")
                if j % 50 == 0:
                    pool.invalidate(f"k{i % 6}")
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(pool) <= 4
