"""Daemon integration: admission, coalescing, memoization, drain."""

from __future__ import annotations

import contextlib
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    DaemonHandle,
    ServeClient,
    ServeConfig,
    ServeError,
)
from repro.serve import workloads

#: A small-but-real ensemble job (tens of milliseconds); the coupling is
#: strong enough that trajectories hop, so results depend on the seed.
ENS = {"ntraj": 6, "nsteps": 20, "nstates": 3, "coupling": 0.3,
       "batch_size": 4}
#: A quick scf job.
SCF = {"grid": 8, "norb": 2, "nscf": 1, "ncg": 2}


@contextlib.contextmanager
def serving(tmp_path, **overrides):
    cfg = {
        "socket_path": tmp_path / "serve.sock",
        "artifact_root": tmp_path / "artifacts",
        "scratch_root": tmp_path / "scratch",
        "policy": BatchPolicy(max_batch=8, max_wait_s=0.05),
    }
    cfg.update(overrides)
    with DaemonHandle(ServeConfig(**cfg)) as handle:
        yield handle, ServeClient(cfg["socket_path"], timeout_s=120)


def wait_until(predicate, timeout_s=15.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise TimeoutError(f"timed out waiting for {what}")


@pytest.fixture
def gate(monkeypatch):
    """Blocks the worker thread inside the next ensemble job until set."""
    event = threading.Event()
    original = workloads.ensemble_path

    def gated(params):
        event.wait(timeout=60)
        return original(params)

    monkeypatch.setattr(workloads, "ensemble_path", gated)
    return event


class TestOps:
    def test_ping_and_stats(self, tmp_path):
        with serving(tmp_path) as (_, client):
            assert client.ping()
            stats = client.stats()
            assert stats["queue_depth"] == 0
            assert stats["draining"] is False
            assert stats["metrics"]["submitted"] == 0
            assert "pool" in stats and "artifacts" in stats

    def test_unknown_op_is_protocol_error(self, tmp_path):
        with serving(tmp_path) as (_, client):
            response = client.request({"op": "levitate"})
            assert response["status"] == "error"
            assert response["error"]["type"] == "ProtocolError"

    def test_empty_submit_rejected(self, tmp_path):
        with serving(tmp_path) as (_, client):
            response = client.request({"op": "submit", "jobs": []})
            assert response["status"] == "error"
            assert response["error"]["type"] == "ProtocolError"

    def test_no_artifact_store_mode(self, tmp_path):
        with serving(tmp_path, artifact_root=None) as (handle, client):
            assert "artifacts" not in client.stats()
            client.run_job("ensemble", dict(ENS))
            assert handle.daemon.metrics.snapshot()["memo_stores"] == 0


class TestSubmit:
    def test_mixed_batch_coalesces_compatible_jobs(self, tmp_path):
        with serving(tmp_path) as (handle, client):
            jobs = [
                {"kind": "ensemble", "params": {**ENS, "seed": 1}},
                {"kind": "scf", "params": dict(SCF)},
                {"kind": "ensemble", "params": {**ENS, "seed": 2}},
            ]
            responses = client.submit(jobs)
            assert [r["status"] for r in responses] == ["ok"] * 3
            assert responses[0]["meta"]["coalesced"] == 2
            assert responses[2]["meta"]["coalesced"] == 2
            assert responses[1]["meta"]["coalesced"] == 1
            metrics = handle.daemon.metrics.snapshot()
            assert metrics["batches"] == 1     # one assembled batch
            assert metrics["groups"] == 2      # ensemble pair + scf single
            assert metrics["coalesced_jobs"] == 2
            assert metrics["completed"] == 3
            # Different seeds genuinely produce different trajectories.
            assert not np.array_equal(responses[0]["result"]["hops"],
                                      responses[2]["result"]["hops"])

    def test_memoized_resubmission(self, tmp_path):
        with serving(tmp_path) as (handle, client):
            first = client.submit([{"kind": "ensemble", "params": dict(ENS)}])
            assert first[0]["meta"]["memoized"] is False
            again = client.submit([{"kind": "ensemble", "params": dict(ENS)}])
            assert again[0]["meta"]["memoized"] is True
            metrics = handle.daemon.metrics.snapshot()
            assert metrics["memo_stores"] == 1
            assert metrics["memo_hits"] == 1
            assert np.array_equal(first[0]["result"]["pop_mean"],
                                  again[0]["result"]["pop_mean"])

    def test_memoize_false_bypasses_store(self, tmp_path):
        with serving(tmp_path) as (handle, client):
            for _ in range(2):
                r = client.submit([{"kind": "ensemble", "params": dict(ENS),
                                    "memoize": False}])
                assert r[0]["meta"]["memoized"] is False
            assert handle.daemon.metrics.snapshot()["memo_stores"] == 0

    def test_validation_errors_are_per_job(self, tmp_path):
        with serving(tmp_path) as (_, client):
            responses = client.submit([
                {"kind": "molecule"},
                {"kind": "ensemble", "params": {"ntrajs": 8}},
                {"kind": "ensemble", "params": dict(ENS)},
            ])
            assert [r["status"] for r in responses] == ["error", "error", "ok"]
            assert responses[0]["error"]["type"] == "ValueError"
            assert "unknown job kind" in responses[0]["error"]["message"]
            assert "ntrajs" in responses[1]["error"]["message"]

    def test_execution_failure_is_typed(self, tmp_path):
        with serving(tmp_path) as (_, client):
            with pytest.raises(ServeError):
                client.run_job("scf", {**SCF, "species": "Unobtanium"})
            assert client.ping()  # the daemon survives the failed job

    def test_spectrum_warm_reuse(self, tmp_path):
        spect = {"grid": 8, "norb": 2, "steps": 30}
        with serving(tmp_path) as (handle, client):
            cold = client.submit([{"kind": "spectrum", "params": dict(spect)}])
            assert cold[0]["meta"]["warm"] is False
            warm = client.submit([{"kind": "spectrum",
                                   "params": {**spect, "steps": 40}}])
            assert warm[0]["meta"]["warm"] is True
            assert handle.daemon.metrics.snapshot()["warm_hits"] == 1
            assert np.array_equal(cold[0]["result"]["eigenvalues"],
                                  warm[0]["result"]["eigenvalues"])

    def test_invalidate_pool_and_artifacts(self, tmp_path):
        with serving(tmp_path) as (_, client):
            client.run_job("scf", dict(SCF))
            stats = client.stats()
            assert stats["pool"]["entries"] == 1
            assert stats["artifacts"]["entries"] == 1
            dropped = client.invalidate(scope="all")
            assert dropped == {"pool": 1, "artifacts": 1}
            stats = client.stats()
            assert stats["pool"]["entries"] == 0
            assert stats["artifacts"]["entries"] == 0
            # The next identical job recomputes (no stale answer).
            r = client.submit([{"kind": "scf", "params": dict(SCF)}])
            assert r[0]["meta"]["memoized"] is False


class TestBackpressure:
    def test_busy_shed_when_queue_full(self, tmp_path, gate):
        with serving(tmp_path, max_queue=1,
                     policy=BatchPolicy(max_batch=1)) as (handle, client):
            results = {}

            def submit_slow():
                results["slow"] = client.submit(
                    [{"kind": "ensemble", "params": dict(ENS)}])

            t = threading.Thread(target=submit_slow)
            t.start()
            # The slow job is in flight (admitted, gate-blocked): _pending
            # stays 1 until it resolves, so the queue is full.
            wait_until(lambda: client.stats()["queue_depth"] == 1,
                       what="slow job in flight")
            shed = client.submit([{"kind": "ensemble", "params": dict(ENS)}])
            assert shed[0]["status"] == "busy"
            assert shed[0]["error"]["type"] == "ServerBusy"
            assert shed[0]["error"]["max_queue"] == 1
            gate.set()
            t.join(60)
            assert results["slow"][0]["status"] == "ok"
            assert handle.daemon.metrics.snapshot()["busy_shed"] == 1

    def test_drain_finishes_inflight_and_sheds_queued(self, tmp_path, gate):
        with serving(tmp_path,
                     policy=BatchPolicy(max_batch=1)) as (handle, client):
            results = {}

            def submit(name, jobs):
                results[name] = client.submit(jobs)

            slow = threading.Thread(target=submit, args=(
                "inflight", [{"kind": "ensemble", "params": dict(ENS)}]))
            slow.start()
            wait_until(lambda: client.stats()["queue_depth"] == 1,
                       what="in-flight job")
            queued = threading.Thread(target=submit, args=(
                "queued", [{"kind": "ensemble",
                            "params": {**ENS, "seed": 9}}] * 2))
            queued.start()
            wait_until(lambda: client.stats()["queue_depth"] == 3,
                       what="queued jobs")

            drainer = threading.Thread(target=client.shutdown)
            drainer.start()
            wait_until(lambda: handle.daemon._draining, what="drain flag")
            gate.set()

            slow.join(60)
            queued.join(60)
            drainer.join(60)
            # The in-flight batch completed; everything queued behind it
            # was refused with the typed shutdown error.
            assert results["inflight"][0]["status"] == "ok"
            assert [r["status"] for r in results["queued"]] == \
                ["shutdown"] * 2
            assert all(r["error"]["type"] == "ServerShutdown"
                       for r in results["queued"])
            metrics = handle.daemon.metrics.snapshot()
            assert metrics["completed"] == 1
            assert metrics["shutdown_shed"] == 2

    def test_submission_during_drain_refused(self, tmp_path, gate):
        with serving(tmp_path,
                     policy=BatchPolicy(max_batch=1)) as (handle, client):
            results = {}

            def submit_slow():
                results["slow"] = client.submit(
                    [{"kind": "ensemble", "params": dict(ENS)}])

            t = threading.Thread(target=submit_slow)
            t.start()
            wait_until(lambda: client.stats()["queue_depth"] == 1,
                       what="in-flight job")
            drainer = threading.Thread(target=client.shutdown)
            drainer.start()
            wait_until(lambda: handle.daemon._draining, what="drain flag")
            late = client.submit([{"kind": "scf", "params": dict(SCF)}])
            assert late[0]["status"] == "shutdown"
            assert late[0]["error"]["type"] == "ServerShutdown"
            gate.set()
            t.join(60)
            drainer.join(60)
            assert results["slow"][0]["status"] == "ok"


class TestCrossRequestCoalescing:
    def test_concurrent_submits_share_one_group(self, tmp_path):
        """Two clients racing compatible jobs land in one execution."""
        with serving(tmp_path,
                     policy=BatchPolicy(max_batch=8,
                                        max_wait_s=0.5)) as (handle, client):
            barrier = threading.Barrier(2)
            results = {}

            def submit(seed):
                barrier.wait()
                results[seed] = client.submit(
                    [{"kind": "ensemble", "params": {**ENS, "seed": seed}}])

            threads = [threading.Thread(target=submit, args=(s,))
                       for s in (31, 32)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert results[31][0]["status"] == "ok"
            assert results[32][0]["status"] == "ok"
            metrics = handle.daemon.metrics.snapshot()
            assert metrics["groups"] == 1
            assert metrics["coalesced_jobs"] == 2
            assert results[31][0]["meta"]["coalesced"] == 2
