"""Batch policy validation and compatibility grouping."""

from __future__ import annotations

import pytest

from repro.serve.jobs import validate_job
from repro.serve.scheduler import BatchPolicy, group_jobs


def job(kind, **params):
    return validate_job({"kind": kind, "params": params})


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 16
        assert policy.max_wait_s == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-0.1)
        BatchPolicy(max_batch=1, max_wait_s=0.0)  # degenerate but legal


class TestGroupJobs:
    def test_partitions_by_compatibility(self):
        specs = [
            job("scf", grid=12),
            job("ensemble", nsteps=10, seed=1),
            job("scf", separation=1.2),
            job("ensemble", nsteps=10, seed=2),
            job("ensemble", nsteps=99),  # different physics: own group
            job("run"),
        ]
        groups = group_jobs(specs)
        shapes = [tuple(s.job_id for s in g) for g, _ in groups]
        assert shapes == [
            (specs[0].job_id, specs[2].job_id),
            (specs[1].job_id, specs[3].job_id),
            (specs[4].job_id,),
            (specs[5].job_id,),
        ]

    def test_run_jobs_always_singletons(self):
        specs = [job("run"), job("run")]
        groups = group_jobs(specs)
        assert [len(g) for g, _ in groups] == [1, 1]

    def test_carriers_travel_with_their_specs(self):
        specs = [job("scf"), job("run"), job("scf")]
        carriers = ["c0", "c1", "c2"]
        groups = group_jobs(specs, carriers)
        assert groups[0][1] == ("c0", "c2")
        assert groups[1][1] == ("c1",)
        for grp, carried in groups:
            assert len(grp) == len(carried)

    def test_carrier_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            group_jobs([job("scf")], carriers=["a", "b"])

    def test_empty_batch(self):
        assert group_jobs([]) == []

    def test_order_preserved_by_first_appearance(self):
        specs = [job("ensemble", seed=1), job("scf"), job("ensemble", seed=2)]
        groups = group_jobs(specs)
        assert groups[0][0][0].kind == "ensemble"
        assert groups[0][0][0].job_id == specs[0].job_id
        assert groups[1][0][0].kind == "scf"
