"""Job validation, canonicalization and the three derived keys."""

from __future__ import annotations

import pytest

from repro.artifacts import machine_fingerprint
from repro.serve.jobs import (
    PARAM_DEFAULTS,
    artifact_key,
    batch_key,
    group_signature,
    kind_code_fingerprint,
    validate_job,
    warm_key,
    warm_key_payload,
)


class TestValidate:
    def test_defaults_fill_omitted_params(self):
        spec = validate_job({"kind": "ensemble"})
        assert spec.params == PARAM_DEFAULTS["ensemble"]
        assert spec.memoize is True
        assert spec.deadline_s is None

    def test_explicit_params_override(self):
        spec = validate_job(
            {"kind": "ensemble", "params": {"ntraj": 8, "seed": 1}}
        )
        assert spec.params["ntraj"] == 8
        assert spec.params["seed"] == 1
        assert spec.params["nsteps"] == PARAM_DEFAULTS["ensemble"]["nsteps"]

    def test_omission_insensitive_identity(self):
        """Defaults spelled out and defaults omitted hash identically --
        the property artifact memoization relies on."""
        a = validate_job({"kind": "scf"})
        b = validate_job({"kind": "scf", "params": dict(PARAM_DEFAULTS["scf"])})
        assert a.config_digest == b.config_digest

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            validate_job({"kind": "molecule"})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown ensemble parameter"):
            validate_job({"kind": "ensemble", "params": {"ntrajs": 8}})

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            validate_job({"kind": "scf", "deadline_s": -1})

    def test_default_deadline_applies_when_unset(self):
        spec = validate_job({"kind": "scf"}, default_deadline_s=30.0)
        assert spec.deadline_s == 30.0
        spec = validate_job({"kind": "scf", "deadline_s": 5},
                            default_deadline_s=30.0)
        assert spec.deadline_s == 5.0

    def test_job_ids_unique_when_omitted(self):
        a = validate_job({"kind": "scf"})
        b = validate_job({"kind": "scf"})
        assert a.job_id != b.job_id
        assert validate_job({"kind": "scf", "id": "mine"}).job_id == "mine"


class TestBatchKey:
    def test_scf_all_coalesce(self):
        a = validate_job({"kind": "scf", "params": {"grid": 12}})
        b = validate_job({"kind": "scf", "params": {"separation": 1.2}})
        assert batch_key(a) == batch_key(b) == "scf"

    def test_run_never_coalesces(self):
        assert batch_key(validate_job({"kind": "run"})) is None

    def test_ensemble_free_axes_do_not_split(self):
        base = validate_job({"kind": "ensemble", "params": {"nsteps": 10}})
        for free in ({"seed": 99}, {"ntraj": 4}, {"batch_size": 2},
                     {"istate": 0}):
            other = validate_job(
                {"kind": "ensemble", "params": {"nsteps": 10, **free}}
            )
            assert batch_key(other) == batch_key(base)

    def test_ensemble_physics_axes_split(self):
        base = validate_job({"kind": "ensemble"})
        for bound in ({"nsteps": 9}, {"coupling": 0.1},
                      {"decoherence": "edc"}, {"path_seed": 8}):
            other = validate_job({"kind": "ensemble", "params": bound})
            assert batch_key(other) != batch_key(base)

    def test_spectrum_groups_by_ground_state(self):
        a = validate_job({"kind": "spectrum", "params": {"steps": 400}})
        b = validate_job({"kind": "spectrum", "params": {"steps": 800}})
        c = validate_job({"kind": "spectrum", "params": {"grid": 16}})
        assert batch_key(a) == batch_key(b)  # steps is propagation-only
        assert batch_key(c) != batch_key(a)


class TestWarmKey:
    def test_spectrum_key_ignores_propagation_axes(self):
        a = validate_job({"kind": "spectrum", "params": {"steps": 400}})
        b = validate_job({"kind": "spectrum", "params": {"steps": 800}})
        assert warm_key(a) == warm_key(b)
        assert warm_key_payload(a)["stage"] == "spectrum-gs"

    def test_scf_key_is_full_params(self):
        a = validate_job({"kind": "scf"})
        b = validate_job({"kind": "scf", "params": {"ncg": 4}})
        assert warm_key(a) != warm_key(b)

    def test_run_and_ensemble_have_no_warm_stage(self):
        for kind in ("run", "ensemble"):
            with pytest.raises(ValueError):
                warm_key(validate_job({"kind": kind}))


class TestArtifactKey:
    def test_key_structure(self):
        spec = validate_job({"kind": "ensemble"})
        key = artifact_key(spec)
        assert key.kind == "serve.ensemble"
        assert key.config == spec.config_digest
        assert key.code == kind_code_fingerprint("ensemble")
        assert key.machine == machine_fingerprint()

    def test_machine_override(self):
        spec = validate_job({"kind": "scf"})
        assert artifact_key(spec, machine="m0").machine == "m0"

    def test_kinds_have_distinct_code_fingerprints(self):
        fps = {kind_code_fingerprint(k)
               for k in ("run", "spectrum", "scf", "ensemble")}
        assert len(fps) == 4  # module lists differ per kind


def test_group_signature_orders_and_distinguishes():
    a = validate_job({"kind": "scf", "id": "a"})
    b = validate_job({"kind": "scf", "id": "b", "params": {"grid": 14}})
    assert group_signature((a, b)) != group_signature((b, a))
    assert group_signature((a,)) != group_signature((b,))
    assert group_signature((a, b)) == group_signature((a, b))
