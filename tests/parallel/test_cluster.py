"""Polaris machine model tests."""

import pytest

from repro.parallel import PolarisModel
from repro.parallel.network import NVLINK_NET, SLINGSHOT


class TestTopology:
    def test_rank_mapping(self):
        m = PolarisModel(nnodes=2)
        assert m.nranks == 8
        assert m.node_of(0) == 0
        assert m.node_of(5) == 1
        assert m.gpu_of(6) == (1, 2)

    def test_for_ranks_rounds_up(self):
        m = PolarisModel.for_ranks(10)
        assert m.nnodes == 3
        assert m.nranks >= 10

    def test_paper_configuration(self):
        """256 nodes host the paper's 1,024 GPUs / MPI ranks."""
        m = PolarisModel(nnodes=256)
        assert m.nranks == 1024
        assert m.ngpus == 1024

    def test_machine_bounds(self):
        with pytest.raises(ValueError):
            PolarisModel(nnodes=0)
        with pytest.raises(ValueError):
            PolarisModel(nnodes=561)
        with pytest.raises(ValueError):
            PolarisModel(nnodes=1, ranks_per_node=5)

    def test_rank_out_of_range(self):
        m = PolarisModel(nnodes=1)
        with pytest.raises(ValueError):
            m.node_of(4)


class TestLinks:
    def test_intra_node_nvlink(self):
        m = PolarisModel(nnodes=2)
        assert m.link_between(0, 3) is NVLINK_NET
        assert m.link_between(0, 4) is SLINGSHOT

    def test_hops(self):
        m = PolarisModel(nnodes=40)
        assert m.hops_between(0, 1) == 0        # same node
        assert m.hops_between(0, 4) == 1        # same group (node 1)
        assert m.hops_between(0, 17 * 4) == 3   # node 17: different group


class TestPerformance:
    def test_aggregate_flops_scale_with_nodes(self):
        small = PolarisModel(nnodes=1).peak_flops_dp()
        large = PolarisModel(nnodes=10).peak_flops_dp()
        assert large == pytest.approx(10 * small)

    def test_node_level_performance_order(self):
        """Node peak ~ 40+ DP TFLOP/s (paper: 78 TF including tensor ops)."""
        per_node = PolarisModel(nnodes=1).peak_flops_dp()
        assert 30e12 < per_node < 100e12


class TestAurora:
    def test_aurora_topology(self):
        from repro.parallel.cluster import AuroraModel

        m = AuroraModel(nnodes=2)
        assert m.nranks == 12
        assert m.node_of(7) == 1
        assert m.gpu.name.startswith("Intel Max")

    def test_aurora_bounds(self):
        from repro.parallel.cluster import AuroraModel

        with pytest.raises(ValueError):
            AuroraModel(nnodes=0)
        with pytest.raises(ValueError):
            AuroraModel(nnodes=10625)
        with pytest.raises(ValueError):
            AuroraModel(nnodes=1, ranks_per_node=13)

    def test_aurora_node_outruns_polaris_node(self):
        from repro.parallel.cluster import AuroraModel

        aurora = AuroraModel(nnodes=1).peak_flops_dp()
        polaris = PolarisModel(nnodes=1).peak_flops_dp()
        assert aurora > 3 * polaris

    def test_aurora_intra_node_link(self):
        from repro.parallel.cluster import AuroraModel

        m = AuroraModel(nnodes=2)
        assert m.link_between(0, 5) is not m.link_between(0, 6)
