"""Distributed DC solver: bit-identical to serial for any rank count."""

import numpy as np
import pytest

from repro.grids import Grid3D, DomainDecomposition
from repro.parallel import SLINGSHOT, RankTimeline
from repro.parallel.distributed import DistributedDCSolver
from repro.pseudo import get_species
from repro.qxmd import GlobalDCSolver


@pytest.fixture(scope="module")
def system():
    grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    dec = DomainDecomposition(grid, (2, 2, 1), buffer_width=3)
    pos = np.array(
        [[2.0, 2.0, 4.8], [7.0, 2.0, 4.8], [2.0, 7.0, 4.8], [7.0, 7.0, 4.8]]
    )
    sp = [get_species("H")] * 4
    return grid, dec, pos, sp


@pytest.fixture(scope="module")
def serial_result(system):
    grid, dec, pos, sp = system
    return GlobalDCSolver(grid, dec, pos, sp, norb_extra=2, nscf=2,
                          ncg=3).solve()


class TestEquivalence:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_identical_to_serial(self, system, serial_result, nranks):
        grid, dec, pos, sp = system
        dist = DistributedDCSolver(
            grid, dec, pos, sp, nranks=nranks, norb_extra=2, nscf=2, ncg=3
        ).solve()
        assert np.array_equal(dist.rho_global, serial_result.rho_global)
        assert np.array_equal(dist.v_global, serial_result.v_global)
        assert dist.energy_history == pytest.approx(
            serial_result.energy_history, rel=1e-12
        )
        for a, b in zip(dist.states, serial_result.states):
            assert a.domain.alpha == b.domain.alpha
            assert np.array_equal(a.wf.psi, b.wf.psi)
            assert np.allclose(a.eigenvalues, b.eigenvalues)

    def test_domain_order_preserved(self, system):
        grid, dec, pos, sp = system
        dist = DistributedDCSolver(
            grid, dec, pos, sp, nranks=2, norb_extra=2, nscf=1, ncg=1
        ).solve()
        assert [st.domain.alpha for st in dist.states] == [0, 1, 2, 3]


class TestValidation:
    def test_too_many_ranks(self, system):
        grid, dec, pos, sp = system
        with pytest.raises(ValueError):
            DistributedDCSolver(grid, dec, pos, sp, nranks=8)

    def test_zero_ranks(self, system):
        grid, dec, pos, sp = system
        with pytest.raises(ValueError):
            DistributedDCSolver(grid, dec, pos, sp, nranks=0)


class TestInstrumentation:
    def test_comm_time_charged(self, system):
        grid, dec, pos, sp = system
        tl = RankTimeline(4)
        DistributedDCSolver(
            grid, dec, pos, sp, nranks=4, nscf=2, ncg=2,
            network=SLINGSHOT, timeline=tl,
        ).solve()
        assert all(t > 0 for t in tl.comm_total)
        assert tl.barriers == 2  # one per SCF iteration
