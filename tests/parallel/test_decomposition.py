"""Hybrid space-band decomposition tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import SpaceBandDecomposition


class TestPartition:
    @pytest.mark.parametrize(
        "ndomains,nbands,p_space,p_band",
        [(8, 16, 4, 2), (5, 7, 3, 2), (1, 16, 1, 4), (16, 1, 16, 1)],
    )
    def test_every_pair_owned_once(self, ndomains, nbands, p_space, p_band):
        dec = SpaceBandDecomposition(ndomains, nbands, p_space, p_band)
        dec.validate()  # raises on double ownership or gaps

    def test_world_size(self):
        dec = SpaceBandDecomposition(8, 16, 4, 2)
        assert dec.nranks == 8

    def test_block_distribution_balanced(self):
        dec = SpaceBandDecomposition(10, 12, 4, 3)
        sizes = [len(a.domains) * a.nbands for a in dec.all_assignments()]
        assert max(sizes) - min(sizes) <= 4 + 3  # within one block each way

    def test_max_domains_per_rank(self):
        dec = SpaceBandDecomposition(10, 4, 4, 1)
        assert dec.max_domains_per_rank() == 3

    def test_band_partners_share_domains(self):
        dec = SpaceBandDecomposition(4, 16, 2, 4)
        a0 = dec.assignment(0)
        for partner in dec.band_partners(0):
            ap = dec.assignment(partner)
            assert ap.domains == a0.domains
            assert ap.band_range != a0.band_range

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceBandDecomposition(2, 4, 3, 1)  # more groups than domains
        with pytest.raises(ValueError):
            SpaceBandDecomposition(2, 4, 1, 5)  # more groups than bands
        with pytest.raises(ValueError):
            SpaceBandDecomposition(0, 4, 1, 1)

    def test_rank_out_of_range(self):
        dec = SpaceBandDecomposition(4, 4, 2, 2)
        with pytest.raises(ValueError):
            dec.assignment(4)

    def test_rank_ordering_is_space_major(self):
        dec = SpaceBandDecomposition(4, 8, 2, 2)
        assert dec.assignment(0).space_group == 0
        assert dec.assignment(1).space_group == 0
        assert dec.assignment(2).space_group == 1


class TestBlockRangeInvariants:
    """Property tests: block partition covers, stays disjoint, balances."""

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=400),
        parts=st.integers(min_value=1, max_value=40),
    )
    def test_blocks_partition_exactly(self, total, parts):
        if parts > total:
            parts = total
        ranges = [
            SpaceBandDecomposition._block_range(total, parts, i)
            for i in range(parts)
        ]
        flat = [j for lo, hi in ranges for j in range(lo, hi)]
        assert flat == list(range(total))  # covers, disjoint, ordered

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=400),
        parts=st.integers(min_value=1, max_value=40),
    )
    def test_block_sizes_differ_by_at_most_one(self, total, parts):
        if parts > total:
            parts = total
        sizes = [
            hi - lo
            for lo, hi in (
                SpaceBandDecomposition._block_range(total, parts, i)
                for i in range(parts)
            )
        ]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == math.ceil(total / parts)

    @settings(max_examples=60, deadline=None)
    @given(
        ndomains=st.integers(min_value=1, max_value=40),
        nbands=st.integers(min_value=1, max_value=40),
        p_space=st.integers(min_value=1, max_value=8),
        p_band=st.integers(min_value=1, max_value=8),
    )
    def test_random_decompositions_validate(
        self, ndomains, nbands, p_space, p_band
    ):
        p_space = min(p_space, ndomains)
        p_band = min(p_band, nbands)
        dec = SpaceBandDecomposition(ndomains, nbands, p_space, p_band)
        dec.validate()
        assert dec.max_domains_per_rank() == math.ceil(ndomains / p_space)
