"""Differential harness: the three executor backends produce one physics.

The headline guarantee of the backend abstraction, asserted end to end:
identical seeded DC-MESH trajectories through the serial, thread, and
process backends.  Serial vs thread must be **bit-identical** (threads
run the same floating-point program on the caller's arrays); serial vs
process must agree to <= 1e-12 on every observable (in practice it is
also bit-identical -- workers run the same program on copied inputs --
and the tolerance is headroom, not slack in the contract).

Property-based tests additionally pin the two invariances the executor
design promises: worker count and chunking never change physics, and
the domain count changes physics only through the decomposition itself,
never through the backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mesh import DCMESHConfig, DCMESHSimulation
from repro.core.timescale import TimescaleSplit
from repro.grids.domain import DomainDecomposition
from repro.grids.grid import Grid3D
from repro.maxwell.laser import GaussianPulse
from repro.parallel.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.distributed import DistributedDCSolver
from repro.pseudo.elements import get_species
from repro.qxmd.dftsolver import GlobalDCSolver
from repro.qxmd.scf import SCFConfig, SCFTask, scf_solve_batch

NSTEPS = 20


def _make_sim(executor=None) -> DCMESHSimulation:
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    laser = GaussianPulse(e0=0.02, omega=0.3, t0=10.0, sigma=6.0)
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=99,
    )
    sim = DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        laser=laser, config=config, buffer_width=2, executor=executor,
    )
    sim.excite_carrier(0)
    return sim


def _signature(sim: DCMESHSimulation, nsteps: int = NSTEPS) -> dict:
    """Run a trajectory and collect every physics observable we compare."""
    records = sim.run(nsteps)
    return {
        "band_energy": np.array([r.band_energy for r in records]),
        "temperature": np.array([r.temperature for r in records]),
        "excited": np.array([r.excited_population for r in records]),
        "scissors": np.array([r.scissor_shifts for r in records]),
        "positions": sim.md_state.positions.copy(),
        "velocities": sim.md_state.velocities.copy(),
        "forces": sim._prev_forces.copy(),
        "occupations": np.concatenate(
            [s.occupations for s in sim.dc.states]
        ),
        "eigenvalues": np.concatenate(
            [s.eigenvalues for s in sim.dc.states]
        ),
    }


def _assert_signatures(ref: dict, got: dict, atol: float) -> None:
    for key, expect in ref.items():
        if atol == 0.0:
            assert np.array_equal(expect, got[key]), key
        else:
            np.testing.assert_allclose(
                got[key], expect, rtol=0.0, atol=atol, err_msg=key
            )


@pytest.fixture(scope="module")
def serial_signature():
    with SerialBackend(seed=99) as ex:
        return _signature(_make_sim(ex))


class TestTrajectoryEquivalence:
    def test_thread_bit_identical(self, serial_signature):
        with ThreadBackend(workers=2, seed=99) as ex:
            sig = _signature(_make_sim(ex))
        _assert_signatures(serial_signature, sig, atol=0.0)

    def test_process_within_1e12(self, serial_signature):
        with ProcessBackend(workers=2, seed=99) as ex:
            sig = _signature(_make_sim(ex))
        _assert_signatures(serial_signature, sig, atol=1e-12)

    def test_default_executor_is_serial(self, serial_signature):
        sig = _signature(_make_sim(executor=None))
        _assert_signatures(serial_signature, sig, atol=0.0)


def _distributed_solve(executor=None, nranks=2):
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    dec = DomainDecomposition(grid, (2, 2, 1), buffer_width=2)
    positions = np.array(
        [[L / 4, L / 4, L / 2], [3 * L / 4, L / 4, L / 2],
         [L / 4, 3 * L / 4, L / 2], [3 * L / 4, 3 * L / 4, L / 2]]
    )
    species = [get_species("H")] * 4
    solver = DistributedDCSolver(
        grid, dec, positions, species, nranks=nranks,
        norb_extra=1, nscf=2, ncg=1, seed=5, executor=executor,
    )
    result = solver.solve()
    return result, grid, dec, positions, species


class TestDistributedEquivalence:
    def test_thread_matches_serial_backend_bitwise(self):
        ref, *_ = _distributed_solve(SerialBackend(seed=5))
        with ThreadBackend(workers=3, seed=5) as ex:
            got, *_ = _distributed_solve(ex)
        assert np.array_equal(ref.rho_global, got.rho_global)
        assert ref.energy_history == got.energy_history
        for a, b in zip(ref.states, got.states):
            assert np.array_equal(a.eigenvalues, b.eigenvalues)

    def test_process_matches_serial_backend(self):
        ref, *_ = _distributed_solve(SerialBackend(seed=5))
        with ProcessBackend(workers=2, seed=5) as ex:
            got, *_ = _distributed_solve(ex)
        np.testing.assert_allclose(
            got.rho_global, ref.rho_global, rtol=0.0, atol=1e-12
        )
        np.testing.assert_allclose(
            got.energy_history, ref.energy_history, rtol=0.0, atol=1e-12
        )

    def test_distributed_still_matches_global_solver(self):
        """The executor routing must not break rank/serial agreement."""
        with ThreadBackend(workers=2, seed=5) as ex:
            dist, grid, dec, positions, species = _distributed_solve(ex)
        serial = GlobalDCSolver(
            grid, dec, positions, species, norb_extra=1, nscf=2, ncg=1,
            seed=5,
        ).solve()
        assert np.array_equal(dist.rho_global, serial.rho_global)


class TestSCFBatchEquivalence:
    @staticmethod
    def _tasks():
        grid = Grid3D((10, 10, 10), (0.6,) * 3)
        L = grid.lengths[0]
        cfg = SCFConfig(nscf=1, ncg=1, seed=3)
        return [
            SCFTask(
                grid=grid,
                positions=np.array([[L / 2 + 0.1 * k, L / 2, L / 2]]),
                species=[get_species("H")],
                norb=2,
                config=cfg,
            )
            for k in range(3)
        ]

    def test_batch_backends_agree(self):
        ref = scf_solve_batch(self._tasks(), executor=None)
        with ThreadBackend(workers=2) as tex:
            thr = scf_solve_batch(self._tasks(), executor=tex)
        with ProcessBackend(workers=2) as pex:
            prc = scf_solve_batch(self._tasks(), executor=pex)
        for r, t, p in zip(ref, thr, prc):
            assert np.array_equal(r.eigenvalues, t.eigenvalues)
            assert np.array_equal(r.rho, t.rho)
            assert r.history == t.history
            np.testing.assert_allclose(
                p.eigenvalues, r.eigenvalues, rtol=0.0, atol=1e-12
            )
            np.testing.assert_allclose(p.rho, r.rho, rtol=0.0, atol=1e-12)


class TestPhysicsInvariance:
    """Worker count, chunking and backend choice never change physics."""

    @settings(max_examples=4, deadline=None)
    @given(workers=st.integers(min_value=1, max_value=4))
    def test_thread_worker_count_invariant(self, workers):
        ref, *_ = _distributed_solve(SerialBackend(seed=5))
        with ThreadBackend(workers=workers, seed=5) as ex:
            got, *_ = _distributed_solve(ex)
        assert np.array_equal(ref.rho_global, got.rho_global)
        assert ref.energy_history == got.energy_history

    @settings(max_examples=4, deadline=None)
    @given(nranks=st.integers(min_value=1, max_value=4))
    def test_rank_count_invariant_under_thread_backend(self, nranks):
        """Domain-to-rank placement never changes the physics."""
        ref, *_ = _distributed_solve(SerialBackend(seed=5), nranks=1)
        with ThreadBackend(workers=2, seed=5) as ex:
            got, *_ = _distributed_solve(ex, nranks=nranks)
        assert np.array_equal(ref.rho_global, got.rho_global)

    def test_process_chunking_invariant(self):
        """Chunk size changes scheduling, never results (spot check)."""
        ref, *_ = _distributed_solve(SerialBackend(seed=5))
        for chunk in (2, 4):
            with ProcessBackend(workers=2, seed=5, chunk_size=chunk) as ex:
                got, *_ = _distributed_solve(ex)
            np.testing.assert_allclose(
                got.rho_global, ref.rho_global, rtol=0.0, atol=1e-12
            )
