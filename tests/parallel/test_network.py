"""Network cost model tests."""

import pytest

from repro.parallel import (
    NVLINK_NET,
    SLINGSHOT,
    allreduce_time,
    bcast_time,
    point_to_point_time,
    tree_reduce_time,
)
from repro.parallel.network import dragonfly_hops, halo_exchange_time


class TestAlphaBeta:
    def test_latency_floor(self):
        assert point_to_point_time(0, SLINGSHOT, hops=0) == pytest.approx(
            SLINGSHOT.alpha
        )

    def test_bandwidth_term(self):
        t1 = point_to_point_time(1e6, SLINGSHOT)
        t2 = point_to_point_time(2e6, SLINGSHOT)
        assert t2 - t1 == pytest.approx(1e6 * SLINGSHOT.beta)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            point_to_point_time(-1, SLINGSHOT)

    def test_nvlink_faster(self):
        assert point_to_point_time(1e8, NVLINK_NET) < point_to_point_time(
            1e8, SLINGSHOT
        )


class TestCollectives:
    def test_single_rank_free(self):
        assert allreduce_time(1e6, 1, SLINGSHOT) == 0.0
        assert bcast_time(1e6, 1, SLINGSHOT) == 0.0
        assert tree_reduce_time(1e6, 1, SLINGSHOT) == 0.0

    def test_logarithmic_latency_scaling(self):
        """Doubling P adds one latency stage, not a proportional cost."""
        t64 = allreduce_time(8, 64, SLINGSHOT)
        t128 = allreduce_time(8, 128, SLINGSHOT)
        assert t128 - t64 == pytest.approx(2 * SLINGSHOT.alpha, rel=0.01)

    def test_allreduce_bandwidth_saturates(self):
        """The Rabenseifner bandwidth term approaches 2x message size."""
        t = allreduce_time(1e9, 1024, SLINGSHOT)
        bw_term = 2.0 * (1023 / 1024) * 1e9 * SLINGSHOT.beta
        assert t == pytest.approx(bw_term, rel=0.01)

    def test_tree_cheaper_for_small_messages(self):
        """A one-way tree beats all-reduce in the latency-bound regime
        (large messages flip this: the tree re-sends the full payload
        every stage)."""
        assert tree_reduce_time(8, 256, SLINGSHOT) < allreduce_time(
            8, 256, SLINGSHOT
        )
        assert tree_reduce_time(1e8, 256, SLINGSHOT) > allreduce_time(
            1e8, 256, SLINGSHOT
        )


class TestDragonfly:
    def test_same_node(self):
        assert dragonfly_hops(5, 5) == 0

    def test_same_group(self):
        assert dragonfly_hops(0, 15, nodes_per_group=16) == 1

    def test_cross_group(self):
        assert dragonfly_hops(0, 16, nodes_per_group=16) == 3

    def test_hop_latency_added(self):
        t1 = point_to_point_time(0, SLINGSHOT, hops=1)
        t3 = point_to_point_time(0, SLINGSHOT, hops=3)
        assert t3 - t1 == pytest.approx(2 * SLINGSHOT.hop_latency)


class TestHalo:
    def test_three_phases(self):
        t = halo_exchange_time(1000, SLINGSHOT)
        assert t == pytest.approx(3 * (SLINGSHOT.alpha + 2000 * SLINGSHOT.beta))

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            halo_exchange_time(-1, SLINGSHOT)
