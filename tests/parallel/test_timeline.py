"""Rank timeline tests."""

import pytest

from repro.parallel import RankTimeline


class TestTimeline:
    def test_accumulation(self):
        tl = RankTimeline(3)
        tl.add_compute(0, 1.0)
        tl.add_comm(0, 0.5)
        tl.add_compute(1, 2.0)
        assert tl.times[0] == pytest.approx(1.5)
        assert tl.elapsed == pytest.approx(2.0)

    def test_barrier_synchronizes(self):
        tl = RankTimeline(3)
        tl.add_compute(0, 1.0)
        tl.add_compute(2, 4.0)
        t = tl.barrier()
        assert t == pytest.approx(4.0)
        assert tl.times == [4.0, 4.0, 4.0]
        assert tl.barriers == 1

    def test_load_imbalance(self):
        tl = RankTimeline(2)
        tl.add_compute(0, 1.0)
        tl.add_compute(1, 3.0)
        assert tl.load_imbalance() == pytest.approx(1.5)

    def test_balanced_is_one(self):
        tl = RankTimeline(4)
        for r in range(4):
            tl.add_compute(r, 2.0)
        assert tl.load_imbalance() == pytest.approx(1.0)

    def test_comm_fraction(self):
        tl = RankTimeline(2)
        tl.add_compute(0, 3.0)
        tl.add_comm(0, 1.0)
        assert tl.comm_fraction() == pytest.approx(0.25)

    def test_empty_comm_fraction(self):
        assert RankTimeline(2).comm_fraction() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RankTimeline(0)
        tl = RankTimeline(2)
        with pytest.raises(ValueError):
            tl.add_compute(2, 1.0)
        with pytest.raises(ValueError):
            tl.add_compute(0, -1.0)

    def test_categories(self):
        tl = RankTimeline(2)
        tl.add_compute(0, 1.0, "qxmd")
        tl.add_compute(1, 2.0, "qxmd")
        tl.add_comm(0, 0.5, "halo")
        assert tl.categories["qxmd"] == pytest.approx(3.0)
        assert tl.categories["halo"] == pytest.approx(0.5)
