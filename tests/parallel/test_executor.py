"""DomainExecutor contract tests: ordering, RNG discipline, shm transport.

The task functions live at module level so the process backend can pickle
them by qualified name into spawn workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Tracer, set_tracer
from repro.parallel.backends.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmArrayRef,
    ShmSession,
    attached,
)
from repro.parallel.executor import (
    BACKENDS,
    WorkerCrashError,
    chunk_entropy,
    chunk_rng,
    chunk_slices,
    make_executor,
    worker_rng,
)
from repro.resilience.faults import RankFailure


def _square(x):
    return x * x


def _draw(_):
    return worker_rng().standard_normal(4)


def _sum_big(item):
    tag, arr = item
    return tag, float(arr.sum())


def _writable_flag(arr):
    return bool(arr.flags.writeable)


@pytest.fixture(params=list(BACKENDS))
def executor(request):
    ex = make_executor(request.param, workers=2, seed=7)
    yield ex
    ex.shutdown()


class TestMapContract:
    def test_order_preserved(self, executor):
        assert executor.map(_square, list(range(17))) == [
            i * i for i in range(17)
        ]

    def test_empty_map(self, executor):
        assert executor.map(_square, []) == []

    def test_context_manager_shuts_down(self):
        with make_executor("thread", workers=2) as ex:
            assert ex.map(_square, [3]) == [9]

    def test_rng_streams_identical_across_backends(self):
        draws = {}
        for name in BACKENDS:
            with make_executor(name, workers=2, seed=123) as ex:
                draws[name] = ex.map(_draw, list(range(6)))
        for name in ("thread", "process"):
            for a, b in zip(draws["serial"], draws[name]):
                assert np.array_equal(a, b), name

    def test_rng_streams_differ_across_items_and_maps(self):
        with make_executor("serial", seed=1) as ex:
            first = ex.map(_draw, [0, 1])
            second = ex.map(_draw, [0, 1])
        assert not np.array_equal(first[0], first[1])
        assert not np.array_equal(first[0], second[0])  # map index advanced

    def test_worker_rng_outside_task_raises(self):
        with pytest.raises(RuntimeError, match="only available inside"):
            worker_rng()


class TestFactoryValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_executor("gpu")

    def test_serial_workers_fixed(self):
        assert make_executor("serial").workers == 1

    def test_default_workers_positive(self):
        for name in ("thread", "process"):
            ex = make_executor(name)
            assert ex.workers >= 1
            ex.shutdown()

    def test_serial_rejects_process_kwargs(self):
        with pytest.raises(ValueError):
            make_executor("serial", chunk_size=4)

    def test_process_kwargs_forwarded(self):
        ex = make_executor("process", workers=3, chunk_size=2,
                           shm_threshold=0, max_crash_retries=5)
        assert ex.chunk_size == 2
        assert ex.shm_threshold == 0
        assert ex.max_crash_retries == 5
        ex.shutdown()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            make_executor("thread", workers=0)


class TestChunking:
    def test_chunk_slices_cover_exactly(self):
        for n in (0, 1, 5, 8):
            for size in (1, 2, 3, 8):
                slices = chunk_slices(n, size)
                flat = [i for lo, hi in slices for i in range(lo, hi)]
                assert flat == list(range(n))
                assert all(hi - lo <= size for lo, hi in slices)

    def test_chunk_slices_validation(self):
        with pytest.raises(ValueError):
            chunk_slices(-1, 1)
        with pytest.raises(ValueError):
            chunk_slices(3, 0)

    def test_chunk_entropy_distinct(self):
        keys = {chunk_entropy(0, m, c) for m in range(4) for c in range(4)}
        assert len(keys) == 16

    def test_chunk_rng_deterministic(self):
        a = chunk_rng(5, 1, 2).standard_normal(3)
        b = chunk_rng(5, 1, 2).standard_normal(3)
        assert np.array_equal(a, b)

    def test_process_chunked_map_matches_serial(self):
        items = list(range(10))
        with make_executor("serial", seed=0) as s:
            expect = s.map(_square, items)
        with make_executor("process", workers=2, chunk_size=3, seed=0) as p:
            assert p.map(_square, items) == expect


class TestSharedMemory:
    def test_big_arrays_cross_via_shm(self):
        big = np.arange(8192, dtype=float)  # 64 KiB
        with make_executor("process", workers=2) as ex:
            tag, total = ex.map(_sum_big, [("x", big)])[0]
        assert tag == "x"
        assert total == float(big.sum())

    def test_shm_views_are_read_only(self):
        big = np.ones(8192, dtype=float)
        with make_executor("process", workers=1) as ex:
            assert ex.map(_writable_flag, [big]) == [False]

    def test_small_arrays_stay_writable_pickles(self):
        small = np.ones(4, dtype=float)
        with make_executor("process", workers=1) as ex:
            assert ex.map(_writable_flag, [small]) == [True]

    def test_session_pack_roundtrip(self):
        big = np.arange(4096, dtype=np.complex128)  # 64 KiB
        small = np.ones(3)
        session = ShmSession()
        try:
            packed = session.pack(("tag", big, [small, big]))
            assert isinstance(packed[1], ShmArrayRef)
            assert isinstance(packed[2][0], np.ndarray)
            # identical array object is shared exactly once
            assert packed[2][1] is packed[1] or packed[2][1] == packed[1]
            assert session.nsegments == 1
            with attached(packed) as (tag, view, (sm, view2)):
                assert tag == "tag"
                assert np.array_equal(view, big)
                assert np.array_equal(view2, big)
                assert not view.flags.writeable
                assert np.array_equal(sm, small)
        finally:
            session.close()

    def test_session_close_idempotent(self):
        session = ShmSession()
        session.share(np.ones(10))
        session.close()
        session.close()
        assert session.nsegments == 0

    def test_threshold_zero_disables_shm(self):
        session = ShmSession()
        try:
            packed = session.pack(np.ones(80000), threshold=0)
            assert isinstance(packed, np.ndarray)
            assert session.nsegments == 0
        finally:
            session.close()

    def test_default_threshold_value(self):
        assert DEFAULT_SHM_THRESHOLD == 32768


class TestTracing:
    def test_map_emits_comm_span(self, executor):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            executor.map(_square, [1, 2, 3], label="unit")
        finally:
            set_tracer(None)
        spans = [r for r in tracer.records if r.name == "executor.map"]
        assert len(spans) == 1
        (span,) = spans
        assert span.category == "comm"
        assert span.args["backend"] == executor.name
        assert span.args["ntasks"] == 3
        assert span.args["label"] == "unit"


class TestCrashErrorType:
    def test_worker_crash_is_rank_failure(self):
        err = WorkerCrashError("lfd.domains", 3, 1)
        assert isinstance(err, RankFailure)
        assert err.crashes == 3
        assert err.survivors == 1
        assert "lfd.domains" in str(err)
