"""Scaling-model tests (Figs. 2-3 machinery)."""

import numpy as np
import pytest

from repro.parallel import (
    DCMeshStepModel,
    fit_strong_efficiency_law,
    fit_weak_efficiency_law,
    strong_scaling_study,
    weak_scaling_study,
)
from repro.parallel.scaling import (
    calibrate_fixed_overhead,
    calibrate_tree_factor,
    calibrated_model,
)


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


class TestStepModel:
    def test_linear_scaling_in_domains(self):
        """The DC property: 2x atoms/rank -> 2x compute (no fixed part)."""
        base = DCMeshStepModel(fixed_step_overhead=0.0, jitter=0.0)
        t1 = base.compute_time()
        t2 = base.with_atoms_per_rank(80.0).compute_time()
        assert t2 == pytest.approx(2 * t1, rel=1e-12)

    def test_gpu_faster_than_cpu_lfd(self):
        m = DCMeshStepModel()
        assert m.lfd_domain_time(use_gpu=True) < m.lfd_domain_time(use_gpu=False)

    def test_comm_grows_with_ranks(self):
        m = DCMeshStepModel()
        assert m.comm_time(1024) > m.comm_time(4)
        assert m.comm_time(1) == 0.0

    def test_step_time_positive(self, model):
        assert model.step_time(4) > 0.0
        with pytest.raises(ValueError):
            model.step_time(0)


class TestCalibration:
    def test_weak_anchor_hit(self, model):
        pts = weak_scaling_study(model)
        eta_1024 = [p for p in pts if p.nranks == 1024][0].efficiency
        assert eta_1024 == pytest.approx(0.9673, abs=2e-3)

    def test_strong_anchor_hit(self, model):
        pts = strong_scaling_study(model, 5120.0, (64, 128, 256))
        eta_256 = [p for p in pts if p.nranks == 256][0].efficiency
        assert eta_256 == pytest.approx(0.6634, abs=0.02)

    def test_calibrations_are_deterministic(self):
        a = calibrated_model()
        b = calibrated_model()
        assert a.tree_levels_factor == pytest.approx(b.tree_levels_factor)
        assert a.fixed_step_overhead == pytest.approx(b.fixed_step_overhead)

    def test_bad_targets(self, model):
        with pytest.raises(ValueError):
            calibrate_tree_factor(model, target_efficiency=1.5)
        with pytest.raises(ValueError):
            calibrate_fixed_overhead(model, target_efficiency=0.0)


class TestWeakScaling:
    def test_efficiency_monotonically_decreasing(self, model):
        pts = weak_scaling_study(model)
        effs = [p.efficiency for p in pts]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_reference_efficiency_is_one(self, model):
        pts = weak_scaling_study(model)
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_speed_definition(self, model):
        """speed = atoms * MD steps / second (paper definition)."""
        pts = weak_scaling_study(model)
        for p in pts:
            assert p.speed == pytest.approx(p.natoms / p.step_time)

    def test_reference_must_be_in_list(self, model):
        with pytest.raises(ValueError):
            weak_scaling_study(model, p_list=(8, 16), p_ref=4)

    def test_law_fit_has_positive_log_slope(self, model):
        pts = weak_scaling_study(model)
        _, beta = fit_weak_efficiency_law(pts)
        assert beta > 0.0


class TestStrongScaling:
    def test_bigger_p_faster_but_less_efficient(self, model):
        pts = strong_scaling_study(model, 5120.0, (64, 128, 256))
        times = [p.step_time for p in pts]
        effs = [p.efficiency for p in pts]
        assert times[0] > times[1] > times[2]
        assert effs[0] > effs[1] > effs[2]

    def test_strong_worse_than_weak(self, model):
        """The paper's central scaling observation (Section IV-A)."""
        weak = weak_scaling_study(model)
        eta_weak = [p for p in weak if p.nranks == 256][0].efficiency
        strong = strong_scaling_study(model, 5120.0, (64, 128, 256))
        eta_strong = [p for p in strong if p.nranks == 256][0].efficiency
        assert eta_strong < eta_weak

    def test_law_fit_runs(self, model):
        pts = strong_scaling_study(model, 5120.0, (64, 128, 256))
        alpha, beta = fit_strong_efficiency_law(pts)
        assert np.isfinite(alpha) and np.isfinite(beta)

    def test_needs_two_points(self, model):
        with pytest.raises(ValueError):
            strong_scaling_study(model, 5120.0, (64,))
