"""SimComm collective tests: results must match real-MPI semantics."""

import numpy as np
import pytest

from repro.parallel import SimComm


@pytest.fixture
def comm():
    return SimComm(4)


class TestCollectives:
    def test_bcast(self, comm):
        data = np.arange(5)
        out = comm.bcast(data, root=2)
        assert len(out) == 4
        for r, v in enumerate(out):
            assert np.array_equal(v, data)
        # Non-root ranks get copies, not aliases.
        out[0][0] = 99
        assert data[0] == 99 if id(out[0]) == id(data) else data[0] == 0

    def test_bcast_bad_root(self, comm):
        with pytest.raises(ValueError):
            comm.bcast(1, root=4)

    def test_allreduce_sum(self, comm):
        vals = [np.full(3, r, dtype=float) for r in range(4)]
        out = comm.allreduce(vals)
        for v in out:
            assert np.allclose(v, 0 + 1 + 2 + 3)

    def test_allreduce_custom_op(self, comm):
        out = comm.allreduce([3, 1, 4, 1], op=max)
        assert out == [4, 4, 4, 4]

    def test_allreduce_does_not_mutate_inputs(self, comm):
        vals = [np.ones(2) for _ in range(4)]
        comm.allreduce(vals)
        assert all(np.allclose(v, 1.0) for v in vals)

    def test_allreduce_world_size_check(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([1, 2, 3])

    def test_reduce(self, comm):
        assert comm.reduce([1, 2, 3, 4]) == 10

    def test_gather_scatter(self, comm):
        gathered = comm.gather([10, 20, 30, 40], root=0)
        assert gathered == [10, 20, 30, 40]
        scattered = comm.scatter([5, 6, 7, 8], root=1)
        assert scattered == [5, 6, 7, 8]

    def test_allgather(self, comm):
        out = comm.allgather(["a", "b", "c", "d"])
        assert all(row == ["a", "b", "c", "d"] for row in out)

    def test_alltoall_transpose(self, comm):
        matrix = [[f"{src}->{dst}" for dst in range(4)] for src in range(4)]
        out = comm.alltoall(matrix)
        for dst in range(4):
            assert out[dst] == [f"{src}->{dst}" for src in range(4)]


class TestReductionOrderContract:
    """allreduce/reduce fold in one pinned order: ascending rank."""

    def test_schedule_is_ascending(self):
        for n in (1, 2, 5, 64):
            assert SimComm.reduction_schedule(n) == tuple(range(n))

    def test_schedule_validates_world_size(self):
        with pytest.raises(ValueError):
            SimComm.reduction_schedule(0)

    def test_noncommutative_op_exposes_fold_order(self, comm):
        # left fold in ascending rank order: ((10-1)-2)-3 == 4
        out = comm.allreduce([10, 1, 2, 3], op=lambda a, b: a - b)
        assert out == [4, 4, 4, 4]
        assert comm.reduce([10, 1, 2, 3], op=lambda a, b: a - b) == 4

    def test_reduce_matches_allreduce_bitwise(self, comm):
        rng = np.random.default_rng(11)
        vals = [rng.standard_normal(64) for _ in range(4)]
        red = comm.reduce(vals)
        allred = comm.allreduce(vals)
        for v in allred:
            assert np.array_equal(v, red)

    def test_allreduce_outputs_are_independent_copies(self, comm):
        out = comm.allreduce([np.ones(3) for _ in range(4)])
        out[0][0] = -1.0
        assert out[1][0] == 4.0

    def test_fold_repeatable_bitwise(self, comm):
        rng = np.random.default_rng(2)
        vals = [rng.standard_normal(128) * 10.0 ** rng.integers(-8, 8)
                for _ in range(4)]
        a = comm.allreduce(vals)[0]
        b = comm.allreduce(vals)[0]
        assert np.array_equal(a, b)


class TestCollectiveEdgeCases:
    @pytest.fixture
    def solo(self):
        return SimComm(1)

    def test_world_of_one(self, solo):
        assert solo.allreduce([5]) == [5]
        assert solo.reduce([np.arange(3)]) is not None
        assert solo.scatter([7]) == [7]
        assert solo.allgather(["x"]) == [["x"]]
        assert solo.alltoall([["a"]]) == [["a"]]

    def test_alltoall_ragged_row_rejected(self, comm):
        matrix = [[0] * 4, [0] * 4, [0] * 3, [0] * 4]
        with pytest.raises(ValueError):
            comm.alltoall(matrix)

    def test_alltoall_involution(self, comm):
        matrix = [[(src, dst) for dst in range(4)] for src in range(4)]
        assert comm.alltoall(comm.alltoall(matrix)) == matrix

    def test_scatter_world_size_mismatch(self, comm):
        with pytest.raises(ValueError):
            comm.scatter([1, 2])

    def test_empty_array_payloads(self, comm):
        out = comm.allreduce([np.zeros(0) for _ in range(4)])
        assert all(v.size == 0 for v in out)
        gathered = comm.gather([np.zeros(0)] * 4)
        assert len(gathered) == 4


class TestPointToPoint:
    def test_send_recv_fifo(self, comm):
        comm.send("first", src=0, dst=1)
        comm.send("second", src=0, dst=1)
        assert comm.recv(src=0, dst=1) == "first"
        assert comm.recv(src=0, dst=1) == "second"

    def test_recv_without_send(self, comm):
        with pytest.raises(RuntimeError):
            comm.recv(src=0, dst=1)

    def test_tags_isolate(self, comm):
        comm.send("x", 0, 1, tag=7)
        with pytest.raises(RuntimeError):
            comm.recv(0, 1, tag=8)
        assert comm.recv(0, 1, tag=7) == "x"

    def test_barrier_catches_leaks(self, comm):
        comm.send("lost", 0, 1)
        with pytest.raises(RuntimeError, match="undelivered"):
            comm.barrier()

    def test_pending_count(self, comm):
        comm.send(1, 0, 1)
        comm.send(2, 2, 3)
        assert comm.pending() == 2


class TestTimeCharging:
    def test_comm_time_charged_with_network(self):
        from repro.parallel import SLINGSHOT, RankTimeline

        tl = RankTimeline(4)
        comm = SimComm(4, network=SLINGSHOT, timeline=tl)
        comm.allreduce([np.ones(1000) for _ in range(4)])
        assert all(t > 0 for t in tl.comm_total)

    def test_no_network_no_charge(self, comm):
        comm.allreduce([1, 2, 3, 4])  # must not raise


def test_world_size_validation():
    with pytest.raises(ValueError):
        SimComm(0)
