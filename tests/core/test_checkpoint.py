"""Checkpoint/restart tests: restarted trajectories are identical."""

import numpy as np
import pytest

from repro.core.checkpoint import save_checkpoint, load_checkpoint

from tests.core.test_mesh import make_sim


class TestRoundtrip:
    def test_restart_continues_identically(self, tmp_path):
        """Run 4 steps straight vs 2 + checkpoint + 2: identical."""
        ref = make_sim(seed=5)
        ref.excite_carrier(0)
        ref.run(2)
        ckpt = tmp_path / "state.npz"

        work = make_sim(seed=5)
        work.excite_carrier(0)
        work.run(2)
        save_checkpoint(work, ckpt)

        ref.run(2)  # straight-through reference

        resumed = make_sim(seed=5)
        load_checkpoint(resumed, ckpt)
        resumed.run(2)

        assert np.array_equal(resumed.md_state.positions, ref.md_state.positions)
        assert np.array_equal(resumed.md_state.velocities, ref.md_state.velocities)
        assert resumed.time == pytest.approx(ref.time)
        for a, b in zip(resumed.dc.states, ref.dc.states):
            assert np.allclose(a.occupations, b.occupations)

    def test_state_fields_restored(self, tmp_path):
        sim = make_sim(seed=9)
        sim.excite_carrier(0)
        sim.run(1)
        ckpt = save_checkpoint(sim, tmp_path / "s.npz")

        fresh = make_sim(seed=9)
        load_checkpoint(fresh, ckpt)
        assert fresh.step_count == 1
        assert fresh.time == pytest.approx(sim.time)
        assert 0 in fresh.carriers
        assert fresh.carriers[0][0].active == sim.carriers[0][0].active
        assert np.array_equal(
            fresh.dc.states[0].wf.psi, sim.dc.states[0].wf.psi
        )

    def test_rng_state_restored(self, tmp_path):
        sim = make_sim(seed=2)
        sim.run(1)
        ckpt = save_checkpoint(sim, tmp_path / "s.npz")
        draw_ref = sim.rng.random()

        fresh = make_sim(seed=2)
        fresh.rng.random()  # desynchronize on purpose
        load_checkpoint(fresh, ckpt)
        assert fresh.rng.random() == draw_ref


class TestValidation:
    def test_atom_count_mismatch(self, tmp_path):
        sim = make_sim()
        ckpt = save_checkpoint(sim, tmp_path / "s.npz")
        other = make_sim()
        other.md_state.positions = np.zeros((3, 3))
        with pytest.raises(ValueError, match="atom count"):
            load_checkpoint(other, ckpt)

    def test_domain_count_mismatch(self, tmp_path, monkeypatch):
        sim = make_sim()
        ckpt = save_checkpoint(sim, tmp_path / "s.npz")
        other = make_sim()
        other.dc.states.pop()
        with pytest.raises(ValueError, match="domains"):
            load_checkpoint(other, ckpt)

    def test_file_is_compressed_npz(self, tmp_path):
        sim = make_sim()
        ckpt = save_checkpoint(sim, tmp_path / "s.npz")
        assert ckpt.exists()
        assert ckpt.stat().st_size > 0
        with np.load(ckpt) as data:
            assert "positions" in data
