"""DCMESHSimulation integration tests (small but complete runs)."""

import numpy as np
import pytest

from repro.core import DCMESHConfig, DCMESHSimulation, TimescaleSplit
from repro.device import VirtualGPU
from repro.grids import Grid3D
from repro.maxwell import GaussianPulse
from repro.pseudo import get_species


def make_sim(laser=None, device=None, seed=7, **cfg_kwargs):
    g = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    pos = np.array([[2.0, 4.8, 4.8], [7.0, 4.8, 4.8]])
    sp = [get_species("O"), get_species("O")]
    defaults = dict(
        # dt_qd = 0.1 a.u. keeps the splitting stable (see
        # QDPropagator.kinetic_rotation_angle); the paper's production
        # dt_qd is ~0.04 a.u.
        timescale=TimescaleSplit(dt_md=2.0, n_qd=20),
        nscf=2,
        ncg=3,
        norb_extra=2,
        seed=seed,
    )
    defaults.update(cfg_kwargs)
    cfg = DCMESHConfig(**defaults)
    return DCMESHSimulation(
        g, (2, 1, 1), pos, sp, laser=laser, config=cfg, device=device,
        buffer_width=3,
    )


@pytest.fixture(scope="module")
def sim_with_history():
    sim = make_sim(
        laser=GaussianPulse(e0=0.02, omega=0.3, t0=20.0, sigma=10.0),
        device=VirtualGPU(),
    )
    sim.excite_carrier(0)
    sim.run(3)
    return sim


class TestConstruction:
    def test_initial_state(self):
        sim = make_sim()
        assert len(sim.dc.states) == 2
        assert sim.step_count == 0
        # Each O domain: 6 electrons -> 3 occupied + 2 extra orbitals.
        for st in sim.dc.states:
            assert st.wf.norb == 5
            assert st.occupations.sum() == pytest.approx(6.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DCMESHConfig(nscf=0)

    def test_psi_uploaded_once(self):
        sim = make_sim(device=VirtualGPU())
        assert sim.ledger.psi_uploads == 1


class TestExcitation:
    def test_excite_carrier_moves_electron(self):
        sim = make_sim()
        before = sim.dc.states[0].occupations.copy()
        sim.excite_carrier(0)
        after = sim.dc.states[0].occupations
        assert after[2] == pytest.approx(before[2] - 1.0)  # HOMO emptied
        assert after[3] == pytest.approx(before[3] + 1.0)  # LUMO filled
        assert sim.excited_population() == pytest.approx(1.0)

    def test_excite_out_of_range(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.excite_carrier(0, target_offset=10)


class TestRun(object):
    def test_records_accumulate(self, sim_with_history):
        sim = sim_with_history
        assert sim.step_count == 3
        assert len(sim.history) == 3
        assert sim.history[-1].time == pytest.approx(3 * 2.0)

    def test_occupations_conserved(self, sim_with_history):
        for st in sim_with_history.dc.states:
            assert st.occupations.sum() == pytest.approx(6.0, rel=1e-9)
            assert np.all(st.occupations >= -1e-9)
            # Charge-conserving rescale can mildly overfill a band at this
            # deliberately coarse test resolution.
            assert np.all(st.occupations <= 2.0 + 0.25)

    def test_shadow_contract_held(self, sim_with_history):
        sim = sim_with_history
        sim.ledger.assert_no_psi_traffic()
        assert sim.ledger.traffic_ratio() < 0.1

    def test_scissor_shifts_finite(self, sim_with_history):
        for rec in sim_with_history.history:
            assert all(np.isfinite(s) for s in rec.scissor_shifts)

    def test_atoms_moved(self, sim_with_history):
        sim = sim_with_history
        assert sim.md_state.positions[0, 0] != 2.0  # forces acted

    def test_vector_potential_recorded(self, sim_with_history):
        a_norms = [np.linalg.norm(r.vector_potential) for r in
                   sim_with_history.history]
        assert any(a > 0 for a in a_norms)

    def test_negative_steps_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.run(-1)


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = make_sim(seed=3)
        b = make_sim(seed=3)
        ra = a.run(2)
        rb = b.run(2)
        assert ra[-1].band_energy == pytest.approx(rb[-1].band_energy)
        assert np.allclose(a.md_state.positions, b.md_state.positions)


class TestAblationsToggles:
    def test_scissor_off_runs(self):
        sim = make_sim(use_scissor=False)
        rec = sim.md_step()
        assert all(s == 0.0 for s in rec.scissor_shifts)

    def test_nonlocal_off_runs(self):
        sim = make_sim(include_nonlocal=False)
        rec = sim.md_step()
        assert rec.step == 1

    def test_surface_hopping_off(self):
        sim = make_sim(use_surface_hopping=False)
        sim.excite_carrier(0)
        recs = sim.run(2)
        assert all(r.hops == 0 for r in recs)
