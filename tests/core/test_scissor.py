"""Scissor shift (Eq. 8) tests."""

import numpy as np
import pytest

from repro.core import scissor_shift
from repro.core.scissor import homo_lumo_gap
from repro.lfd import WaveFunctionSet
from repro.pseudo import KBProjectorSet, get_species
from repro.qxmd import KSHamiltonian


class TestHomoLumo:
    def test_basic(self):
        gap, homo, lumo = homo_lumo_gap(
            np.array([-1.0, -0.5, 0.2, 0.4]), np.array([2.0, 2.0, 0.0, 0.0])
        )
        assert (homo, lumo) == (1, 2)
        assert gap == pytest.approx(0.7)

    def test_fractional_occupations_use_aufbau(self):
        """Small LFD-remap tails must not move the HOMO definition."""
        gap, homo, lumo = homo_lumo_gap(
            np.array([-1.0, -0.5, 0.2, 0.4]),
            np.array([1.96, 1.9, 0.1, 0.04]),
        )
        assert (homo, lumo) == (1, 2)

    def test_no_electrons(self):
        with pytest.raises(ValueError):
            homo_lumo_gap(np.zeros(3), np.zeros(3))

    def test_no_unoccupied(self):
        with pytest.raises(ValueError):
            homo_lumo_gap(np.array([-1.0]), np.array([2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            homo_lumo_gap(np.zeros(3), np.zeros(4))


class TestScissorShift:
    @pytest.fixture
    def system(self, grid16, rng):
        pos = np.array([[4.8, 4.8, 4.8]])
        species = [get_species("Ti")]
        kb = KBProjectorSet(grid16, pos, species)
        vloc = -1.5 * np.exp(
            -sum((x - 4.8) ** 2 for x in grid16.meshgrid()) / 2.0
        )
        ham = KSHamiltonian(grid16, vloc, kb=kb)
        from repro.qxmd import cg_eigensolve

        wf = WaveFunctionSet.random(grid16, 4, rng)
        cg_eigensolve(ham, wf, ncg=8)
        occ = np.array([2.0, 2.0, 0.0, 0.0])
        return ham, wf, occ

    def test_no_kb_zero_shift(self, grid16, rng):
        ham = KSHamiltonian(grid16, np.zeros(grid16.shape))
        wf = WaveFunctionSet.random(grid16, 3, rng)
        assert scissor_shift(ham, wf, np.array([2.0, 0, 0])) == 0.0

    def test_shift_is_gap_difference(self, system):
        import scipy.linalg as sla

        ham, wf, occ = system
        dsci = scissor_shift(ham, wf, occ)
        ssub = wf.overlap_matrix()
        e_nl = sla.eigh(ham.subspace_matrix(wf), ssub, eigvals_only=True)
        e_loc = sla.eigh(
            ham.without_nonlocal().subspace_matrix(wf), ssub, eigvals_only=True
        )
        expected = (e_nl[2] - e_nl[1]) - (e_loc[2] - e_loc[1])
        assert dsci == pytest.approx(expected)

    def test_shift_finite_and_reasonable(self, system):
        ham, wf, occ = system
        dsci = scissor_shift(ham, wf, occ)
        assert np.isfinite(dsci)
        assert abs(dsci) < 5.0  # a fraction of a hartree, not huge
