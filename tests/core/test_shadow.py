"""Shadow-dynamics ledger tests."""

import pytest

from repro.core import ShadowLedger
from repro.device import SimClock, TransferEngine
from repro.device.spec import PCIE_GEN4


class TestLedger:
    def test_handshake_record(self):
        ledger = ShadowLedger()
        rec = ledger.record_handshake(
            md_step=1, vloc_bytes=1000, occ_count=64, psi_bytes_resident=10 ** 7
        )
        assert rec.bytes_down == 1000 + 8 * 65
        assert rec.bytes_up == 8 * 64
        assert rec.total == rec.bytes_down + rec.bytes_up

    def test_traffic_ratio_small(self):
        ledger = ShadowLedger()
        for step in range(5):
            ledger.record_handshake(step, 1000, 64, psi_bytes_resident=10 ** 8)
        assert ledger.traffic_ratio() < 1e-4

    def test_steady_state_mean(self):
        ledger = ShadowLedger()
        ledger.record_handshake(0, 1000, 10, 10 ** 6)
        ledger.record_handshake(1, 1000, 10, 10 ** 6)
        assert ledger.steady_state_bytes_per_step() == pytest.approx(
            ledger.records[0].total
        )

    def test_empty_ledger(self):
        ledger = ShadowLedger()
        assert ledger.steady_state_bytes_per_step() == 0.0
        assert ledger.traffic_ratio() == 0.0


class TestContract:
    def test_single_upload_allowed(self):
        ledger = ShadowLedger()
        ledger.record_psi_upload(10 ** 8)
        ledger.assert_no_psi_traffic()

    def test_double_upload_rejected(self):
        ledger = ShadowLedger()
        ledger.record_psi_upload(10 ** 8)
        ledger.record_psi_upload(10 ** 8)
        with pytest.raises(AssertionError, match="shadow"):
            ledger.assert_no_psi_traffic()

    def test_foreign_transfers_detected(self):
        engine = TransferEngine(PCIE_GEN4, SimClock())
        ledger = ShadowLedger(engine)
        ledger.record_psi_upload(100, pinned=True)
        engine.h2d(10 ** 6, tag="sneaky_psi_copy")
        with pytest.raises(AssertionError, match="sneaky"):
            ledger.assert_no_psi_traffic()

    def test_transfer_engine_charged(self):
        engine = TransferEngine(PCIE_GEN4, SimClock())
        ledger = ShadowLedger(engine)
        ledger.record_handshake(0, 1000, 8, 10 ** 6, pinned=True)
        assert engine.total_bytes() == ledger.records[0].total
