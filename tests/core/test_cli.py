"""CLI subcommand tests (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.grid == 16
        assert args.steps == 5


class TestInfo:
    def test_info_prints_models(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out
        assert "Polaris" in out


class TestRun:
    def test_short_run(self, capsys):
        code = main(["run", "--steps", "1", "--n-qd", "5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E_band" in out

    def test_run_with_checkpoint_and_restart(self, tmp_path, capsys):
        ckpt = str(tmp_path / "c.npz")
        assert main(["run", "--steps", "1", "--n-qd", "5",
                     "--checkpoint", ckpt]) == 0
        assert main(["run", "--steps", "1", "--n-qd", "5",
                     "--restart", ckpt]) == 0
        out = capsys.readouterr().out
        assert "restarted" in out

    def test_excite_flag(self, capsys):
        assert main(["run", "--steps", "1", "--n-qd", "5", "--excite"]) == 0


class TestScaling:
    def test_weak_only(self, capsys):
        assert main(["scaling", "--mode", "weak"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
        assert "strong" not in out

    def test_both(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "5120" in out


class TestSpectrum:
    def test_spectrum_runs(self, capsys):
        assert main(["spectrum", "--grid", "8", "--steps", "200",
                     "--norb", "3"]) == 0
        out = capsys.readouterr().out
        assert "KS levels" in out
        assert "absorption peaks" in out
