"""Ehrenfest-dynamics driver tests."""

import numpy as np
import pytest

from repro.core.ehrenfest import EhrenfestDynamics
from repro.maxwell import GaussianPulse
from repro.qxmd import SCFConfig, scf_solve


@pytest.fixture(scope="module")
def ground_state(request):
    from repro.grids import Grid3D
    from repro.pseudo import get_species

    grid = Grid3D.cubic(12, 0.6)
    L = grid.lengths[0]
    pos = np.array([[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]])
    sp = [get_species("H"), get_species("H")]
    res = scf_solve(grid, pos, sp, norb=3, config=SCFConfig(nscf=3, ncg=4))
    return grid, pos, sp, res


def make_dynamics(ground_state, laser=None, **kwargs):
    grid, pos, sp, res = ground_state
    defaults = dict(dt_md=1.0, n_qd=10, refresh_potential_every=5)
    defaults.update(kwargs)
    return EhrenfestDynamics(
        grid, pos, sp, res.wf.copy(), res.occupations, laser=laser, **defaults
    )


class TestConstruction:
    def test_validation(self, ground_state):
        with pytest.raises(ValueError):
            make_dynamics(ground_state, dt_md=-1.0)
        with pytest.raises(ValueError):
            make_dynamics(ground_state, n_qd=0)

    def test_occupation_check(self, ground_state):
        grid, pos, sp, res = ground_state
        with pytest.raises(ValueError):
            EhrenfestDynamics(grid, pos, sp, res.wf.copy(), np.ones(5))


class TestDynamics:
    def test_charge_conserved(self, ground_state):
        dyn = make_dynamics(ground_state)
        recs = dyn.run(3)
        for r in recs:
            assert r.electron_count == pytest.approx(2.0, rel=1e-9)

    def test_orbitals_stay_normalized(self, ground_state):
        dyn = make_dynamics(ground_state)
        dyn.run(3)
        assert np.abs(dyn.wf.norms() - 1.0).max() < 1e-9

    def test_ground_state_nearly_stationary(self, ground_state):
        """Without a laser the SCF ground state barely moves the nuclei."""
        dyn = make_dynamics(ground_state)
        x0 = dyn.md_state.positions.copy()
        dyn.run(2)
        drift = np.abs(dyn.md_state.positions - x0).max()
        assert drift < 0.2  # bohr; residual SCF force only

    def test_laser_drives_dipole(self, ground_state):
        laser = GaussianPulse(e0=0.05, omega=0.4, t0=5.0, sigma=3.0)
        quiet = make_dynamics(ground_state)
        driven = make_dynamics(ground_state, laser=laser)
        quiet.run(4)
        driven.run(4)
        d_quiet = np.array([r.dipole for r in quiet.history])
        d_driven = np.array([r.dipole for r in driven.history])
        assert np.abs(d_driven - d_quiet).max() > 1e-5

    def test_time_bookkeeping(self, ground_state):
        dyn = make_dynamics(ground_state)
        dyn.run(3)
        assert dyn.time == pytest.approx(3.0)
        assert [r.step for r in dyn.history] == [1, 2, 3]

    def test_refresh_potential_changes_trajectory(self, ground_state):
        laser = GaussianPulse(e0=0.08, omega=0.4, t0=3.0, sigma=2.0)
        frozen = make_dynamics(ground_state, laser=laser,
                               refresh_potential_every=0)
        live = make_dynamics(ground_state, laser=laser,
                             refresh_potential_every=1)
        frozen.run(2)
        live.run(2)
        assert frozen.wf.max_abs_diff(live.wf) > 1e-10

    def test_negative_steps(self, ground_state):
        dyn = make_dynamics(ground_state)
        with pytest.raises(ValueError):
            dyn.run(-1)
