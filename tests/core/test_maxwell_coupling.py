"""Maxwell-TDDFT lockstep coupling tests."""

import numpy as np
import pytest

from repro.core.maxwell_coupling import CoupledDomain, MaxwellCoupledLFD
from repro.grids import Grid3D
from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
from repro.maxwell import GaussianPulse, VectorPotentialFDTD


DT = 0.05
DZ = 40.0  # CFL: c dt = 6.85 < 40


def make_domain(z, rng, norb=2, dt=DT):
    grid = Grid3D.cubic(8, 0.5)
    wf = WaveFunctionSet.random(grid, norb, rng)
    vloc = 0.2 * rng.standard_normal(grid.shape)
    prop = QDPropagator(wf, vloc, PropagatorConfig(dt=dt))
    return CoupledDomain(
        propagator=prop,
        occupations=np.full(norb, 2.0),
        z_position=z,
        volume=grid.volume,
    )


@pytest.fixture
def coupled(rng):
    pulse = GaussianPulse(e0=0.01, omega=0.4, t0=6.0, sigma=2.0)
    fdtd = VectorPotentialFDTD(nz=128, dz=DZ, dt=DT, source=pulse)
    domains = [make_domain(20 * DZ, rng), make_domain(80 * DZ, rng)]
    return MaxwellCoupledLFD(fdtd, domains)


class TestConstruction:
    def test_lockstep_enforced(self, rng):
        fdtd = VectorPotentialFDTD(nz=64, dz=DZ, dt=DT)
        with pytest.raises(ValueError, match="lockstep"):
            MaxwellCoupledLFD(fdtd, [make_domain(100.0, rng, dt=2 * DT)])

    def test_needs_domains(self):
        fdtd = VectorPotentialFDTD(nz=64, dz=DZ, dt=DT)
        with pytest.raises(ValueError):
            MaxwellCoupledLFD(fdtd, [])

    def test_occupation_shape(self, rng):
        with pytest.raises(ValueError):
            dom = make_domain(0.0, rng)
            CoupledDomain(dom.propagator, np.ones(5), 0.0, 1.0)


class TestLockstep:
    def test_clocks_advance_together(self, coupled):
        coupled.run(10)
        assert coupled.steps_taken == 10
        assert coupled.fdtd.time == pytest.approx(10 * DT)
        for d in coupled.domains:
            assert d.propagator.time == pytest.approx(10 * DT)

    def test_field_history_recording(self, coupled):
        coupled.run(10, record_every=5)
        assert len(coupled.field_history) == 2
        assert coupled.field_history[0].shape == (128,)

    def test_negative_steps(self, coupled):
        with pytest.raises(ValueError):
            coupled.run(-1)


class TestRetardation:
    def test_near_domain_sees_pulse_first(self, rng):
        """The injected pulse reaches the upstream domain earlier."""
        pulse = GaussianPulse(e0=0.02, omega=0.4, t0=4.0, sigma=1.5)
        fdtd = VectorPotentialFDTD(nz=256, dz=DZ, dt=DT, source=pulse)
        near = make_domain(30 * DZ, rng)
        far = make_domain(120 * DZ, rng)
        coupled = MaxwellCoupledLFD(fdtd, [near, far], feedback=False)
        t_near, t_far = None, None
        threshold = 1e-4
        for step in range(1200):
            coupled.step()
            a = coupled.sampled_fields()
            if t_near is None and abs(a[0]) > threshold:
                t_near = step
            if t_far is None and abs(a[1]) > threshold:
                t_far = step
            if t_far is not None:
                break
        assert t_near is not None and t_far is not None
        delay = coupled.arrival_delay_cells(near.z_position, far.z_position)
        assert (t_far - t_near) == pytest.approx(delay, rel=0.2)

    def test_norms_conserved_through_coupling(self, coupled):
        coupled.run(50)
        for d in coupled.domains:
            assert np.abs(d.propagator.wf.norms() - 1.0).max() < 1e-10


class TestFeedback:
    def test_feedback_changes_field(self, rng):
        """Domains with feedback reshape the field vs the ablation."""
        def build(feedback):
            pulse = GaussianPulse(e0=0.05, omega=0.4, t0=4.0, sigma=1.5)
            fdtd = VectorPotentialFDTD(nz=96, dz=DZ, dt=DT, source=pulse)
            d = make_domain(40 * DZ, np.random.default_rng(0), norb=3)
            return MaxwellCoupledLFD(
                fdtd, [d], feedback=feedback, current_scale=50.0
            )

        on = build(True)
        off = build(False)
        for _ in range(400):
            on.step()
            off.step()
        assert np.abs(on.fdtd.a - off.fdtd.a).max() > 1e-8

    def test_no_feedback_matches_free_fdtd(self, rng):
        pulse = GaussianPulse(e0=0.02, omega=0.4, t0=4.0, sigma=1.5)
        fdtd_a = VectorPotentialFDTD(nz=64, dz=DZ, dt=DT, source=pulse)
        fdtd_b = VectorPotentialFDTD(nz=64, dz=DZ, dt=DT, source=pulse)
        coupled = MaxwellCoupledLFD(
            fdtd_a, [make_domain(30 * DZ, rng)], feedback=False
        )
        for _ in range(100):
            coupled.step()
            fdtd_b.step()
        assert np.abs(fdtd_a.a - fdtd_b.a).max() < 1e-14
