"""Multiple time-scale splitting tests."""

import pytest

from repro.constants import AUT_FS
from repro.core import TimescaleSplit


class TestSplit:
    def test_dt_qd(self):
        ts = TimescaleSplit(dt_md=20.0, n_qd=100)
        assert ts.dt_qd == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimescaleSplit(dt_md=0.0, n_qd=10)
        with pytest.raises(ValueError):
            TimescaleSplit(dt_md=1.0, n_qd=0)

    def test_from_physical_paper_scales(self):
        """Delta_MD ~ fs, Delta_QD ~ as gives N_QD ~ 10^2-10^3 (paper)."""
        ts = TimescaleSplit.from_physical(dt_md_fs=1.0, dt_qd_as=2.0)
        assert 100 <= ts.n_qd <= 1000
        assert ts.dt_md == pytest.approx(1.0 / AUT_FS)
        # The realized dt_qd exactly tiles the MD step.
        assert ts.n_qd * ts.dt_qd == pytest.approx(ts.dt_md)

    def test_from_physical_validation(self):
        with pytest.raises(ValueError):
            TimescaleSplit.from_physical(-1.0, 1.0)

    def test_midpoints(self):
        ts = TimescaleSplit(dt_md=1.0, n_qd=4)
        assert ts.midpoints() == pytest.approx([0.125, 0.375, 0.625, 0.875])

    def test_amortization(self):
        assert TimescaleSplit(dt_md=1.0, n_qd=500).amortization_ratio() == 500.0
