"""SwarmState and step_swarm unit tests."""

import numpy as np
import pytest

from repro.ensemble import SwarmState, model_path, step_swarm, trajectory_rng
from repro.parallel.executor import chunk_rng
from repro.qxmd.sh_kernels import HopPolicy


class TestSwarmState:
    def test_on_state(self):
        swarm = SwarmState.on_state(5, 3, 2)
        assert swarm.ntraj == 5 and swarm.nstates == 3
        assert np.all(swarm.active == 2)
        assert np.allclose(swarm.populations[:, 2], 1.0)
        assert np.array_equal(swarm.ke_factor, np.ones(5))
        assert np.array_equal(swarm.hop_counts, np.zeros(5, dtype=np.int64))

    def test_per_row_normalization(self):
        amps = np.array([[3.0, 4.0], [1.0, 0.0], [0.0, 2.0]], dtype=complex)
        swarm = SwarmState(amplitudes=amps, active=np.array([0, 0, 1]))
        norms = np.sqrt(np.sum(np.abs(swarm.amplitudes) ** 2, axis=1))
        assert np.allclose(norms, 1.0)

    def test_zero_rows_rejected_by_name(self):
        """Degenerate (zero-amplitude) rows raise, naming the rows, instead
        of being silently buried by a global normalization."""
        amps = np.ones((4, 3), dtype=complex)
        amps[1] = 0.0
        amps[3] = 0.0
        with pytest.raises(ValueError, match=r"\[1, 3\]"):
            SwarmState(amplitudes=amps, active=np.zeros(4, dtype=int))

    def test_stacked_shape_required(self):
        with pytest.raises(ValueError, match="ntraj, nstates"):
            SwarmState(amplitudes=np.ones(3, dtype=complex),
                       active=np.zeros(1, dtype=int))

    def test_active_out_of_range(self):
        with pytest.raises(ValueError, match="active"):
            SwarmState(amplitudes=np.ones((2, 3), dtype=complex),
                       active=np.array([0, 3]))

    def test_bad_aux_shapes(self):
        amps = np.ones((2, 3), dtype=complex)
        with pytest.raises(ValueError, match="ke_factor"):
            SwarmState(amplitudes=amps, active=np.zeros(2, dtype=int),
                       ke_factor=np.ones(3))
        with pytest.raises(ValueError, match="hop_counts"):
            SwarmState(amplitudes=amps, active=np.zeros(2, dtype=int),
                       hop_counts=np.zeros(5, dtype=int))

    def test_extract_single_carrier(self):
        swarm = SwarmState.on_state(3, 4, 1)
        state = swarm.extract(2)
        assert state.active == 1
        assert np.array_equal(state.amplitudes, swarm.amplitudes[2])


class TestTrajectoryRng:
    def test_is_the_executor_chunk_stream(self):
        """The (seed, index) stream is exactly the PR-4 executor's
        chunk_rng(seed, 0, index) -- placement independence by scheme."""
        a = trajectory_rng(123, 7).random(5)
        b = chunk_rng(123, 0, 7).random(5)
        assert np.array_equal(a, b)

    def test_streams_distinct_per_index_and_seed(self):
        draws = {
            (s, i): trajectory_rng(s, i).random()
            for s in (1, 2) for i in range(4)
        }
        assert len(set(draws.values())) == len(draws)


class TestStepSwarm:
    def test_accepted_mask_matches_hop_counts(self):
        path = model_path(nsteps=20, nstates=4, dt=1.0, seed=11,
                          coupling=0.12)
        swarm = SwarmState.on_state(8, 4, 3)
        rngs = [trajectory_rng(99, t) for t in range(8)]
        total = np.zeros(8, dtype=np.int64)
        for s in range(path.nsteps):
            xi = np.array([rng.random() for rng in rngs])
            accepted = step_swarm(swarm, path.energies[s], path.nac[s],
                                  path.dt, path.kinetic[s] * swarm.ke_factor,
                                  xi, HopPolicy())
            total += accepted
        assert np.array_equal(total, swarm.hop_counts)
        assert int(total.sum()) > 0

    def test_cpa_never_touches_ke_factor(self):
        path = model_path(nsteps=15, nstates=4, dt=1.0, seed=11,
                          coupling=0.12)
        swarm = SwarmState.on_state(6, 4, 3)
        rngs = [trajectory_rng(99, t) for t in range(6)]
        for s in range(path.nsteps):
            xi = np.array([rng.random() for rng in rngs])
            step_swarm(swarm, path.energies[s], path.nac[s], path.dt,
                       path.kinetic[s] * swarm.ke_factor, xi,
                       HopPolicy.cpa())
        assert np.array_equal(swarm.ke_factor, np.ones(6))
        assert int(swarm.hop_counts.sum()) > 0

    def test_rows_keep_unit_norm(self):
        path = model_path(nsteps=10, nstates=3, dt=1.0, seed=5,
                          coupling=0.1)
        swarm = SwarmState.on_state(4, 3, 2)
        rngs = [trajectory_rng(7, t) for t in range(4)]
        for s in range(path.nsteps):
            xi = np.array([rng.random() for rng in rngs])
            step_swarm(swarm, path.energies[s], path.nac[s], path.dt,
                       path.kinetic[s] * swarm.ke_factor, xi, HopPolicy())
        norms = np.sqrt(np.sum(np.abs(swarm.amplitudes) ** 2, axis=1))
        assert np.allclose(norms, 1.0, atol=1e-12)
