"""Golden-ensemble regression test for the trajectory-swarm engine.

A fixed-seed 32-trajectory swarm (synthetic avoided-crossing path, EDC
decoherence on so amplitudes, hops *and* the decoherence kernel all
shape the result) is pinned against a committed ``.npz`` of its per-step
population/coherence statistics.  Any unintended change to the
surface-hopping numerics -- kernels, RNG streams, batching, statistics
-- shows up here as a diff.

On the platform that generated the golden file the run is bit-exact
(set ``REPRO_GOLDEN_EXACT=1`` to enforce that); across BLAS builds and
architectures the default gate is a ``1e-10`` absolute tolerance,
mirroring ``tests/integration/test_golden_trajectory.py``.

Regenerate (after a *deliberate* numerics change) with::

    PYTHONPATH=src:. python -m tests.ensemble.test_golden_ensemble
"""

import os
import pathlib

import numpy as np

from repro.ensemble import EnsembleConfig, model_path, run_ensemble
from repro.qxmd.sh_kernels import HopPolicy

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "data"
    / "golden_ensemble.npz"
)

#: Cross-platform gate; REPRO_GOLDEN_EXACT=1 demands bit-identity.
GOLDEN_ATOL = 1e-10

NTRAJ = 32


def golden_run():
    """The pinned scenario; returns arrays keyed like the golden file."""
    path = model_path(nsteps=30, nstates=4, dt=1.0, seed=11, coupling=0.12)
    config = EnsembleConfig(
        ntraj=NTRAJ,
        seed=515,
        batch_size=8,
        policy=HopPolicy(dec_correction="edc", edc_parameter=0.3),
    )
    result = run_ensemble(path, config)
    stats = result.stats
    return {
        "pop_mean": stats.pop_mean,
        "pop_stderr": stats.pop_stderr,
        "active_counts": stats.active_counts.astype(float),
        "coherence_mean": stats.coherence_mean,
        "coherence_stderr": stats.coherence_stderr,
        "hops": result.hops.astype(float),
        "ke_factor": result.ke_factor,
        "final_active": result.final_active.astype(float),
    }


def regenerate(path=GOLDEN_PATH):
    """Write a fresh golden file (deliberate-change workflow)."""
    data = golden_run()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **data)
    return path, data


class TestGoldenEnsemble:
    def test_matches_committed_golden(self):
        assert GOLDEN_PATH.exists(), (
            f"golden file missing: {GOLDEN_PATH}; regenerate with "
            f"python -m tests.ensemble.test_golden_ensemble"
        )
        golden = np.load(GOLDEN_PATH)
        current = golden_run()
        assert set(golden.files) == set(current)
        exact = os.environ.get("REPRO_GOLDEN_EXACT") == "1"
        for key in golden.files:
            want, got = golden[key], current[key]
            assert want.shape == got.shape, key
            if exact:
                assert np.array_equal(want, got), f"{key} not bit-exact"
            else:
                diff = np.max(np.abs(want - got)) if want.size else 0.0
                assert diff <= GOLDEN_ATOL, (
                    f"{key}: max|diff| = {diff:.3e} > {GOLDEN_ATOL}"
                )

    def test_scenario_is_alive(self):
        """The pinned swarm actually hops and decoheres -- an inert
        golden file would regress nothing."""
        current = golden_run()
        assert current["hops"].sum() > 0
        assert current["pop_stderr"].max() > 0
        assert current["coherence_mean"].max() > 0.05

    def test_run_is_deterministic(self):
        a, b = golden_run(), golden_run()
        for key in a:
            assert np.array_equal(a[key], b[key]), key


if __name__ == "__main__":
    p, data = regenerate()
    print(f"golden ensemble written to {p}")
    for key, val in data.items():
        print(f"  {key}: shape {val.shape}")
