"""EnsembleRun engine tests: rounds, checkpoint/resume, supervision."""

import dataclasses

import numpy as np
import pytest

from repro.ensemble import (
    EnsembleConfig,
    EnsembleRun,
    model_path,
    resolve_batch_size,
    run_ensemble,
)
from repro.qxmd.sh_kernels import HopPolicy
from repro.resilience.checkpointing import (
    CheckpointCorruptError,
    restore_newest_verified,
)
from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

PATH = model_path(nsteps=20, nstates=4, dt=1.0, seed=11, coupling=0.12)


def reference_result():
    return run_ensemble(PATH, EnsembleConfig(ntraj=16, seed=44, batch_size=4))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleConfig(ntraj=0)
        with pytest.raises(ValueError):
            EnsembleConfig(substeps=0)
        with pytest.raises(ValueError):
            EnsembleConfig(batch_size=0)
        with pytest.raises(ValueError):
            EnsembleConfig(istate=-1)

    def test_istate_range_checked_against_path(self):
        with pytest.raises(ValueError, match="istate"):
            EnsembleRun(PATH, EnsembleConfig(istate=7))

    def test_resolve_batch_size_explicit(self):
        assert resolve_batch_size(EnsembleConfig(batch_size=5)) == 5

    def test_resolve_batch_size_from_profile_default(self):
        # With no tuning cache applied the profile falls back to the
        # canonical default table.
        assert resolve_batch_size(EnsembleConfig()) == 32


class TestRounds:
    def test_round_records_and_completion(self):
        with EnsembleRun(PATH,
                         EnsembleConfig(ntraj=16, seed=44, batch_size=4),
                         round_size=3) as run:
            assert run.rounds_remaining == 2   # ceil(4 batches / 3)
            rec1 = run.md_step()
            assert rec1.batches_run == 3
            assert rec1.batches_done == 3
            assert rec1.batches_total == 4
            assert not run.complete
            rec2 = run.md_step()
            assert rec2.batches_run == 1
            assert run.complete
            assert run.history == [rec1, rec2]

    def test_noop_round_after_completion(self):
        """The supervisable contract: md_step past completion is a no-op
        that still advances step_count (so segment accounting works)."""
        with EnsembleRun(PATH, EnsembleConfig(ntraj=8, seed=44,
                                              batch_size=8)) as run:
            run.run()
            steps = run.step_count
            rec = run.md_step()
            assert rec.batches_run == 0
            assert run.step_count == steps + 1
            assert np.array_equal(run.result().hops,
                                  reference_result().hops[:8])

    def test_result_raises_while_incomplete(self):
        with EnsembleRun(PATH, EnsembleConfig(ntraj=16, seed=44,
                                              batch_size=4)) as run:
            with pytest.raises(RuntimeError, match="incomplete"):
                run.result()

    def test_run_wrapper_equals_manual_rounds(self):
        ref = reference_result()
        with EnsembleRun(PATH, EnsembleConfig(ntraj=16, seed=44,
                                              batch_size=4),
                         round_size=1) as run:
            while not run.complete:
                run.md_step()
            got = run.result()
        assert np.array_equal(ref.populations, got.populations)
        assert np.array_equal(ref.hops, got.hops)


class TestCheckpointResume:
    def make_run(self, **kwargs):
        return EnsembleRun(
            PATH, EnsembleConfig(ntraj=16, seed=44, batch_size=4),
            round_size=1, **kwargs,
        )

    def test_save_load_roundtrip_mid_run(self, tmp_path):
        ref = reference_result()
        ck = tmp_path / "partial.npz"
        with self.make_run() as run:
            run.md_step()
            run.md_step()
            run.save_state(ck)
        with self.make_run() as resumed:
            resumed.load_state(ck)
            assert int(np.count_nonzero(resumed.done)) == 2
            got = resumed.run()
        assert np.array_equal(ref.populations, got.populations)
        assert np.array_equal(ref.actives, got.actives)
        assert np.array_equal(ref.hops, got.hops)
        assert np.array_equal(ref.final_amplitudes, got.final_amplitudes)

    def test_fingerprint_mismatch_raises_corrupt(self, tmp_path):
        ck = tmp_path / "partial.npz"
        with self.make_run() as run:
            run.md_step()
            run.save_state(ck)
        other = EnsembleRun(PATH, EnsembleConfig(ntraj=16, seed=45,
                                                 batch_size=4))
        with pytest.raises(CheckpointCorruptError, match="fingerprint"):
            other.load_state(ck)
        other.close()

    def test_policy_in_fingerprint(self, tmp_path):
        ck = tmp_path / "partial.npz"
        with self.make_run() as run:
            run.md_step()
            run.save_state(ck)
        other = EnsembleRun(
            PATH,
            EnsembleConfig(ntraj=16, seed=44, batch_size=4,
                           policy=HopPolicy(dec_correction="edc")),
        )
        with pytest.raises(CheckpointCorruptError, match="fingerprint"):
            other.load_state(ck)
        other.close()

    def test_shape_mismatch_raises_corrupt(self, tmp_path):
        """Same fingerprint fields but a different path length is caught
        by the shape gate before any state is spliced in."""
        ck = tmp_path / "partial.npz"
        with self.make_run() as run:
            run.md_step()
            run.save_state(ck)
        short = dataclasses.replace(
            PATH, energies=PATH.energies[:10], nac=PATH.nac[:10],
            kinetic=PATH.kinetic[:10],
        )
        other = EnsembleRun(short, EnsembleConfig(ntraj=16, seed=44,
                                                  batch_size=4))
        with pytest.raises(CheckpointCorruptError):
            other.load_state(ck)
        other.close()


class TestSupervised:
    def test_supervised_run_completes(self, tmp_path):
        ref = reference_result()
        with self.make_supervised(tmp_path) as run:
            sup = RunSupervisor(run, tmp_path / "ck",
                                SupervisorConfig(checkpoint_every=1))
            sup.run(run.rounds_remaining)
            got = run.result()
        assert np.array_equal(ref.populations, got.populations)
        assert (tmp_path / "ck").exists()

    def test_crash_resume_through_supervisor(self, tmp_path):
        """Partial supervised run, fresh process simulated by a fresh
        EnsembleRun: restore the newest checkpoint *then* supervise the
        remainder -- bitwise identical to an uninterrupted run."""
        ref = reference_result()
        ckdir = tmp_path / "ck"
        with self.make_supervised(tmp_path) as run:
            sup = RunSupervisor(run, ckdir,
                                SupervisorConfig(checkpoint_every=1))
            sup.run(2)   # 2 of 4 rounds, then "crash"
            assert not run.complete
        with self.make_supervised(tmp_path) as fresh:
            restore_newest_verified(fresh, ckdir)
            assert int(np.count_nonzero(fresh.done)) == 2
            sup = RunSupervisor(fresh, ckdir,
                                SupervisorConfig(checkpoint_every=1))
            sup.run(fresh.rounds_remaining)
            got = fresh.result()
        assert np.array_equal(ref.populations, got.populations)
        assert np.array_equal(ref.actives, got.actives)
        assert np.array_equal(ref.hops, got.hops)
        assert np.array_equal(ref.ke_factor, got.ke_factor)

    def make_supervised(self, tmp_path):
        return EnsembleRun(
            PATH, EnsembleConfig(ntraj=16, seed=44, batch_size=4),
            round_size=1,
        )
