"""`repro-mesh ensemble` subcommand tests (invoked in-process)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["ensemble"])
        assert args.ntraj == 32
        assert args.nsteps == 50
        assert args.coupling == pytest.approx(0.08)
        assert args.hop_rescale == "energy"
        assert args.hop_reject == "keep"
        assert args.decoherence == "none"
        assert args.edc_parameter == pytest.approx(0.1)
        assert args.checkpoint_every == 0

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ensemble", "--hop-rescale", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ensemble", "--decoherence", "sdm"])


SMALL = ["ensemble", "--ntraj", "8", "--nsteps", "10", "--batch-size", "4",
         "--coupling", "0.12", "--path-seed", "11", "--seed", "44"]


class TestRun:
    def test_small_run_prints_stats(self, capsys):
        assert main(SMALL) == 0
        out = capsys.readouterr().out
        assert "trajectories" in out
        assert "total hops:" in out
        assert "active" in out

    def test_default_demo_hops(self, capsys):
        """The no-flag invocation must show live hop statistics."""
        assert main(["ensemble"]) == 0
        out = capsys.readouterr().out
        total = int(out.split("total hops:")[1].split()[0])
        assert total > 0

    def test_out_npz(self, tmp_path, capsys):
        out_path = tmp_path / "stats.npz"
        assert main(SMALL + ["--out", str(out_path)]) == 0
        with np.load(out_path) as archive:
            assert archive["pop_mean"].shape == (10, 4)
            assert archive["pop_stderr"].shape == (10, 4)
            assert archive["active_counts"].shape == (10, 4)
            assert archive["coherence_mean"].shape == (10,)
            assert archive["hops"].shape == (8,)

    def test_policy_flags_flow_through(self, capsys):
        assert main(SMALL + ["--hop-rescale", "none",
                             "--decoherence", "edc",
                             "--edc-parameter", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "cpa" in out or "none" in out

    def test_thread_backend(self, capsys):
        assert main(SMALL + ["--backend", "thread", "--workers", "2"]) == 0
        assert "total hops:" in capsys.readouterr().out


class TestCheckpointResume:
    def test_stop_and_restart(self, tmp_path, capsys):
        """Supervised partial run stops early; --restart replays only the
        missing batches and lands on the uninterrupted answer."""
        ckdir = str(tmp_path / "ck")
        base = SMALL + ["--checkpoint-every", "1", "--checkpoint-dir", ckdir,
                        "--round-size", "1"]
        ref = tmp_path / "ref.npz"
        resumed = tmp_path / "resumed.npz"

        assert main(SMALL + ["--out", str(ref)]) == 0
        assert main(base + ["--stop-after", "1"]) == 0
        out = capsys.readouterr().out
        assert "stopped early: 1/2 batches" in out

        assert main(base + ["--restart", ckdir, "--out", str(resumed)]) == 0
        out = capsys.readouterr().out
        assert "total hops:" in out

        with np.load(ref) as a, np.load(resumed) as b:
            for key in ("pop_mean", "pop_stderr", "active_counts", "hops"):
                assert np.array_equal(a[key], b[key]), key

    def test_restart_with_empty_dir_fails(self, tmp_path, capsys):
        code = main(SMALL + ["--restart", str(tmp_path / "nowhere")])
        assert code != 0
