"""The two-tier ensemble validation harness.

Exact tier: every trajectory extracted from a batched swarm must be
**bit-identical** to a standalone :class:`~repro.qxmd.surface_hopping.FSSH`
loop on the same ``(seed, index)`` RNG stream -- across hop policies,
batch sizes (including primes that straggle the chunking) and all three
executor backends.

Statistical tier: ensemble-level observables from the batched engine
must match a plain serial loop of standalone runs exactly at the same
seed (same streams => same numbers), and two *independently seeded*
ensembles must agree statistically -- two-sample KS on the hop-count
distribution, stderr overlap on the active-fraction traces.
"""

import dataclasses

import numpy as np
import pytest

from repro.ensemble import (
    EnsembleConfig,
    compute_stats,
    ks_test,
    model_path,
    run_ensemble,
    run_reference_trajectory,
    stderr_overlap,
)
from repro.qxmd.sh_kernels import HopPolicy

#: A lively path: avoided crossings narrow enough that every policy hops.
PATH = model_path(nsteps=40, nstates=4, dt=1.0, seed=11, coupling=0.12)

#: Kinetic energy cut to 1% so upward hops are frustrated (policy branches).
LOWKE_PATH = dataclasses.replace(PATH, kinetic=PATH.kinetic * 0.01)

SEED = 99

POLICIES = {
    "energy-keep": HopPolicy(),
    "energy-reverse": HopPolicy(hop_reject="reverse"),
    "energy-edc": HopPolicy(dec_correction="edc", edc_parameter=0.3),
    "augment": HopPolicy(hop_rescale="augment"),
    "cpa": HopPolicy.cpa(),
}


def loop_ensemble(path, config):
    """The trivial reference: a Python loop of standalone FSSH runs."""
    istate = (config.istate if config.istate is not None
              else path.nstates - 1)
    traces = [
        run_reference_trajectory(path, i, config.seed, istate,
                                 config.substeps, config.policy)
        for i in range(config.ntraj)
    ]
    populations = np.stack([t.populations for t in traces], axis=1)
    actives = np.stack([t.actives for t in traces], axis=1)
    hops = np.array([t.hops for t in traces], dtype=np.int64)
    ke_factor = np.array([t.ke_factor for t in traces])
    final_amps = np.stack([t.amplitudes for t in traces])
    return populations, actives, hops, ke_factor, final_amps


def assert_trajectory_bitwise(result, path, config, index):
    istate = (config.istate if config.istate is not None
              else path.nstates - 1)
    ref = run_reference_trajectory(path, index, config.seed, istate,
                                   config.substeps, config.policy)
    assert np.array_equal(result.populations[:, index, :], ref.populations)
    assert np.array_equal(result.actives[:, index], ref.actives)
    assert np.array_equal(result.final_amplitudes[index], ref.amplitudes)
    assert int(result.hops[index]) == ref.hops
    assert float(result.ke_factor[index]) == ref.ke_factor


class TestExactTier:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_trajectory_bit_identical(self, name):
        """Batched swarm row == standalone FSSH, for every hop policy."""
        config = EnsembleConfig(ntraj=13, seed=SEED, batch_size=5,
                                policy=POLICIES[name])
        result = run_ensemble(PATH, config)
        assert int(result.hops.sum()) > 0, "inert path proves nothing"
        for i in range(config.ntraj):
            assert_trajectory_bitwise(result, PATH, config, i)

    def test_frustrated_hops_bit_identical(self):
        """Exact tier holds where the energy budget frustrates hops."""
        for policy in (HopPolicy(hop_reject="keep"),
                       HopPolicy(hop_reject="reverse")):
            config = EnsembleConfig(ntraj=9, seed=SEED, batch_size=4,
                                    policy=policy)
            result = run_ensemble(LOWKE_PATH, config)
            for i in range(config.ntraj):
                assert_trajectory_bitwise(result, LOWKE_PATH, config, i)

    def test_frustrated_hops_actually_occur(self):
        """The low-kinetic path really exercises the frustrated branch."""
        from repro.ensemble.swarm import trajectory_rng
        from repro.qxmd import FSSH, SurfaceHoppingState

        rejected = 0
        for i in range(9):
            fssh = FSSH(trajectory_rng(SEED, i))
            state = SurfaceHoppingState.on_state(LOWKE_PATH.nstates,
                                                 LOWKE_PATH.nstates - 1)
            ke_factor = 1.0
            for s in range(LOWKE_PATH.nsteps):
                _, scale = fssh.step(state, LOWKE_PATH.energies[s],
                                     LOWKE_PATH.nac[s], LOWKE_PATH.dt,
                                     LOWKE_PATH.kinetic[s] * ke_factor)
                if scale != 1.0:
                    ke_factor *= scale * scale
            rejected += sum(1 for e in fssh.events if not e.accepted)
        assert rejected > 0

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 13, 64])
    def test_batch_size_invariance(self, batch_size):
        """Prime, unit and oversized batches all give identical traces."""
        base = run_ensemble(
            PATH, EnsembleConfig(ntraj=13, seed=SEED, batch_size=13)
        )
        other = run_ensemble(
            PATH, EnsembleConfig(ntraj=13, seed=SEED, batch_size=batch_size)
        )
        assert np.array_equal(base.populations, other.populations)
        assert np.array_equal(base.actives, other.actives)
        assert np.array_equal(base.hops, other.hops)
        assert np.array_equal(base.final_amplitudes, other.final_amplitudes)
        assert np.array_equal(base.ke_factor, other.ke_factor)

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 3), ("process", 2),
    ])
    def test_backend_bitwise_equivalence(self, backend, workers):
        """serial == thread == process, bit for bit."""
        config = EnsembleConfig(ntraj=12, seed=SEED, batch_size=3)
        small = model_path(nsteps=15, nstates=4, dt=1.0, seed=11,
                           coupling=0.12)
        base = run_ensemble(small, config, backend="serial")
        got = run_ensemble(small, config, backend=backend, workers=workers)
        assert np.array_equal(base.populations, got.populations)
        assert np.array_equal(base.actives, got.actives)
        assert np.array_equal(base.hops, got.hops)
        assert np.array_equal(base.final_amplitudes, got.final_amplitudes)
        assert np.array_equal(base.ke_factor, got.ke_factor)


class TestStatisticalTier:
    def test_batched_matches_serial_loop_exactly(self):
        """Same seed => the batched engine and a plain loop of standalone
        runs produce the *same* ensemble: mean traces and hop-count
        histogram equal exactly, not just statistically."""
        config = EnsembleConfig(ntraj=24, seed=SEED, batch_size=7)
        result = run_ensemble(PATH, config)
        pops, actives, hops, ke, amps = loop_ensemble(PATH, config)
        assert np.array_equal(result.populations, pops)
        assert np.array_equal(result.actives, actives)
        assert np.array_equal(result.hops, hops)
        assert np.array_equal(result.ke_factor, ke)
        assert np.array_equal(result.final_amplitudes, amps)
        ref_stats = compute_stats(pops, actives)
        assert np.array_equal(result.stats.pop_mean, ref_stats.pop_mean)
        assert np.array_equal(result.stats.pop_stderr, ref_stats.pop_stderr)
        assert np.array_equal(result.stats.active_counts,
                              ref_stats.active_counts)
        assert np.array_equal(
            np.bincount(result.hops, minlength=8),
            np.bincount(hops, minlength=8),
        )

    def test_independent_seeds_agree_statistically(self):
        """Two disjoint-seed ensembles sample the same distribution:
        KS on hop counts does not reject, active-fraction traces overlap
        within combined binomial standard errors."""
        a = run_ensemble(PATH, EnsembleConfig(ntraj=128, seed=1,
                                              batch_size=32))
        b = run_ensemble(PATH, EnsembleConfig(ntraj=128, seed=2,
                                              batch_size=32))
        d, p = ks_test(a.hops, b.hops)
        assert p > 0.05, f"KS rejected same-distribution hops: d={d}, p={p}"
        n = 128.0
        se_a = np.sqrt(a.stats.active_fraction
                       * (1 - a.stats.active_fraction) / n)
        se_b = np.sqrt(b.stats.active_fraction
                       * (1 - b.stats.active_fraction) / n)
        assert stderr_overlap(a.stats.active_fraction, se_a,
                              b.stats.active_fraction, se_b, nsigma=4.0)

    def test_different_seeds_differ_somewhere(self):
        """Sanity: the two ensembles are not secretly the same numbers."""
        a = run_ensemble(PATH, EnsembleConfig(ntraj=16, seed=1))
        b = run_ensemble(PATH, EnsembleConfig(ntraj=16, seed=2))
        assert not np.array_equal(a.actives, b.actives)
