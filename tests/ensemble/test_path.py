"""ClassicalPath container, the synthetic model path, and sim harvesting."""

import numpy as np
import pytest

from repro.ensemble import (
    ClassicalPath,
    EnsembleConfig,
    model_path,
    path_from_simulation,
    run_ensemble,
)


class TestClassicalPath:
    def test_properties(self):
        path = model_path(nsteps=12, nstates=3)
        assert path.nsteps == 12
        assert path.nstates == 3
        assert path.energies.shape == (12, 3)
        assert path.nac.shape == (12, 3, 3)
        assert path.kinetic.shape == (12,)

    def test_validation(self):
        e = np.zeros((4, 3))
        nac = np.zeros((4, 3, 3), dtype=complex)
        ke = np.ones(4)
        with pytest.raises(ValueError, match="nsteps, nstates"):
            ClassicalPath(energies=np.zeros(4), nac=nac, kinetic=ke, dt=1.0)
        with pytest.raises(ValueError, match="nac"):
            ClassicalPath(energies=e, nac=np.zeros((4, 2, 2)), kinetic=ke,
                          dt=1.0)
        with pytest.raises(ValueError, match="kinetic"):
            ClassicalPath(energies=e, nac=nac, kinetic=np.ones(3), dt=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            ClassicalPath(energies=e, nac=nac, kinetic=-ke, dt=1.0)
        with pytest.raises(ValueError, match="dt"):
            ClassicalPath(energies=e, nac=nac, kinetic=ke, dt=0.0)
        with pytest.raises(ValueError, match=">= 2 states"):
            ClassicalPath(energies=np.zeros((4, 1)),
                          nac=np.zeros((4, 1, 1)), kinetic=ke, dt=1.0)


class TestModelPath:
    def test_deterministic(self):
        a = model_path(nsteps=20, nstates=4, seed=3)
        b = model_path(nsteps=20, nstates=4, seed=3)
        assert np.array_equal(a.energies, b.energies)
        assert np.array_equal(a.nac, b.nac)
        assert np.array_equal(a.kinetic, b.kinetic)

    def test_seed_matters(self):
        a = model_path(nsteps=20, nstates=4, seed=3)
        b = model_path(nsteps=20, nstates=4, seed=4)
        assert not np.array_equal(a.nac, b.nac)

    def test_nac_antisymmetric_real(self):
        path = model_path(nsteps=25, nstates=5, seed=9)
        assert np.allclose(path.nac.imag, 0.0)
        assert np.allclose(path.nac, -np.swapaxes(path.nac, 1, 2))

    def test_kinetic_positive(self):
        path = model_path(nsteps=400, nstates=3, seed=1)
        assert np.all(path.kinetic > 0)

    def test_coupling_scales_nac(self):
        weak = model_path(nsteps=10, nstates=3, seed=2, coupling=0.01)
        strong = model_path(nsteps=10, nstates=3, seed=2, coupling=0.1)
        assert np.allclose(strong.nac, 10.0 * weak.nac)


class TestPathFromSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        from repro.core import DCMESHConfig, DCMESHSimulation, TimescaleSplit
        from repro.grids import Grid3D
        from repro.pseudo import get_species

        grid = Grid3D((12, 12, 12), (0.6, 0.6, 0.6))
        pos = np.array([[1.8, 3.6, 3.6], [5.4, 3.6, 3.6]])
        species = [get_species("O"), get_species("O")]
        config = DCMESHConfig(
            timescale=TimescaleSplit(dt_md=2.0, n_qd=5),
            nscf=2, ncg=2, norb_extra=2, seed=13,
        )
        return DCMESHSimulation(grid, (2, 1, 1), pos, species,
                                config=config, buffer_width=3)

    def test_harvest_and_run(self, sim):
        """Harvest a 2-step path from a live sim and relax a swarm on it
        (the CPA sampling workflow end to end)."""
        path = path_from_simulation(sim, nsteps=2, nstates=3)
        assert path.nsteps == 2 and path.nstates == 3
        assert path.dt == sim.config.timescale.dt_md
        assert np.all(path.kinetic >= 0)
        # NAC blocks are anti-Hermitian up to the finite-difference error.
        skew = path.nac + np.conj(np.swapaxes(path.nac, 1, 2))
        assert np.max(np.abs(skew)) < 1e-6
        result = run_ensemble(path, EnsembleConfig(ntraj=4, seed=3,
                                                   batch_size=2))
        assert result.populations.shape == (2, 4, 3)

    def test_nsteps_validated(self, sim):
        with pytest.raises(ValueError, match="nsteps"):
            path_from_simulation(sim, nsteps=0, nstates=3)

    def test_nstates_capped_by_orbitals(self, sim):
        with pytest.raises(ValueError, match="orbitals"):
            path_from_simulation(sim, nsteps=1, nstates=99)
