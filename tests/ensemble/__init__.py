"""Trajectory-ensemble engine tests (exact + statistical validation)."""
