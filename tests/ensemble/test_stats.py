"""Ensemble statistics and the self-contained two-sample tests."""

import numpy as np
import pytest

from repro.ensemble import (
    compute_stats,
    ks_pvalue,
    ks_statistic,
    ks_test,
    stderr_overlap,
)


class TestComputeStats:
    def test_hand_example(self):
        # 1 step, 2 trajectories, 2 states.
        pops = np.array([[[1.0, 0.0], [0.5, 0.5]]])
        actives = np.array([[0, 1]])
        s = compute_stats(pops, actives)
        assert s.ntraj == 2
        assert np.allclose(s.pop_mean, [[0.75, 0.25]])
        # sample std (ddof=1) of {1.0, 0.5} is sqrt(0.125); stderr /= sqrt(2)
        assert np.allclose(s.pop_stderr, np.sqrt(0.125) / np.sqrt(2))
        assert np.array_equal(s.active_counts, [[1, 1]])
        assert np.allclose(s.active_fraction, [[0.5, 0.5]])
        # coherence: 1 - (1^2 + 0^2) = 0 and 1 - 0.5 = 0.5 -> mean 0.25
        assert np.allclose(s.coherence_mean, [0.25])

    def test_single_trajectory_zero_stderr(self):
        pops = np.random.default_rng(0).dirichlet(np.ones(3), size=(5, 1))
        actives = np.zeros((5, 1), dtype=int)
        s = compute_stats(pops, actives)
        assert np.all(s.pop_stderr == 0.0)
        assert np.all(s.coherence_stderr == 0.0)

    def test_pure_state_coherence_zero(self):
        pops = np.zeros((3, 4, 2))
        pops[:, :, 1] = 1.0
        s = compute_stats(pops, np.ones((3, 4), dtype=int))
        assert np.allclose(s.coherence_mean, 0.0)
        assert np.allclose(s.active_fraction[:, 1], 1.0)

    def test_uniform_state_coherence_max(self):
        n = 4
        pops = np.full((2, 3, n), 1.0 / n)
        s = compute_stats(pops, np.zeros((2, 3), dtype=int))
        assert np.allclose(s.coherence_mean, 1.0 - 1.0 / n)

    def test_validation(self):
        with pytest.raises(ValueError, match="nsteps, ntraj, nstates"):
            compute_stats(np.zeros((2, 3)), np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError, match="actives"):
            compute_stats(np.zeros((2, 3, 4)), np.zeros((2, 2), dtype=int))


class TestKolmogorovSmirnov:
    def test_identical_samples_zero(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert ks_statistic(a, a) == 0.0

    def test_disjoint_samples_one(self):
        a = np.arange(10.0)
        b = np.arange(10.0) + 100.0
        assert ks_statistic(a, b) == 1.0

    def test_statistic_symmetric(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=50), rng.normal(0.5, size=70)
        assert ks_statistic(a, b) == ks_statistic(b, a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))

    def test_pvalue_limits(self):
        assert ks_pvalue(0.0, 50, 50) == 1.0
        assert ks_pvalue(1.0, 50, 50) < 1e-10
        with pytest.raises(ValueError):
            ks_pvalue(0.5, 0, 10)

    def test_pvalue_monotone_in_d(self):
        ps = [ks_pvalue(d, 40, 40) for d in (0.1, 0.2, 0.4, 0.8)]
        assert all(ps[i] > ps[i + 1] for i in range(len(ps) - 1))

    def test_same_distribution_not_rejected(self):
        rng = np.random.default_rng(7)
        a, b = rng.normal(size=200), rng.normal(size=200)
        _, p = ks_test(a, b)
        assert p > 0.05

    def test_shifted_distribution_rejected(self):
        rng = np.random.default_rng(7)
        a, b = rng.normal(size=200), rng.normal(2.0, size=200)
        _, p = ks_test(a, b)
        assert p < 1e-6


class TestStderrOverlap:
    def test_identical_traces_pass(self):
        m = np.linspace(0, 1, 10)
        assert stderr_overlap(m, np.zeros(10), m, np.zeros(10))

    def test_within_errors_pass(self):
        m = np.zeros(5)
        assert stderr_overlap(m, np.full(5, 0.1), m + 0.25, np.full(5, 0.1))

    def test_outside_errors_fail(self):
        m = np.zeros(5)
        assert not stderr_overlap(m, np.full(5, 0.01), m + 0.5,
                                  np.full(5, 0.01))

    def test_nsigma_widens_gate(self):
        m = np.zeros(3)
        se = np.full(3, 0.1)
        assert not stderr_overlap(m, se, m + 0.5, se, nsigma=3.0)
        assert stderr_overlap(m, se, m + 0.5, se, nsigma=4.0)
