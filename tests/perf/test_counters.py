"""Counter aggregation tests."""

import pytest

from repro.perf import CounterSet


class TestCounterSet:
    def test_add_and_totals(self):
        c = CounterSet()
        c.add("kin", 100.0, 50.0)
        c.add("kin", 100.0, 50.0)
        c.add("nl", 300.0, 10.0)
        assert c.total_flops() == 500.0
        assert c.total_bytes() == 110.0
        assert c.calls == {"kin": 2, "nl": 1}

    def test_arithmetic_intensity(self):
        c = CounterSet()
        c.add("gemm", 800.0, 100.0)
        assert c.arithmetic_intensity("gemm") == pytest.approx(8.0)

    def test_intensity_no_bytes(self):
        c = CounterSet()
        c.add("phase", 10.0, 0.0)
        assert c.arithmetic_intensity("phase") == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1.0, 0.0)

    def test_merge(self):
        a = CounterSet()
        a.add("k", 1.0, 2.0)
        b = CounterSet()
        b.add("k", 3.0, 4.0)
        b.add("j", 5.0, 6.0)
        a.merge(b)
        assert a.flops == {"k": 4.0, "j": 5.0}
        assert a.calls == {"k": 2, "j": 1}
