"""Counter aggregation tests."""

import pytest

from repro.perf import CounterSet


class TestCounterSet:
    def test_add_and_totals(self):
        c = CounterSet()
        c.add("kin", 100.0, 50.0)
        c.add("kin", 100.0, 50.0)
        c.add("nl", 300.0, 10.0)
        assert c.total_flops() == 500.0
        assert c.total_bytes() == 110.0
        assert c.calls == {"kin": 2, "nl": 1}

    def test_arithmetic_intensity(self):
        c = CounterSet()
        c.add("gemm", 800.0, 100.0)
        assert c.arithmetic_intensity("gemm") == pytest.approx(8.0)

    def test_intensity_no_bytes(self):
        c = CounterSet()
        c.add("phase", 10.0, 0.0)
        assert c.arithmetic_intensity("phase") == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1.0, 0.0)

    def test_merge(self):
        a = CounterSet()
        a.add("k", 1.0, 2.0)
        b = CounterSet()
        b.add("k", 3.0, 4.0)
        b.add("j", 5.0, 6.0)
        a.merge(b)
        assert a.flops == {"k": 4.0, "j": 5.0}
        assert a.calls == {"k": 2, "j": 1}

    def test_merge_empty_is_identity(self):
        a = CounterSet()
        a.add("k", 1.0, 2.0)
        a.merge(CounterSet())
        assert a.flops == {"k": 1.0}
        CounterSet().merge(a)  # merging into empty must not mutate a
        assert a.calls == {"k": 1}

    def test_merge_disjoint_names(self):
        a = CounterSet()
        a.add("only_a", 1.0, 1.0)
        b = CounterSet()
        b.add("only_b", 2.0, 2.0)
        a.merge(b)
        assert a.flops == {"only_a": 1.0, "only_b": 2.0}
        assert a.bytes_moved == {"only_a": 1.0, "only_b": 2.0}

    def test_merge_leaves_other_untouched(self):
        a = CounterSet()
        b = CounterSet()
        b.add("k", 3.0, 4.0)
        a.merge(b)
        a.add("k", 1.0, 1.0)
        assert b.flops == {"k": 3.0}
        assert b.calls == {"k": 1}

    def test_zero_counts_allowed(self):
        """Zero-flop/zero-byte invocations still count calls."""
        c = CounterSet()
        c.add("sync", 0.0, 0.0)
        c.add("sync", 0.0, 0.0)
        assert c.calls == {"sync": 2}
        assert c.total_flops() == 0.0
        assert c.arithmetic_intensity("sync") == float("inf")

    def test_intensity_of_unknown_kernel(self):
        """Unknown names read as 0 flops / 0 bytes -> inf, not KeyError."""
        assert CounterSet().arithmetic_intensity("ghost") == float("inf")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", 0.0, -1.0)
