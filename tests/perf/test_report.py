"""Report formatting tests."""

import pytest

from repro.perf import Table, format_seconds, format_speedup


class TestFormat:
    def test_seconds_scales(self):
        assert format_seconds(150.0) == "150.0 s"
        assert format_seconds(1.5) == "1.500 s"
        assert format_seconds(0.002) == "2.000 ms"
        assert format_seconds(5e-6) == "5.0 us"
        assert format_seconds(None) == "-"

    def test_speedup(self):
        assert format_speedup(3.14159) == "3.14x"
        assert format_speedup(None) == "-"


class TestTable:
    def test_render_aligned(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("a", 1)
        t.add_row("longer-name", 22)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        # All data lines share the same separator column position.
        assert lines[3].index("|") == lines[4].index("|")

    def test_wrong_cell_count(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            Table([])

    def test_str_matches_render(self):
        t = Table(["x"])
        t.add_row(5)
        assert str(t) == t.render()
