"""Timer utility tests."""

import time

import pytest

from repro.perf import RegionTimer, Timer, timed


class TestTimer:
    def test_elapsed_accumulates(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        dt = t.stop()
        assert dt > 0.005
        assert t.elapsed == pytest.approx(dt)
        assert t.calls == 1

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean(self):
        t = Timer()
        for _ in range(3):
            t.start()
            t.stop()
        assert t.mean == pytest.approx(t.elapsed / 3)

    def test_reset(self):
        t = Timer()
        t.start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0 and t.calls == 0


class TestRegionTimer:
    def test_nesting(self):
        rt = RegionTimer()
        with rt.region("outer"):
            with rt.region("inner"):
                time.sleep(0.005)
        assert rt.total("outer") >= rt.total("inner") > 0.0
        assert rt.counts == {"outer": 1, "inner": 1}

    def test_report_sorted(self):
        rt = RegionTimer()
        with rt.region("fast"):
            pass
        with rt.region("slow"):
            time.sleep(0.01)
        lines = rt.report().splitlines()
        assert lines[0].startswith("slow")

    def test_empty_report(self):
        assert "no regions" in RegionTimer().report()

    def test_exception_still_records_time(self):
        """A raising region body records its elapsed time and count."""
        rt = RegionTimer()
        with pytest.raises(RuntimeError):
            with rt.region("doomed"):
                time.sleep(0.005)
                raise RuntimeError("solver diverged")
        assert rt.total("doomed") >= 0.005
        assert rt.counts == {"doomed": 1}
        assert rt._stack == []

    def test_exception_unwinds_nested_stack(self):
        """A raise deep in a nest leaves the stack clean and every level
        recorded under its own name."""
        rt = RegionTimer()
        with pytest.raises(ValueError):
            with rt.region("outer"):
                with rt.region("mid"):
                    with rt.region("inner"):
                        raise ValueError
        assert rt.counts == {"outer": 1, "mid": 1, "inner": 1}
        assert rt._stack == []
        assert rt.total("outer") >= rt.total("mid") >= rt.total("inner")

    def test_reentrant_same_name(self):
        """Recursive use of one region name attributes each level once."""
        rt = RegionTimer()
        with rt.region("r"):
            with rt.region("r"):
                time.sleep(0.002)
        assert rt.counts == {"r": 2}

    def test_usable_after_exception(self):
        rt = RegionTimer()
        with pytest.raises(RuntimeError):
            with rt.region("a"):
                raise RuntimeError
        with rt.region("b"):
            pass
        assert rt.counts == {"a": 1, "b": 1}


class TestTimed:
    def test_returns_result(self):
        dt, result = timed(lambda x: x * 2, 21)
        assert result == 42
        assert dt >= 0.0

    def test_repeat_takes_best(self):
        dt, _ = timed(time.sleep, 0.002, repeat=3)
        assert dt >= 0.002

    def test_bad_repeat(self):
        with pytest.raises(ValueError):
            timed(lambda: None, repeat=0)
