"""Energy-to-solution model tests."""

import pytest

from repro.device.energy import (
    NODE_OVERHEAD_WATTS,
    NodeEnergyModel,
    device_power,
)
from repro.device.spec import A100, PVC_MAX_1550


class TestPower:
    def test_datasheet_tdps(self):
        assert device_power(A100) == 400.0
        assert device_power(PVC_MAX_1550) == 600.0

    def test_unknown_device(self):
        from repro.device.spec import DeviceSpec

        mystery = DeviceSpec("mystery", 1, 1, 1, 1)
        with pytest.raises(KeyError, match="mystery"):
            device_power(mystery)

    def test_node_power_composition(self):
        node = NodeEnergyModel(ngpus=4)
        expected = 4 * 400.0 + 225.0 + NODE_OVERHEAD_WATTS
        assert node.node_power == pytest.approx(expected)

    def test_cpu_only_node_draws_less_power(self):
        gpu_node = NodeEnergyModel(ngpus=4)
        cpu_node = NodeEnergyModel(ngpus=0)
        assert cpu_node.node_power < 0.4 * gpu_node.node_power


class TestEnergyToSolution:
    def test_energy_linear_in_time_and_steps(self):
        node = NodeEnergyModel()
        e1 = node.energy_to_solution(10.0, nsteps=1)
        assert node.energy_to_solution(20.0, nsteps=1) == pytest.approx(2 * e1)
        assert node.energy_to_solution(10.0, nsteps=3) == pytest.approx(3 * e1)

    def test_gpu_offload_saves_energy_despite_higher_power(self):
        """The paper-scale argument: 19x faster at ~4x the power is a
        large net energy win."""
        from repro.parallel.scaling import calibrated_model

        model = calibrated_model()
        t_gpu = model.step_time(4, use_gpu=True)
        t_cpu = model.step_time(4, use_gpu=False)
        e_gpu = NodeEnergyModel(ngpus=4).energy_to_solution(t_gpu)
        e_cpu = NodeEnergyModel(ngpus=0).energy_to_solution(t_cpu)
        assert e_gpu < 0.3 * e_cpu

    def test_energy_per_atom_step(self):
        node = NodeEnergyModel()
        assert node.energy_per_atom_step(10.0, natoms=160) == pytest.approx(
            node.node_power * 10.0 / 160.0
        )

    def test_validation(self):
        node = NodeEnergyModel()
        with pytest.raises(ValueError):
            node.energy_to_solution(0.0)
        with pytest.raises(ValueError):
            node.energy_per_atom_step(1.0, natoms=0)
        with pytest.raises(ValueError):
            NodeEnergyModel(ngpus=-1)
