"""Simulated clock tests."""

import pytest

from repro.device import SimClock


class TestClock:
    def test_advance(self):
        c = SimClock()
        c.advance(1.5, "a", "kernel")
        c.advance(0.5, "b", "transfer")
        assert c.now == pytest.approx(2.0)
        assert len(c.events) == 2

    def test_no_backwards(self):
        c = SimClock()
        with pytest.raises(ValueError):
            c.advance(-1.0)

    def test_advance_to(self):
        c = SimClock()
        c.advance(1.0)
        assert c.advance_to(3.0) == pytest.approx(2.0)
        assert c.advance_to(2.0) == 0.0  # already past
        assert c.now == pytest.approx(3.0)

    def test_category_totals(self):
        c = SimClock()
        c.advance(1.0, "k1", "kernel")
        c.advance(2.0, "t1", "transfer")
        c.advance(3.0, "k2", "kernel")
        assert c.total("kernel") == pytest.approx(4.0)
        assert c.total() == pytest.approx(6.0)
        assert c.by_category() == {"kernel": pytest.approx(4.0),
                                   "transfer": pytest.approx(2.0)}

    def test_by_name(self):
        c = SimClock()
        c.advance(1.0, "gemm", "kernel")
        c.advance(2.0, "gemm", "kernel")
        assert c.by_name()["gemm"] == pytest.approx(3.0)

    def test_reset(self):
        c = SimClock()
        c.advance(5.0)
        c.reset()
        assert c.now == 0.0
        assert c.events == []

    def test_event_end(self):
        c = SimClock()
        ev = c.advance(2.0, "x")
        assert ev.end == pytest.approx(2.0)
        ev2 = c.advance(1.0, "y")
        assert ev2.start == pytest.approx(2.0)
