"""Multi-GPU node model tests."""

import pytest

from repro.device.multigpu import MultiGPUNode


class TestConstruction:
    def test_polaris_default(self):
        node = MultiGPUNode()
        assert node.ngpus == 4
        assert node.makespan == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGPUNode(ngpus=0)


class TestPeerTransfers:
    def test_nvlink_faster_than_pcie(self):
        node = MultiGPUNode()
        t_peer = node.peer_transfer(0, 1, 10 ** 9)
        t_host = node.gpus[2].transfer.h2d(10 ** 9, pinned=True)
        assert t_peer < t_host

    def test_both_clocks_charged(self):
        node = MultiGPUNode()
        node.peer_transfer(0, 3, 10 ** 6)
        assert node.gpus[0].elapsed > 0.0
        assert node.gpus[3].elapsed == pytest.approx(node.gpus[0].elapsed)
        assert node.gpus[1].elapsed == 0.0

    def test_rendezvous_semantics(self):
        """A busy destination delays the copy start for both ends."""
        node = MultiGPUNode()
        node.gpus[1].clock.advance(1.0, "busy")
        node.peer_transfer(0, 1, 10 ** 6)
        assert node.gpus[0].elapsed >= 1.0

    def test_validation(self):
        node = MultiGPUNode()
        with pytest.raises(ValueError):
            node.peer_transfer(0, 0, 10)
        with pytest.raises(ValueError):
            node.peer_transfer(0, 9, 10)
        with pytest.raises(ValueError):
            node.peer_transfer(0, 1, -1)


class TestScheduling:
    def test_all_domains_assigned_once(self):
        node = MultiGPUNode()
        costs = [(1e9, 1e6)] * 10
        assignment = node.schedule_domains(costs)
        assigned = sorted(i for lst in assignment.values() for i in lst)
        assert assigned == list(range(10))

    def test_uniform_domains_balance(self):
        node = MultiGPUNode()
        node.schedule_domains([(1e10, 1e7)] * 8)
        assert node.load_imbalance() < 1.05

    def test_lpt_beats_worst_case_for_skewed_work(self):
        """One huge + several small domains: LPT puts the huge one alone."""
        node = MultiGPUNode()
        costs = [(8e10, 1e6)] + [(1e10, 1e6)] * 6
        assignment = node.schedule_domains(costs)
        owner = [g for g, lst in assignment.items() if 0 in lst][0]
        assert len(assignment[owner]) == 1

    def test_payloads_executed(self):
        node = MultiGPUNode()
        hits = []
        node.schedule_domains(
            [(1e6, 1e3)] * 3,
            payloads=[lambda i=i: hits.append(i) for i in range(3)],
        )
        assert sorted(hits) == [0, 1, 2]

    def test_payload_count_check(self):
        node = MultiGPUNode()
        with pytest.raises(ValueError):
            node.schedule_domains([(1e6, 1e3)] * 2, payloads=[lambda: None])

    def test_more_gpus_shorter_makespan(self):
        costs = [(1e11, 1e8)] * 8
        one = MultiGPUNode(ngpus=1)
        one.schedule_domains(costs)
        four = MultiGPUNode(ngpus=4)
        four.schedule_domains(costs)
        assert four.makespan < 0.3 * one.makespan

    def test_reset(self):
        node = MultiGPUNode()
        node.schedule_domains([(1e9, 1e6)] * 4)
        node.peer_transfer(0, 1, 100)
        node.reset()
        assert node.makespan == 0.0
        assert node.peer_transfers == []
