"""Roofline kernel cost model and launcher tests."""

import pytest

from repro.device import (
    A100,
    EPYC_7543_CORE,
    KernelCostModel,
    KernelLauncher,
    SimClock,
    Stream,
)
from repro.device.spec import SCALAR_EFFICIENCY


class TestCostModel:
    def test_memory_bound_kernel(self):
        """Low arithmetic intensity -> bandwidth-limited time."""
        m = KernelCostModel(A100)
        t = m.kernel_time(flops=1e6, bytes_moved=1e9)
        assert t == pytest.approx(1e9 / A100.mem_bandwidth)

    def test_compute_bound_kernel(self):
        m = KernelCostModel(A100)
        t = m.kernel_time(flops=1e15, bytes_moved=1e3, itemsize=8)
        assert t == pytest.approx(1e15 / A100.peak_flops_dp)

    def test_sp_faster_than_dp_when_compute_bound(self):
        m = KernelCostModel(A100)
        t_dp = m.kernel_time(1e15, 1e3, itemsize=8)
        t_sp = m.kernel_time(1e15, 1e3, itemsize=4)
        assert t_sp == pytest.approx(
            t_dp * A100.peak_flops_dp / A100.peak_flops_sp
        )

    def test_scalar_derating(self):
        m = KernelCostModel(EPYC_7543_CORE)
        t_vec = m.kernel_time(1e12, 1e3, vectorized=True)
        t_scalar = m.kernel_time(1e12, 1e3, vectorized=False)
        assert t_scalar == pytest.approx(t_vec / SCALAR_EFFICIENCY)

    def test_efficiency_knob(self):
        m = KernelCostModel(A100)
        t1 = m.kernel_time(1e12, 1e3, efficiency=1.0)
        t2 = m.kernel_time(1e12, 1e3, efficiency=0.5)
        assert t2 == pytest.approx(2 * t1)
        with pytest.raises(ValueError):
            m.kernel_time(1e12, 1e3, efficiency=0.0)

    def test_ridge_point(self):
        m = KernelCostModel(A100)
        assert m.arithmetic_intensity_break(8) == pytest.approx(
            A100.peak_flops_dp / A100.mem_bandwidth
        )

    def test_negative_counts(self):
        m = KernelCostModel(A100)
        with pytest.raises(ValueError):
            m.kernel_time(-1, 0)
        with pytest.raises(ValueError):
            m.kernel_time(0, -1)

    def test_zero_byte_kernel_is_compute_bound(self):
        """A traffic-free kernel is charged pure compute time."""
        m = KernelCostModel(A100)
        t = m.kernel_time(flops=1e12, bytes_moved=0.0, itemsize=8)
        assert t == pytest.approx(1e12 / A100.peak_flops_dp)

    def test_zero_flop_kernel_is_memory_bound(self):
        """A pure data-movement kernel is charged pure bandwidth time."""
        m = KernelCostModel(A100)
        t = m.kernel_time(flops=0.0, bytes_moved=1e9)
        assert t == pytest.approx(1e9 / A100.mem_bandwidth)

    def test_empty_kernel_costs_nothing(self):
        assert KernelCostModel(A100).kernel_time(0.0, 0.0) == 0.0

    def test_scalar_derating_moves_ridge_point(self):
        """Derated peak pushes memory-bound work into compute-bound."""
        m = KernelCostModel(EPYC_7543_CORE)
        ai = m.arithmetic_intensity_break(8)  # ridge of vectorized code
        flops, byts = ai * 0.5 * 1e9, 1e9     # just memory-bound vectorized
        t_vec = m.kernel_time(flops, byts)
        assert t_vec == pytest.approx(byts / EPYC_7543_CORE.mem_bandwidth)
        # The same kernel run as scalar code becomes compute-bound.
        t_scalar = m.kernel_time(flops, byts, vectorized=False)
        peak = EPYC_7543_CORE.peak_flops_dp * SCALAR_EFFICIENCY
        assert t_scalar == pytest.approx(flops / peak)
        assert t_scalar > t_vec

    def test_efficiency_above_one_rejected(self):
        with pytest.raises(ValueError):
            KernelCostModel(A100).kernel_time(1e9, 1e6, efficiency=1.5)


class TestLauncher:
    def test_sync_launch_charges_latency(self):
        clock = SimClock()
        launcher = KernelLauncher(A100, clock)
        t_kernel = launcher.launch("k", flops=1e9, bytes_moved=1e6)
        assert clock.now == pytest.approx(
            A100.launch_latency + t_kernel + A100.sync_overhead
        )

    def test_payload_executed(self):
        launcher = KernelLauncher(A100, SimClock())
        out = []
        launcher.launch("k", 1e3, 1e3, payload=lambda: out.append(1))
        assert out == [1]

    def test_async_hides_launch_gap(self):
        """N async launches + 1 sync beat N sync launches (Table I nowait)."""
        n = 50
        flops, byts = 1e8, 1e6

        sync_clock = SimClock()
        sync_launcher = KernelLauncher(A100, sync_clock)
        for i in range(n):
            sync_launcher.launch(f"k{i}", flops, byts)

        async_clock = SimClock()
        async_launcher = KernelLauncher(A100, async_clock)
        stream = Stream(async_clock)
        for i in range(n):
            async_launcher.launch(f"k{i}", flops, byts, stream=stream, nowait=True)
        stream.synchronize()

        assert async_clock.now < sync_clock.now
        # Both executed the same device work.
        assert async_launcher.total_kernel_time() == pytest.approx(
            sync_launcher.total_kernel_time()
        )

    def test_nowait_requires_stream(self):
        launcher = KernelLauncher(A100)
        with pytest.raises(ValueError):
            launcher.launch("k", 1e3, 1e3, nowait=True)

    def test_records_kept(self):
        launcher = KernelLauncher(A100)
        launcher.launch("a", 1e3, 1e3)
        launcher.launch("b", 1e3, 1e3)
        assert [r.name for r in launcher.records] == ["a", "b"]
