"""Hardware spec tests."""

import pytest

from repro.device import A100, EPYC_7543_CORE, EPYC_7543_SOCKET, PCIE_GEN4
from repro.device.spec import NVLINK


class TestDeviceSpecs:
    def test_a100_datasheet(self):
        assert A100.peak_flops_dp == pytest.approx(9.7e12)
        assert A100.peak_flops_sp == pytest.approx(19.5e12)
        assert A100.mem_bandwidth == pytest.approx(1.555e12)
        assert A100.is_gpu

    def test_cpu_core_not_gpu(self):
        assert not EPYC_7543_CORE.is_gpu
        assert EPYC_7543_CORE.launch_latency == 0.0

    def test_socket_is_32_cores(self):
        ratio = EPYC_7543_SOCKET.peak_flops_dp / EPYC_7543_CORE.peak_flops_dp
        assert ratio == pytest.approx(32.0, rel=0.01)

    def test_peak_flops_selector(self):
        assert A100.peak_flops(4) == A100.peak_flops_sp
        assert A100.peak_flops(8) == A100.peak_flops_dp

    def test_gpu_sp_is_double_dp(self):
        assert A100.peak_flops_sp == pytest.approx(2 * A100.peak_flops_dp, rel=0.01)


class TestLinkSpecs:
    def test_pinned_faster_than_pageable(self):
        t_pageable = PCIE_GEN4.transfer_time(1e9, pinned=False)
        t_pinned = PCIE_GEN4.transfer_time(1e9, pinned=True)
        assert t_pinned < t_pageable

    def test_latency_dominates_small_transfers(self):
        t = PCIE_GEN4.transfer_time(1, pinned=True)
        assert t == pytest.approx(PCIE_GEN4.latency, rel=1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN4.transfer_time(-1)

    def test_nvlink_faster_than_pcie(self):
        assert NVLINK.transfer_time(1e9) < PCIE_GEN4.transfer_time(1e9, pinned=True)
