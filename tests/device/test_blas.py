"""Device BLAS (cuBLAS stand-in) tests."""

import numpy as np
import pytest

from repro.device import A100, DeviceBLAS, KernelLauncher, SimClock
from repro.device.blas import gemm_bytes, gemm_flops


class TestCounts:
    def test_complex_gemm_flops(self):
        assert gemm_flops(4, 5, 6) == 8 * 4 * 5 * 6

    def test_real_gemm_flops(self):
        assert gemm_flops(4, 5, 6, complex_data=False) == 2 * 4 * 5 * 6

    def test_gemm_bytes(self):
        assert gemm_bytes(2, 3, 4, 16) == 16 * (8 + 12 + 6)


class TestGemm:
    @pytest.fixture
    def blas(self):
        return DeviceBLAS(KernelLauncher(A100, SimClock()))

    def test_result_correct(self, blas, rng):
        a = rng.standard_normal((6, 4)) + 1j * rng.standard_normal((6, 4))
        b = rng.standard_normal((6, 5)) + 1j * rng.standard_normal((6, 5))
        c = blas.gemm(a, b, conj_a=True)
        assert np.allclose(c, a.conj().T @ b)

    def test_plain_product(self, blas, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        assert np.allclose(blas.gemm(a, b), a @ b)

    def test_time_charged(self, rng):
        clock = SimClock()
        blas = DeviceBLAS(KernelLauncher(A100, clock))
        a = rng.standard_normal((32, 32))
        blas.gemm(a, a)
        assert clock.now > 0.0

    def test_bigger_gemm_costs_more(self, rng):
        times = []
        for n in (64, 128):
            clock = SimClock()
            blas = DeviceBLAS(KernelLauncher(A100, clock))
            a = rng.standard_normal((n, n))
            blas.gemm(a, a)
            times.append(clock.now)
        assert times[1] > times[0]

    def test_shape_mismatch(self, blas, rng):
        with pytest.raises(ValueError):
            blas.gemm(rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))

    def test_rank_check(self, blas, rng):
        with pytest.raises(ValueError):
            blas.gemm(rng.standard_normal(4), rng.standard_normal((4, 2)))
