"""Stream / async-launch model tests."""

import pytest

from repro.device import SimClock, Stream
from repro.device.streams import ENQUEUE_COST


class TestStream:
    def test_enqueue_advances_host_minimally(self):
        clock = SimClock()
        s = Stream(clock)
        s.enqueue(1.0, launch_latency=1e-5)
        assert clock.now == pytest.approx(ENQUEUE_COST)
        assert not s.idle

    def test_kernels_pipeline_in_order(self):
        clock = SimClock()
        s = Stream(clock)
        s.enqueue(1.0, 1e-5)
        s.enqueue(2.0, 1e-5)
        s.synchronize()
        # Device time ~ 3 s plus one launch latency, not 2x latency stalls.
        assert clock.now == pytest.approx(3.0 + 1e-5 + 2 * ENQUEUE_COST, rel=1e-3)

    def test_synchronize_idempotent(self):
        clock = SimClock()
        s = Stream(clock)
        s.enqueue(0.5, 0.0)
        w1 = s.synchronize()
        w2 = s.synchronize()
        assert w1 > 0.0
        assert w2 == 0.0
        assert s.idle

    def test_negative_duration(self):
        s = Stream(SimClock())
        with pytest.raises(ValueError):
            s.enqueue(-1.0, 0.0)

    def test_kernel_count(self):
        s = Stream(SimClock())
        for _ in range(3):
            s.enqueue(0.1, 0.0)
        assert s.kernels_enqueued == 3
