"""Device allocator / DeviceArray (OMPallocator analogue) tests."""

import numpy as np
import pytest

from repro.device import (
    A100,
    DeviceAllocator,
    DeviceArray,
    DeviceMemoryError,
    SimClock,
    PCIE_GEN4,
)
from repro.device.spec import DeviceSpec


@pytest.fixture
def allocator():
    return DeviceAllocator(A100, SimClock(), link=PCIE_GEN4)


class TestAllocator:
    def test_tracks_bytes(self, allocator):
        a = allocator.allocate(1000)
        allocator.allocate(500)
        assert allocator.bytes_allocated == 1500
        allocator.deallocate(a, 1000)
        assert allocator.bytes_allocated == 500
        assert allocator.peak_bytes == 1500

    def test_oom(self):
        tiny = DeviceSpec("tiny", 1, 1, 1, mem_capacity=100)
        alloc = DeviceAllocator(tiny)
        alloc.allocate(90)
        with pytest.raises(DeviceMemoryError, match="OOM"):
            alloc.allocate(20)

    def test_double_free(self, allocator):
        a = allocator.allocate(10)
        allocator.deallocate(a, 10)
        with pytest.raises(DeviceMemoryError):
            allocator.deallocate(a, 10)

    def test_live_count(self, allocator):
        allocator.allocate(1)
        allocator.allocate(2)
        assert allocator.live_allocations == 2


class TestDeviceArray:
    def test_raii_lifecycle(self, allocator):
        host = np.zeros(1000)
        with DeviceArray(host, allocator, tag="psi") as arr:
            assert arr.on_device
            assert allocator.bytes_allocated == host.nbytes
        assert allocator.bytes_allocated == 0

    def test_use_after_free(self, allocator):
        arr = DeviceArray(np.zeros(10), allocator)
        arr.free()
        with pytest.raises(DeviceMemoryError, match="use after free"):
            _ = arr.data
        with pytest.raises(DeviceMemoryError):
            arr.update_to_device()
        with pytest.raises(DeviceMemoryError):
            arr.free()  # double free

    def test_transfers_charged(self, allocator):
        arr = DeviceArray(np.zeros(2 ** 20), allocator, pinned=False)
        t_pageable = arr.update_to_device()
        pinned = DeviceArray(np.zeros(2 ** 20), allocator, pinned=True)
        t_pinned = pinned.update_to_device()
        assert t_pinned < t_pageable
        assert allocator.transfer.total_bytes("h2d") == 2 * 2 ** 20 * 8
        assert arr.h2d_count == 1

    def test_d2h(self, allocator):
        arr = DeviceArray(np.zeros(100), allocator)
        arr.update_from_device()
        assert arr.d2h_count == 1
        assert allocator.transfer.total_bytes("d2h") == 800

    def test_data_is_host_buffer(self, allocator):
        host = np.arange(5.0)
        arr = DeviceArray(host, allocator)
        arr.data[0] = 42.0
        assert host[0] == 42.0

    def test_no_transfer_engine(self):
        alloc = DeviceAllocator(A100)  # no link
        arr = DeviceArray(np.zeros(10), alloc)
        assert arr.update_to_device() == 0.0
