"""VirtualGPU facade tests."""

import numpy as np

from repro.device import VirtualGPU


class TestFacade:
    def test_shared_clock(self):
        gpu = VirtualGPU()
        arr = gpu.array(np.zeros(2 ** 16), pinned=True)
        arr.update_to_device()
        t_after_transfer = gpu.elapsed
        gpu.launch("k", flops=1e9, bytes_moved=1e6, nowait=True)
        gpu.synchronize()
        assert gpu.elapsed > t_after_transfer > 0.0

    def test_gemm_on_device(self, rng):
        gpu = VirtualGPU()
        a = rng.standard_normal((16, 8))
        c = gpu.gemm(a, a, conj_a=True)
        gpu.synchronize()
        assert np.allclose(c, a.T @ a)
        assert gpu.elapsed > 0.0

    def test_reset_keeps_allocations(self):
        gpu = VirtualGPU()
        arr = gpu.array(np.zeros(100))
        gpu.launch("k", 1e6, 1e6)
        gpu.reset()
        assert gpu.elapsed == 0.0
        assert arr.on_device
        assert gpu.allocator.bytes_allocated == 800

    def test_default_stream_used(self):
        gpu = VirtualGPU()
        gpu.launch("k", 1e9, 1e6, nowait=True)
        assert gpu.stream.kernels_enqueued == 1
