"""Transfer engine / ledger tests."""

import pytest

from repro.device import SimClock, TransferEngine
from repro.device.spec import PCIE_GEN4


class TestTransfers:
    def test_ledger_records(self):
        eng = TransferEngine(PCIE_GEN4, SimClock())
        eng.h2d(1000, tag="a")
        eng.d2h(500, pinned=True, tag="b")
        assert len(eng.ledger) == 2
        assert eng.total_bytes() == 1500
        assert eng.total_bytes("h2d") == 1000
        assert eng.total_bytes("d2h") == 500

    def test_time_accumulates_on_clock(self):
        clock = SimClock()
        eng = TransferEngine(PCIE_GEN4, clock)
        eng.h2d(10 ** 9)
        assert clock.now == pytest.approx(eng.total_time())
        assert clock.total("transfer") == pytest.approx(clock.now)

    def test_pinned_recorded(self):
        eng = TransferEngine(PCIE_GEN4, SimClock())
        eng.h2d(100, pinned=True)
        assert eng.ledger[0].pinned

    def test_negative_bytes(self):
        eng = TransferEngine()
        with pytest.raises(ValueError):
            eng.h2d(-1)

    def test_reset(self):
        eng = TransferEngine(PCIE_GEN4, SimClock())
        eng.h2d(100)
        eng.reset()
        assert eng.ledger == []
        assert eng.total_bytes() == 0
