"""Shared fixtures: small grids, seeded RNGs, wave functions, atoms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grids import Grid3D, DomainDecomposition
from repro.lfd import WaveFunctionSet
from repro.pseudo import get_species


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240612)


@pytest.fixture
def grid8() -> Grid3D:
    """Tiny cubic grid (8^3, h = 0.5)."""
    return Grid3D.cubic(8, 0.5)


@pytest.fixture
def grid12() -> Grid3D:
    return Grid3D.cubic(12, 0.5)


@pytest.fixture
def grid16() -> Grid3D:
    return Grid3D.cubic(16, 0.6)


@pytest.fixture
def aniso_grid() -> Grid3D:
    """Anisotropic grid to catch axis-confusion bugs."""
    return Grid3D((8, 10, 12), (0.5, 0.45, 0.4))


@pytest.fixture
def wf_small(grid8, rng) -> WaveFunctionSet:
    return WaveFunctionSet.random(grid8, 4, rng)


@pytest.fixture
def wf_medium(grid12, rng) -> WaveFunctionSet:
    return WaveFunctionSet.random(grid12, 6, rng)


@pytest.fixture
def h2_system(grid16):
    """Two hydrogen-like pseudo-atoms in the 16^3 cell."""
    L = grid16.lengths[0]
    positions = np.array(
        [[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]]
    )
    species = [get_species("H"), get_species("H")]
    return grid16, positions, species


@pytest.fixture
def o2_system(grid16):
    """Two oxygen pseudo-atoms (have KB projectors -> nonzero scissor)."""
    L = grid16.lengths[0]
    positions = np.array(
        [[L / 2 - 1.1, L / 2, L / 2], [L / 2 + 1.1, L / 2, L / 2]]
    )
    species = [get_species("O"), get_species("O")]
    return grid16, positions, species


@pytest.fixture
def decomposition16(grid16) -> DomainDecomposition:
    return DomainDecomposition(grid16, (2, 1, 1), buffer_width=3)


@pytest.fixture(scope="session", params=["numpy", "array_api_strict"])
def xp_backend(request):
    """Every array-API substrate, as a resolved :class:`ArrayBackend`.

    Session-scoped so the whole run shares the two cached handles; a
    test taking this fixture executes once per substrate.  The strict
    member is ``array-api-strict`` when installed, otherwise the
    repo's pure-stdlib shim -- either way it rejects silent NumPy
    round-trips, which is what backend-differential tests rely on.
    """
    from repro.backend import get_backend

    return get_backend(request.param)
