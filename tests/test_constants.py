"""Unit-conversion sanity checks."""


import pytest

from repro import constants as C


def test_speed_of_light_is_inverse_fine_structure():
    assert C.C_LIGHT == pytest.approx(1.0 / C.ALPHA_FS)
    assert C.C_LIGHT == pytest.approx(137.036, rel=1e-4)


def test_energy_roundtrip():
    assert C.hartree_to_ev(C.ev_to_hartree(13.6)) == pytest.approx(13.6)
    assert C.ev_to_hartree(C.HARTREE_EV) == pytest.approx(1.0)


def test_time_roundtrip():
    assert C.aut_to_fs(C.fs_to_aut(2.5)) == pytest.approx(2.5)
    # One a.u. of time is about 24.2 attoseconds.
    assert C.AUT_AS == pytest.approx(24.19, rel=1e-3)


def test_length_roundtrip():
    assert C.bohr_to_angstrom(C.angstrom_to_bohr(3.97)) == pytest.approx(3.97)
    assert C.angstrom_to_bohr(C.BOHR_ANGSTROM) == pytest.approx(1.0)


def test_atomic_masses_positive_and_ordered():
    assert C.ATOMIC_MASS["O"] < C.ATOMIC_MASS["Ti"] < C.ATOMIC_MASS["Pb"]
    assert all(m > 1000.0 for m in C.ATOMIC_MASS.values())


def test_intensity_to_field_atomic_unit():
    # The atomic unit of intensity corresponds to E0 = 1 a.u.
    assert C.laser_intensity_to_field(3.50944758e16) == pytest.approx(1.0)
    assert C.laser_intensity_to_field(0.0) == 0.0
    with pytest.raises(ValueError):
        C.laser_intensity_to_field(-1.0)


def test_wavelength_to_omega_800nm():
    # 800 nm Ti:sapphire ~ 1.55 eV.
    omega = C.wavelength_nm_to_omega(800.0)
    assert C.hartree_to_ev(omega) == pytest.approx(1.55, rel=1e-2)
    with pytest.raises(ValueError):
        C.wavelength_nm_to_omega(0.0)


def test_pbtio3_valences_neutral_cell():
    # Pb + Ti + 3 O valences = 4 + 4 + 18 = 26 electrons per formula unit.
    n = (
        C.VALENCE_CHARGE["Pb"]
        + C.VALENCE_CHARGE["Ti"]
        + 3 * C.VALENCE_CHARGE["O"]
    )
    assert n == pytest.approx(26.0)
