"""PbTiO3 single-cell physics validation (the paper's benchmark material).

Runs the actual DFT machinery on one 5-atom perovskite cell at coarse
resolution: charge accounting, bound valence bands, a finite gap, and the
ferroelectric signature -- a polar Ti displacement produces an electronic
dipole response opposing the ionic one (dielectric screening with the
Born-charge sign).
"""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.lfd.observables import dipole_moment
from repro.materials import PBTIO3, build_supercell
from repro.qxmd import SCFConfig, scf_solve


@pytest.fixture(scope="module")
def cell_solution():
    pos, species, box = build_supercell(PBTIO3, (1, 1, 1))
    n = 16
    grid = Grid3D((n, n, n), tuple(b / n for b in box))
    # 26 valence electrons -> 13 occupied + extras.
    res = scf_solve(
        grid, pos, species, norb=16,
        config=SCFConfig(nscf=3, ncg=3, mixing=0.3),
    )
    return grid, pos, species, res


class TestGroundState:
    def test_charge_accounting(self, cell_solution):
        grid, pos, species, res = cell_solution
        assert res.occupations.sum() == pytest.approx(26.0)
        n_e = res.rho.sum() * grid.dvol
        assert n_e == pytest.approx(26.0, rel=1e-6)

    def test_valence_bands_bound(self, cell_solution):
        _, _, _, res = cell_solution
        # The lowest (O-2s-like in a real calculation) bands sit well
        # below the upper valence region.
        assert res.eigenvalues[0] < res.eigenvalues[12]

    def test_finite_gap(self, cell_solution):
        _, _, _, res = cell_solution
        assert res.gap > 0.0

    def test_density_prefers_oxygen_over_lead(self, cell_solution):
        """Charge transfer ordering: with the repulsive pseudo-cores the
        valence density is expelled from every nucleus, but far less from
        the electronegative O sites than from Pb -- the ionic-bonding
        signature surviving pseudization."""
        grid, pos, species, res = cell_solution
        site = {sp.symbol: [] for sp in species}
        for r, sp in zip(pos, species):
            site[sp.symbol].append(res.rho[grid.nearest_index(r)])
        assert np.mean(site["O"]) > 10 * np.mean(site["Pb"])
        assert np.mean(site["O"]) > np.mean(site["Ti"])


class TestPolarResponse:
    def test_electronic_screening_opposes_ionic_dipole(self, cell_solution):
        """Displacing Ti by +z moves the ion dipole up; the electron cloud
        relaxes to screen it (electronic dipole response along -z ionic
        i.e. +z electronic contribution of the negative charge)."""
        grid, pos, species, res0 = cell_solution
        disp_pos, _, _ = build_supercell(PBTIO3, (1, 1, 1),
                                         polar_displacement=0.25)
        res1 = scf_solve(
            grid, disp_pos, species, norb=16,
            config=SCFConfig(nscf=3, ncg=3, mixing=0.3),
        )
        d0 = dipole_moment(res0.wf, res0.occupations)
        d1 = dipole_moment(res1.wf, res1.occupations)
        # The electronic density responds measurably and predominantly
        # along the displacement axis.
        assert abs(d1[2] - d0[2]) > 1e-3
        assert abs(d1[2] - d0[2]) > 3 * abs(d1[0] - d0[0])
        # Electrons follow the O cage (down): -<z> grows.
        assert d1[2] - d0[2] > 0

    def test_polar_cell_costs_energy_without_relaxation(self, cell_solution):
        """At fixed (unrelaxed) geometry the displaced cell is higher in
        electrostatic + band energy (the restoring force exists; the
        double well needs strain relaxation, cf. the effective model)."""
        grid, pos, species, res0 = cell_solution
        disp_pos, _, _ = build_supercell(PBTIO3, (1, 1, 1),
                                         polar_displacement=0.35)
        res1 = scf_solve(
            grid, disp_pos, species, norb=16,
            config=SCFConfig(nscf=3, ncg=3, mixing=0.3),
        )
        assert res1.energies["total"] > res0.energies["total"]
