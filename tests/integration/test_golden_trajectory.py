"""Golden-trajectory regression test for the coupled DC-MESH loop.

A tiny fixed-seed run (two O atoms, 12^3 mesh, 3 MD steps with a laser
and an excited carrier) exercises the whole stack -- global-local SCF,
surface hopping, scissor setup, LFD propagation, forces, velocity
Verlet -- and its observables are pinned against a committed ``.npz``.
Any unintended change to the numerics anywhere in that stack shows up
here as a trajectory diff.

On the platform that generated the golden file the run is bit-exact
(set ``REPRO_GOLDEN_EXACT=1`` to enforce that); across BLAS builds and
architectures reduction orders differ, so the default gate is a
``1e-10`` absolute tolerance -- far below any physical signal in these
observables but far above accumulated round-off differences.

Regenerate (after a *deliberate* numerics change) with::

    PYTHONPATH=src:. python -m tests.integration.test_golden_trajectory
"""

import os
import pathlib

import numpy as np

from repro.core import DCMESHConfig, DCMESHSimulation, TimescaleSplit
from repro.grids import Grid3D
from repro.maxwell import GaussianPulse
from repro.pseudo import get_species

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "data" / "golden_dcmesh.npz"
)

#: Cross-platform gate; REPRO_GOLDEN_EXACT=1 demands bit-identity.
GOLDEN_ATOL = 1e-10

NSTEPS = 3


def golden_run():
    """The pinned scenario; returns arrays keyed like the golden file."""
    grid = Grid3D((12, 12, 12), (0.6, 0.6, 0.6))
    pos = np.array([[1.8, 3.6, 3.6], [5.4, 3.6, 3.6]])
    species = [get_species("O"), get_species("O")]
    laser = GaussianPulse(e0=0.02, omega=0.3, t0=10.0, sigma=6.0)
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=5),
        nscf=2,
        ncg=2,
        norb_extra=2,
        seed=13,
    )
    sim = DCMESHSimulation(
        grid, (2, 1, 1), pos, species, laser=laser, config=config,
        buffer_width=3,
    )
    sim.excite_carrier(0)
    records = sim.run(NSTEPS)
    return {
        "time": np.array([r.time for r in records]),
        "temperature": np.array([r.temperature for r in records]),
        "band_energy": np.array([r.band_energy for r in records]),
        "excited_population": np.array(
            [r.excited_population for r in records]
        ),
        "hops": np.array([r.hops for r in records], dtype=float),
        "scissor_shifts": np.array([r.scissor_shifts for r in records]),
        "positions": sim.md_state.positions.copy(),
        "velocities": sim.md_state.velocities.copy(),
    }


def regenerate(path=GOLDEN_PATH):
    """Write a fresh golden file (deliberate-change workflow)."""
    data = golden_run()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **data)
    return path, data


class TestGoldenTrajectory:
    def test_matches_committed_golden(self):
        assert GOLDEN_PATH.exists(), (
            f"golden file missing: {GOLDEN_PATH}; regenerate with "
            f"python -m tests.integration.test_golden_trajectory"
        )
        golden = np.load(GOLDEN_PATH)
        current = golden_run()
        assert set(golden.files) == set(current)
        exact = os.environ.get("REPRO_GOLDEN_EXACT") == "1"
        for key in golden.files:
            want, got = golden[key], current[key]
            assert want.shape == got.shape, key
            if exact:
                assert np.array_equal(want, got), f"{key} not bit-exact"
            else:
                diff = np.max(np.abs(want - got)) if want.size else 0.0
                assert diff <= GOLDEN_ATOL, (
                    f"{key}: max|diff| = {diff:.3e} > {GOLDEN_ATOL}"
                )

    def test_run_is_deterministic(self):
        """Two in-process runs of the scenario are bit-identical."""
        a, b = golden_run(), golden_run()
        for key in a:
            assert np.array_equal(a[key], b[key]), key


if __name__ == "__main__":
    p, data = regenerate()
    print(f"golden trajectory written to {p}")
    for key, val in data.items():
        print(f"  {key}: shape {val.shape}")
