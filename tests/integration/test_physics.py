"""End-to-end physics validation of the LFD propagator.

The canonical real-time-TDDFT sanity check: a weak delta-kick applied to
the ground state of a model potential produces a dipole oscillation whose
spectrum peaks at the independent-particle excitation energies of the
Hamiltonian -- an end-to-end test of the SCF ground state, the split
propagator, the observables and the spectral analysis together.
"""

import numpy as np
import pytest

from repro.analysis import absorption_peaks, dipole_to_spectrum
from repro.constants import C_LIGHT
from repro.grids import Grid3D
from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
from repro.lfd.observables import density, dipole_moment
from repro.qxmd import KSHamiltonian, cg_eigensolve


@pytest.fixture(scope="module")
def model_system():
    """A soft Gaussian well with a handful of bound-ish states."""
    g = Grid3D.cubic(12, 0.5)
    c = 2.75
    xs, ys, zs = g.meshgrid()
    vloc = -3.0 * np.exp(-((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 1.8)
    ham = KSHamiltonian(g, vloc)
    wf = WaveFunctionSet.random(g, 5, np.random.default_rng(0))
    evals = cg_eigensolve(ham, wf, ncg=40)
    return g, vloc, ham, wf, evals


class TestGroundState:
    def test_spectrum_bound(self, model_system):
        _, _, _, _, evals = model_system
        assert evals[0] < -0.5
        assert np.all(np.diff(evals) > 0)

    def test_residuals_small(self, model_system):
        g, _, ham, wf, evals = model_system
        hpsi = ham.apply_wf(wf)
        for s in range(3):
            r = hpsi[..., s] - evals[s] * wf.orbital(s)
            assert g.norm(r) < 2e-2


class TestKickResponse:
    @pytest.fixture(scope="class")
    def dipole_trace(self, model_system):
        g, vloc, ham, wf, evals = model_system
        k0 = 1e-3
        kicked = wf.copy()
        xs = g.meshgrid()[0]
        kicked.psi *= np.exp(1j * k0 * xs)[..., None]
        occ = np.array([2.0, 0.0, 0.0, 0.0, 0.0])  # fill only the ground state
        dt = 0.05
        prop = QDPropagator(kicked, vloc, PropagatorConfig(dt=dt))
        times, dips = [], []

        def observe(p):
            times.append(p.time)
            dips.append(dipole_moment(p.wf, occ)[0])

        prop.run(1600, observer=observe)
        return np.array(times), np.array(dips), evals, k0

    def test_dipole_oscillates(self, dipole_trace):
        times, dips, _, _ = dipole_trace
        assert np.ptp(dips) > 1e-6

    def test_spectrum_peaks_at_transition_energies(self, dipole_trace):
        times, dips, evals, k0 = dipole_trace
        omega, s = dipole_to_spectrum(times, dips, kick_strength=k0, damping=0.01)
        peaks = absorption_peaks(omega, s, min_height=0.3)
        assert len(peaks) >= 1
        # Dipole selection: the dominant transition is 0 -> first
        # p-like state; at least one strong peak must match a
        # ground-to-excited gap within the spectral resolution.
        gaps = evals[1:] - evals[0]
        resolution = 2 * np.pi / times[-1] * 2
        best = min(
            abs(p - gq) for p in peaks for gq in gaps
        )
        assert best < max(0.05, resolution)

    def test_norm_conserved_through_experiment(self, dipole_trace, model_system):
        # Re-run briefly and check norms (the trace fixture consumed wf).
        g, vloc, _, wf, _ = model_system
        kicked = wf.copy()
        prop = QDPropagator(kicked, vloc, PropagatorConfig(dt=0.05))
        prop.run(200)
        assert np.abs(kicked.norms() - 1.0).max() < 1e-11


class TestChargeConservation:
    def test_density_norm_constant_under_laser(self, model_system):
        g, vloc, _, wf, _ = model_system
        occ = np.array([2.0, 2.0, 0.0, 0.0, 0.0])
        prop = QDPropagator(
            wf.copy(), vloc, PropagatorConfig(dt=0.05),
            a_of_t=lambda t: (5.0 * np.sin(0.4 * t), 0.0, 0.0),
        )
        n0 = density(prop.wf, occ).sum() * g.dvol
        prop.run(150)
        n1 = density(prop.wf, occ).sum() * g.dvol
        assert n1 == pytest.approx(n0, rel=1e-10)


class TestEnergyBalance:
    """d<H>/dt = (d<H>/dA) . dA/dt for the Peierls-coupled propagator."""

    def test_operator_gradient_exact(self, model_system, rng):
        """kinetic_gauge_gradient matches a finite-difference of <H(A)>."""
        from repro.constants import C_LIGHT, HBAR
        from repro.lfd.observables import kinetic_gauge_gradient

        g, vloc, ham, wf, _ = model_system
        occ = np.array([2.0, 1.0, 0.0, 0.0, 0.0])
        a0 = np.array([3.0, -1.0, 0.5])

        def kin_energy(a):
            psi = wf.psi.astype(np.complex128)
            e = 0.0
            for d in range(3):
                h = g.spacing[d]
                o = -0.5 / (h * h)
                theta = h * a[d] / (HBAR * C_LIGHT)
                pair = psi.conj() * np.roll(psi, -1, axis=d)
                e += float(
                    np.einsum("xyzs,s->",
                              2 * o * np.real(np.exp(-1j * theta) * pair), occ)
                ) * g.dvol
            return e

        grad = kinetic_gauge_gradient(wf, occ, a0)
        eps = 1e-5
        for d in range(3):
            ap = a0.copy(); ap[d] += eps
            am = a0.copy(); am[d] -= eps
            num = (kin_energy(ap) - kin_energy(am)) / (2 * eps)
            assert grad[d] == pytest.approx(num, rel=1e-4, abs=1e-10)

    def test_absorbed_energy_matches_band_energy_change(self, model_system):
        """Integrated absorbed power equals the band-energy change of a
        full pulse (within the O(dt^2) splitting flutter)."""
        from repro.lfd.energy import band_energies
        from repro.lfd.observables import absorbed_power
        from repro.maxwell.laser import Cos2Pulse

        g, vloc, ham, wf, _ = model_system
        occ = np.array([2.0, 0.0, 0.0, 0.0, 0.0])
        pulse = Cos2Pulse(e0=0.2, omega=0.8, duration=30.0)
        dt = 0.04
        work = 0.0
        kicked = wf.copy()
        e0 = float(occ @ band_energies(kicked, vloc))
        prop = QDPropagator(
            kicked, vloc, PropagatorConfig(dt=dt),
            a_of_t=lambda t: pulse.vector_potential(t),
        )
        nsteps = int(40.0 / dt)  # pulse fully contained
        for _ in range(nsteps):
            t_mid = prop.time + dt / 2
            a_mid = pulse.vector_potential(t_mid)
            a_dot = (
                pulse.vector_potential(t_mid + 1e-4)
                - pulse.vector_potential(t_mid - 1e-4)
            ) / 2e-4
            work += absorbed_power(prop.wf, occ, a_mid, a_dot) * dt
            prop.step()
        e1 = float(occ @ band_energies(prop.wf, vloc))
        d_e = e1 - e0
        assert d_e > 1e-3  # genuinely absorbed energy
        assert work == pytest.approx(d_e, rel=0.15)
