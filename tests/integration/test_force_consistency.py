"""Force-energy consistency: F = -dE/dR at frozen electron density.

The electrostatic force routine implements F_I = -int rho_I grad phi_tot;
analytically this is exactly the negative gradient of the total
electrostatic energy (e-ion + ion-ion, at fixed rho_e), so a numerical
derivative of the energy must match the computed force -- the canonical
correctness check of any force implementation.
"""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.multigrid import PoissonMultigrid
from repro.pseudo import get_species, ionic_density
from repro.qxmd.forces import ForceCalculator
from repro.qxmd.hartree import hartree_potential


@pytest.fixture(scope="module")
def setup():
    grid = Grid3D.cubic(16, 0.6)
    species = [get_species("O"), get_species("Ti")]
    positions = np.array([[4.1, 4.8, 4.8], [6.0, 5.1, 4.6]])
    rng = np.random.default_rng(4)
    # A frozen, smooth electron density (neutralizing).
    xs, ys, zs = grid.meshgrid()
    rho_e = np.exp(-((xs - 5.0) ** 2 + (ys - 4.8) ** 2 + (zs - 4.8) ** 2) / 3.0)
    nelec = sum(sp.zval for sp in species)
    rho_e *= nelec / (rho_e.sum() * grid.dvol)
    return grid, species, positions, rho_e


def electrostatic_energy(grid, species, positions, rho_e, solver):
    """Total electrostatic energy of (rho_ion - rho_e) including the
    position-dependent ion self/interaction pieces."""
    rho_ion = ionic_density(grid, positions, species)
    q = rho_ion - rho_e
    phi = hartree_potential(q, grid, method="fft")
    return 0.5 * float(np.sum(q * phi)) * grid.dvol


class TestElectrostaticForces:
    def test_spectral_force_is_exact_energy_gradient(self, setup):
        """The Fourier-built ions give forces that are the energy gradient
        to the finite-difference floor (~1e-8)."""
        from repro.pseudo.local import ionic_density_fourier

        grid, species, positions, rho_e = setup
        calc = ForceCalculator(grid, species)
        f = calc.electrostatic_forces_spectral(positions, rho_e)

        def energy(pos):
            from repro.multigrid import solve_poisson_fft

            q = ionic_density_fourier(grid, pos, species) - rho_e
            phi = solve_poisson_fft(q, grid)
            return 0.5 * float(np.sum(q * phi)) * grid.dvol

        eps = 1e-5
        for atom in range(2):
            for axis in range(3):
                p_plus = positions.copy()
                p_plus[atom, axis] += eps
                p_minus = positions.copy()
                p_minus[atom, axis] -= eps
                num = -(energy(p_plus) - energy(p_minus)) / (2 * eps)
                assert f[atom, axis] == pytest.approx(
                    num, rel=1e-6, abs=1e-8
                ), (atom, axis)

    def test_realspace_force_approximates_energy_gradient(self, setup):
        """The minimum-image build is only grid-approximately consistent
        (its numerical normalization varies with sub-grid position) --
        expect percent-level agreement, the reason the spectral path
        exists."""
        grid, species, positions, rho_e = setup
        solver = PoissonMultigrid(grid)
        calc = ForceCalculator(grid, species, poisson=solver)
        f = calc.electrostatic_forces(positions, rho_e)
        eps = 1e-4
        atom, axis = 1, 0  # the best-resolved, largest component
        p_plus = positions.copy()
        p_plus[atom, axis] += eps
        p_minus = positions.copy()
        p_minus[atom, axis] -= eps
        num = -(
            electrostatic_energy(grid, species, p_plus, rho_e, solver)
            - electrostatic_energy(grid, species, p_minus, rho_e, solver)
        ) / (2 * eps)
        assert f[atom, axis] == pytest.approx(num, rel=0.05)

    def test_spectral_and_realspace_roughly_agree(self, setup):
        grid, species, positions, rho_e = setup
        calc = ForceCalculator(grid, species)
        f_spec = calc.electrostatic_forces_spectral(positions, rho_e)
        f_real = calc.electrostatic_forces(positions, rho_e)
        # Same physics, different discretizations of the ion profile.
        assert np.abs(f_spec - f_real).max() < 0.2 * np.abs(f_spec).max()

    def test_forces_sum_to_zero_for_neutral_system(self, setup):
        """Newton's third law + translation invariance: net force from the
        internal electrostatics vanishes (the frozen rho_e breaks this per
        atom but not the ion-ion part; test ions-only)."""
        grid, species, positions, _ = setup
        calc = ForceCalculator(grid, species)
        # Ions only: rho_e = 0 (non-neutral, but pure ion-ion forces obey
        # action = reaction exactly).
        f = calc.electrostatic_forces(positions, np.zeros(grid.shape))
        assert np.abs(f.sum(axis=0)).max() < 1e-6
