"""Capstone integration: DC-MESH on a real PbTiO3 cell under a laser.

The closest in-repo analogue of the paper's production workload: one
5-atom PbTiO3 perovskite cell (26 valence electrons), a single DC domain,
fs-laser drive, surface-hopping machinery armed, the full MD loop --
every subsystem of the reproduction exercised together on the actual
benchmark material.
"""

import numpy as np
import pytest

from repro.core import DCMESHConfig, DCMESHSimulation, TimescaleSplit
from repro.device import VirtualGPU
from repro.grids import Grid3D
from repro.materials import PBTIO3, build_supercell
from repro.maxwell import GaussianPulse


@pytest.fixture(scope="module")
def pbtio3_sim():
    positions, species, box = build_supercell(PBTIO3, (1, 1, 1))
    n = 16
    grid = Grid3D((n, n, n), tuple(b / n for b in box))
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=10),
        nscf=2,
        ncg=3,
        norb_extra=3,
        mixing=0.3,
        seed=21,
    )
    laser = GaussianPulse(e0=0.02, omega=0.3, t0=4.0, sigma=3.0)
    sim = DCMESHSimulation(
        grid, (1, 1, 1), positions, species,
        laser=laser, config=config, device=VirtualGPU(), buffer_width=0,
    )
    sim.excite_carrier(0)
    records = sim.run(2)
    return sim, records


class TestPbTiO3Pipeline:
    def test_runs_two_md_steps(self, pbtio3_sim):
        sim, records = pbtio3_sim
        assert sim.step_count == 2
        assert records[-1].time == pytest.approx(4.0)

    def test_electron_accounting(self, pbtio3_sim):
        sim, _ = pbtio3_sim
        st = sim.dc.states[0]
        assert st.occupations.sum() == pytest.approx(26.0, rel=1e-9)
        assert np.all(st.occupations >= -1e-9)

    def test_excitation_tracked(self, pbtio3_sim):
        sim, records = pbtio3_sim
        assert records[0].excited_population > 0.1

    def test_scissor_computed_from_kb_projectors(self, pbtio3_sim):
        """Pb/Ti/O all carry KB channels: the scissor shift is non-trivial."""
        _, records = pbtio3_sim
        assert all(np.isfinite(s) for r in records for s in r.scissor_shifts)
        assert any(abs(s) > 1e-6 for r in records for s in r.scissor_shifts)

    def test_shadow_contract_on_production_material(self, pbtio3_sim):
        sim, _ = pbtio3_sim
        sim.ledger.assert_no_psi_traffic()
        assert sim.ledger.traffic_ratio() < 0.05

    def test_forces_moved_every_species(self, pbtio3_sim):
        sim, _ = pbtio3_sim
        positions0, _, _ = build_supercell(PBTIO3, (1, 1, 1))
        disp = np.abs(sim.md_state.positions - positions0)
        assert disp.max() > 0.0
        # Nothing exploded: displacements stay far below a lattice constant.
        assert disp.max() < 0.5 * PBTIO3.a

    def test_gpu_clock_charged(self, pbtio3_sim):
        sim, _ = pbtio3_sim
        assert sim.device.elapsed > 0.0
