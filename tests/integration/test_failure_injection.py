"""Failure-injection tests: the system fails loudly, not silently."""

import numpy as np
import pytest

from repro.device import (
    A100,
    DeviceAllocator,
    DeviceArray,
    DeviceMemoryError,
    VirtualGPU,
)
from repro.device.spec import DeviceSpec
from repro.grids import Grid3D, DomainDecomposition
from repro.lfd import WaveFunctionSet


class TestDeviceFailures:
    def test_oversized_wavefunction_oom(self):
        """A Psi matrix beyond device memory raises, with context."""
        tiny_gpu = DeviceSpec(
            name="tiny", peak_flops_sp=1e12, peak_flops_dp=5e11,
            mem_bandwidth=1e11, mem_capacity=10 ** 6, is_gpu=True,
        )
        alloc = DeviceAllocator(tiny_gpu)
        big = np.zeros(10 ** 6, dtype=np.complex128)  # 16 MB > 1 MB capacity
        with pytest.raises(DeviceMemoryError, match="OOM"):
            DeviceArray(big, alloc)

    def test_paper_scale_psi_fits_a100(self):
        """The real workload (70x70x72 x 64 DP orbitals x 2 copies) fits."""
        alloc = DeviceAllocator(A100)
        nbytes = 70 * 70 * 72 * 64 * 16
        a = alloc.allocate(nbytes)
        b = alloc.allocate(nbytes)
        assert alloc.bytes_allocated == 2 * nbytes
        assert alloc.bytes_allocated < A100.mem_capacity

    def test_leaked_arrays_detected(self):
        gpu = VirtualGPU()
        arr = gpu.array(np.zeros(100), tag="leak")
        # Scope ends without free(): the allocator still counts it live.
        assert gpu.allocator.live_allocations == 1
        arr.free()
        assert gpu.allocator.live_allocations == 0


class TestShapeMismatches:
    def test_propagator_rejects_wrong_potential(self, grid8, rng):
        from repro.lfd import PropagatorConfig, QDPropagator

        wf = WaveFunctionSet.random(grid8, 2, rng)
        with pytest.raises(ValueError):
            QDPropagator(wf, np.zeros((4, 4, 4)), PropagatorConfig(dt=0.05))

    def test_corrector_rejects_cross_grid_reference(self, grid8, grid12, rng):
        from repro.lfd import NonlocalCorrector

        wf = WaveFunctionSet.random(grid8, 2, rng)
        ref = WaveFunctionSet.random(grid12, 2, rng)
        corr = NonlocalCorrector(ref, 0.1)
        with pytest.raises(ValueError):
            corr.apply(wf, 0.05)

    def test_simulation_rejects_odd_local_grids(self):
        """Pair splitting needs even local grids; the decomposition check
        catches a bad buffer choice before any physics runs."""
        grid = Grid3D((12, 12, 12), (0.6, 0.6, 0.6))
        dec = DomainDecomposition(grid, (4, 2, 1), buffer_width=1)
        assert not dec.check_local_grids_even()

    def test_domain_solver_species_mismatch(self):
        from repro.pseudo import get_species
        from repro.qxmd import GlobalDCSolver

        grid = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
        dec = DomainDecomposition(grid, (2, 1, 1), buffer_width=3)
        with pytest.raises(ValueError):
            GlobalDCSolver(grid, dec, np.zeros((3, 3)),
                           [get_species("H")] * 2)


class TestNumericalGuards:
    def test_cg_recovers_degenerate_start(self, rng):
        """Duplicate starting bands are sanitized by the initial
        orthonormalization instead of collapsing mid-solve."""
        from repro.qxmd import KSHamiltonian
        from repro.qxmd.cg import cg_eigensolve

        g = Grid3D.cubic(6, 0.7)
        ham = KSHamiltonian(g, -np.ones(g.shape))
        wf = WaveFunctionSet.random(g, 2, rng)
        wf.psi[..., 1] = wf.psi[..., 0]  # rank-deficient start
        evals = cg_eigensolve(ham, wf, ncg=3)
        s = wf.overlap_matrix()
        assert np.abs(s - np.eye(2)).max() < 1e-8
        assert np.all(np.isfinite(evals))

    def test_multigrid_nonconvergence_reported(self, grid16, rng):

        rho = rng.standard_normal(grid16.shape)
        with pytest.raises(RuntimeError, match="converge"):
            # Impossible tolerance within one cycle must raise, not return
            # a silently wrong potential.
            from repro.multigrid import PoissonMultigrid

            solver = PoissonMultigrid(grid16, pre_sweeps=0, post_sweeps=0,
                                      smoother="jacobi")
            v, stats = solver.solve(rho, tol=1e-30, max_cycles=1)
            if not stats.converged:
                raise RuntimeError("did not converge")

    def test_normalize_zero_orbital(self, grid8):
        wf = WaveFunctionSet(grid8, 2)
        with pytest.raises(ZeroDivisionError):
            wf.normalize()

    def test_fdtd_cfl_guard(self):
        from repro.maxwell import VectorPotentialFDTD

        with pytest.raises(ValueError, match="CFL"):
            VectorPotentialFDTD(nz=100, dz=1.0, dt=0.05)  # c dt = 6.9 > 1
