"""Fingerprint helpers: canonical JSON, config/code/machine digests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts.fingerprint import (
    canonical_json,
    code_fingerprint,
    config_hash,
    machine_fingerprint,
)


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_float_exactness(self):
        # Shortest-repr round-tripping keeps float64 identity exact.
        x = 0.1 + 0.2
        text = canonical_json({"x": x})
        import json

        assert json.loads(text)["x"] == x


class TestConfigHash:
    def test_stable_and_short(self):
        h = config_hash({"grid": 12, "seed": 1})
        assert h == config_hash({"seed": 1, "grid": 12})
        assert len(h) == 16

    def test_sensitive_to_values(self):
        assert config_hash({"seed": 1}) != config_hash({"seed": 2})

    def test_nested_payloads(self):
        a = config_hash({"p": {"x": [1, 2]}, "q": None})
        b = config_hash({"q": None, "p": {"x": [1, 2]}})
        assert a == b


class TestCodeFingerprint:
    def test_modules_and_pairs_agree_on_content(self):
        import repro.serve.pool as pool_mod

        via_module = code_fingerprint([pool_mod])
        import inspect

        via_pairs = code_fingerprint(
            [(pool_mod.__name__, inspect.getsource(pool_mod))]
        )
        assert via_module == via_pairs

    def test_source_edit_changes_fingerprint(self):
        base = code_fingerprint([("m", "def f():\n    return 1\n")])
        edited = code_fingerprint([("m", "def f():\n    return 2\n")])
        assert base != edited

    def test_name_is_part_of_identity(self):
        assert code_fingerprint([("a", "x = 1\n")]) != code_fingerprint(
            [("b", "x = 1\n")]
        )

    def test_order_matters(self):
        pairs = [("a", "1"), ("b", "2")]
        assert code_fingerprint(pairs) != code_fingerprint(pairs[::-1])


class TestMachineFingerprint:
    def test_stable_within_process(self):
        assert machine_fingerprint() == machine_fingerprint()
        assert len(machine_fingerprint()) == 16


class TestTuningCacheReexports:
    """The refactor keeps the legacy import surface importable."""

    def test_names_still_importable(self):
        from repro.tuning.cache import (  # noqa: F401
            _blas_signature,
            code_fingerprint as cf,
            machine_fingerprint as mf,
        )

        assert cf is code_fingerprint
        assert mf is machine_fingerprint
