"""JsonDocumentStore: atomic saves, schema gating, corrupt-as-absent."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import JsonDocumentStore
from repro.resilience.faults import FaultPlan, arm, disarm


@pytest.fixture(autouse=True)
def _no_faults():
    yield
    disarm()


def test_round_trip(tmp_path):
    doc = JsonDocumentStore(tmp_path / "doc.json", schema="test/1")
    doc.save({"answer": 42, "nested": {"x": [1, 2]}})
    payload, error = doc.load()
    assert error is None
    assert payload["answer"] == 42
    assert payload["nested"] == {"x": [1, 2]}
    assert payload["schema"] == "test/1"


def test_missing_is_absent_not_error(tmp_path):
    doc = JsonDocumentStore(tmp_path / "doc.json", schema="test/1")
    assert doc.load() == (None, None)


def test_wrong_schema_is_absent_not_error(tmp_path):
    path = tmp_path / "doc.json"
    JsonDocumentStore(path, schema="other/9").save({"v": 1})
    payload, error = JsonDocumentStore(path, schema="test/1").load()
    assert payload is None and error is None


def test_corrupt_is_absent_with_error_surfaced(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text('{"schema": "test/1", "v":')  # truncated
    payload, error = JsonDocumentStore(path, schema="test/1").load()
    assert payload is None
    assert error is not None and "JSONDecodeError" in error


def test_enospc_preserves_previous_document(tmp_path):
    path = tmp_path / "doc.json"
    doc = JsonDocumentStore(path, schema="test/1")
    doc.save({"generation": 1})
    arm(FaultPlan().add("jsondoc.enospc"))
    with pytest.raises(OSError):
        doc.save({"generation": 2})
    disarm()
    payload, error = doc.load()
    assert error is None
    assert payload["generation"] == 1


def test_torn_write_loads_as_absent_with_error(tmp_path):
    path = tmp_path / "doc.json"
    doc = JsonDocumentStore(path, schema="test/1")
    arm(FaultPlan().add("jsondoc.torn_write"))
    doc.save({"generation": 1})
    disarm()
    payload, error = doc.load()
    assert payload is None
    assert error is not None
    # Recovery: the next clean save heals the document.
    doc.save({"generation": 2})
    payload, error = doc.load()
    assert error is None and payload["generation"] == 2


def test_custom_fault_prefix_routes_sites(tmp_path):
    doc = JsonDocumentStore(
        tmp_path / "c.json", schema="test/1", fault_prefix="cache"
    )
    arm(FaultPlan().add("cache.enospc"))
    with pytest.raises(OSError):
        doc.save({"v": 1})
    disarm()
    # jsondoc.* sites do not fire for a cache-prefixed store.
    arm(FaultPlan().add("jsondoc.enospc"))
    doc.save({"v": 2})
    disarm()
    assert doc.load()[0]["v"] == 2


def test_output_is_sorted_and_newline_terminated(tmp_path):
    path = tmp_path / "doc.json"
    JsonDocumentStore(path, schema="test/1").save({"b": 1, "a": 2})
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"a": 2, "b": 1, "schema": "test/1"}
    assert text.index('"a"') < text.index('"b"') < text.index('"schema"')
