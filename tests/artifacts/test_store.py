"""ArtifactStore: content addressing, durability, eviction, self-healing."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.artifacts import ArtifactKey, ArtifactStore
from repro.resilience.faults import FaultPlan, arm, disarm


@pytest.fixture(autouse=True)
def _no_faults():
    yield
    disarm()


def key(config="c1", code="k1", machine="m1", kind="serve.test"):
    return ArtifactKey(kind=kind, config=config, code=code, machine=machine)


def some_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {"x": rng.standard_normal(16), "n": np.arange(4, dtype=np.int64)}


class TestKey:
    def test_digest_covers_every_field(self):
        base = key()
        assert key().digest == base.digest
        for variant in (key(config="c2"), key(code="k2"),
                        key(machine="m2"), key(kind="serve.other")):
            assert variant.digest != base.digest

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            key(kind="")
        with pytest.raises(ValueError):
            key(kind="a/b")


class TestRoundTrip:
    def test_put_get_bit_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = some_arrays()
        store.put(key(), arrays, meta={"kind": "test", "answer": 42})
        hit = store.get(key())
        assert hit is not None
        got_arrays, meta = hit
        for name, want in arrays.items():
            assert got_arrays[name].dtype == want.dtype
            assert np.array_equal(got_arrays[name], want)
        assert meta["answer"] == 42
        assert store.hits == 1 and store.misses == 0

    def test_miss_and_contains(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(key()) is None
        assert not store.contains(key())
        assert store.misses == 1

    def test_code_fingerprint_invalidates(self, tmp_path):
        """A changed code fingerprint is a different address: stale
        results can never be served across a kernel edit."""
        store = ArtifactStore(tmp_path)
        store.put(key(code="k1"), some_arrays(), meta={})
        assert store.get(key(code="k1")) is not None
        assert store.get(key(code="k2")) is None
        assert store.get(key(machine="m2")) is None

    def test_overwrite_same_key_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), {"x": np.zeros(4)}, meta={"gen": 1})
        store.put(key(), {"x": np.ones(4)}, meta={"gen": 2})
        arrays, meta = store.get(key())
        assert meta["gen"] == 2
        assert np.array_equal(arrays["x"], np.ones(4))
        assert len(store) == 1

    def test_reserved_member_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.put(key(), {"__meta__": np.zeros(2)}, meta={})


class TestConcurrentWriters:
    def test_same_key_one_winner_no_torn_artifact(self, tmp_path):
        """Racing writers of one key: the survivor is one writer's
        *complete* artifact (arrays and meta from the same put), never
        an interleaving -- the atomic temp-file + rename publish."""
        store = ArtifactStore(tmp_path)
        n = 8
        barrier = threading.Barrier(n)
        errors = []

        def writer(i):
            try:
                barrier.wait()
                store.put(key(), {"x": np.full(256, float(i))},
                          meta={"writer": i})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        arrays, meta = store.get(key())
        winner = meta["writer"]
        assert np.array_equal(arrays["x"], np.full(256, float(winner)))
        assert store.corrupt == 0
        assert len(store) == 1


class TestFaults:
    def test_enospc_leaves_no_partial_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arm(FaultPlan().add("artifact.enospc"))
        with pytest.raises(OSError):
            store.put(key(), some_arrays(), meta={})
        disarm()
        assert store.get(key()) is None
        assert list(tmp_path.rglob(".tmp-*")) == []

    def test_torn_write_reads_as_miss_then_heals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arm(FaultPlan().add("artifact.torn_write"))
        store.put(key(), some_arrays(), meta={})
        disarm()
        # The torn npz is detected, counted, and treated as a miss...
        assert store.get(key()) is None
        assert store.corrupt == 1
        # ...and a clean re-put self-heals the entry.
        store.put(key(), some_arrays(), meta={"ok": True})
        hit = store.get(key())
        assert hit is not None and hit[1]["ok"] is True


def _backdate(store, k, seconds_ago):
    import os
    import time

    when = time.time() - seconds_ago
    os.utime(store.path_for(k), (when, when))


def _per_artifact_bytes(tmp_path):
    probe = ArtifactStore(tmp_path / "probe")
    probe.put(key(config="probe"), {"x": np.zeros(1024)}, meta={})
    return probe.size_bytes()


class TestEviction:
    def test_lru_byte_budget(self, tmp_path):
        """Oldest-touched artifacts fall out when the byte budget is
        exceeded; the most recent put always survives."""
        per = _per_artifact_bytes(tmp_path)
        root = tmp_path / "s"
        seed = ArtifactStore(root)  # unbounded while seeding
        for i in range(3):
            seed.put(key(config=f"c{i}"), {"x": np.zeros(1024)}, meta={})
            _backdate(seed, key(config=f"c{i}"), 300 - i)

        store = ArtifactStore(root, max_bytes=int(per * 2.5))
        store.put(key(config="c3"), {"x": np.zeros(1024)}, meta={})
        assert len(store) == 2
        assert store.evictions == 2
        # The newest entry must never be evicted by its own put; the two
        # oldest-touched entries are the victims.
        assert store.contains(key(config="c3"))
        assert store.contains(key(config="c2"))
        assert not store.contains(key(config="c1"))
        assert not store.contains(key(config="c0"))

    def test_get_refreshes_recency(self, tmp_path):
        per = _per_artifact_bytes(tmp_path)
        store = ArtifactStore(tmp_path / "s", max_bytes=int(per * 2.5))
        store.put(key(config="a"), {"x": np.zeros(1024)}, meta={})
        store.put(key(config="b"), {"x": np.zeros(1024)}, meta={})
        for k in ("a", "b"):
            _backdate(store, key(config=k), 60)
        # Reading "a" touches its mtime: "b" becomes the LRU victim.
        assert store.get(key(config="a")) is not None
        store.put(key(config="c"), {"x": np.zeros(1024)}, meta={})
        assert store.contains(key(config="a"))
        assert not store.contains(key(config="b"))

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(config="a"), some_arrays(), meta={})
        store.put(key(config="b"), some_arrays(), meta={})
        assert store.clear() == 2
        assert len(store) == 0
        assert store.size_bytes() == 0

    def test_stats_shape(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(key(), some_arrays(), meta={})
        store.get(key())
        store.get(key(config="other"))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["bytes"] > 0
