"""ProcessBackend fault injection: worker crashes heal or escalate cleanly.

The ``executor.worker_crash`` fault site SIGKILLs pool workers mid-map.
The backend must retry unfinished chunks on the survivors (degraded
pool), escalate as a :class:`WorkerCrashError` (a ``RankFailure``, hence
supervisor-recoverable) once retries are exhausted, and never change
physics either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mesh import DCMESHConfig, DCMESHSimulation
from repro.core.timescale import TimescaleSplit
from repro.grids.grid import Grid3D
from repro.parallel.backends import ProcessBackend
from repro.parallel.executor import WorkerCrashError
from repro.pseudo.elements import get_species
from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    RankFailure,
    armed,
    disarm,
)
from repro.resilience.supervisor import RunSupervisor, SupervisorConfig


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


def _cube(x):
    return x * x * x


def _make_sim(executor=None) -> DCMESHSimulation:
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=42,
    )
    return DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        config=config, buffer_width=2, executor=executor,
    )


def test_site_is_registered():
    assert "executor.worker_crash" in KNOWN_SITES


class TestCrashHealing:
    def test_single_crash_heals_with_identical_results(self):
        items = list(range(6))
        expect = [i ** 3 for i in items]
        plan = FaultPlan([FaultSpec("executor.worker_crash", at_call=1)])
        with armed(plan):
            with ProcessBackend(workers=2, seed=0,
                                max_crash_retries=2) as ex:
                assert ex.map(_cube, items, label="heal") == expect
                assert ex.live_workers == 1  # one pool loss, degraded
        assert plan.fired == [("executor.worker_crash", 1)]

    def test_two_crashes_still_heal(self):
        items = list(range(5))
        plan = FaultPlan([
            FaultSpec("executor.worker_crash", at_call=1),
            FaultSpec("executor.worker_crash", at_call=7),
        ])
        with armed(plan):
            with ProcessBackend(workers=3, seed=0,
                                max_crash_retries=2) as ex:
                assert ex.map(_cube, items) == [i ** 3 for i in items]
                assert ex.live_workers >= 1

    def test_exhausted_retries_raise_worker_crash_error(self):
        plan = FaultPlan(
            [FaultSpec("executor.worker_crash", at_call=0, count=50)]
        )
        with armed(plan):
            with ProcessBackend(workers=2, seed=0,
                                max_crash_retries=1) as ex:
                with pytest.raises(WorkerCrashError) as exc_info:
                    ex.map(_cube, list(range(6)), label="doomed")
        err = exc_info.value
        assert isinstance(err, RankFailure)  # supervisor-recoverable class
        assert err.crashes == 2
        assert err.survivors == 1
        assert "doomed" in str(err)

    def test_reset_restores_full_strength(self):
        plan = FaultPlan([FaultSpec("executor.worker_crash", at_call=0)])
        with armed(plan):
            with ProcessBackend(workers=2, seed=0,
                                max_crash_retries=2) as ex:
                ex.map(_cube, list(range(4)))
                assert ex.live_workers == 1
                ex.reset()
                assert ex.live_workers == 2
                # pool restarts lazily and still computes correctly
                assert ex.map(_cube, [5]) == [125]


class TestSupervisedRecovery:
    def test_supervisor_replays_after_worker_crash(self, tmp_path):
        """End to end: crash exhaustion -> checkpoint restore -> replay.

        ``max_crash_retries=0`` makes the first pool loss escalate
        immediately; the supervisor must classify it as recoverable,
        restore the newest checkpoint, and replay to a trajectory that
        matches the fault-free serial run to the process-backend
        tolerance.
        """
        ref = _make_sim()  # serial default, no faults
        ref_records = ref.run(4)

        with ProcessBackend(workers=2, seed=42, max_crash_retries=0) as ex:
            sim = _make_sim(ex)
            sup = RunSupervisor(
                sim, tmp_path, SupervisorConfig(checkpoint_every=1)
            )
            plan = FaultPlan(
                [FaultSpec("executor.worker_crash", at_call=3)]
            )
            with armed(plan):
                records = sup.run(4)
        assert plan.fired  # the crash really happened
        assert sup.total_retries >= 1
        assert sup.log.count("restore") >= 1
        assert len(records) == len(ref_records)
        np.testing.assert_allclose(
            [r.band_energy for r in records],
            [r.band_energy for r in ref_records],
            rtol=0.0, atol=1e-12,
        )
        np.testing.assert_allclose(
            sim.md_state.positions, ref.md_state.positions,
            rtol=0.0, atol=1e-12,
        )
