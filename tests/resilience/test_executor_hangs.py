"""Heartbeat watchdog: wedged workers heal like crashes, slow ones live.

The ``executor.hang`` fault site wedges a worker mid-chunk *without*
heartbeats (the watchdog's prey); ``executor.slow`` sleeps the same way
but keeps beating (late but alive -- must survive).  A watchdog kill
surfaces as a broken pool, so the existing crash-heal machinery
resubmits the chunk and the map completes with correct results in far
less than the wedge duration; exhaustion escalates as
:class:`WorkerCrashError` exactly like repeated crashes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.parallel.backends import ProcessBackend
from repro.parallel.backends.heartbeat import HeartbeatBoard
from repro.parallel.executor import WorkerCrashError
from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    armed,
    disarm,
)

#: Injected wedge duration: long enough that only a watchdog kill can
#: explain the map finishing quickly, short enough to bound a failure.
WEDGE_S = 60.0


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


def _cube(x):
    return x * x * x


def test_hang_sites_registered():
    assert "executor.hang" in KNOWN_SITES
    assert "executor.slow" in KNOWN_SITES


class TestHeartbeatBoard:
    def test_beat_read_clear_roundtrip(self):
        board = HeartbeatBoard.create(3)
        try:
            assert board.read(1) == 0.0
            board.beat(1)
            assert board.read(1) > 0.0
            board.clear(1)
            assert board.read(1) == 0.0
        finally:
            board.close()

    def test_stalled_slots_semantics(self):
        board = HeartbeatBoard.create(4)
        try:
            board.beat(0)  # fresh: not stalled
            # slot 1 never started (queued): never stalled
            board.beat(2)
            time.sleep(0.05)
            assert board.stalled_slots([0, 1, 2], hang_timeout=10.0) == []
            assert board.stalled_slots([0, 1, 2], hang_timeout=0.02) == [0, 2]
        finally:
            board.close()

    def test_attach_sees_owner_beats(self):
        board = HeartbeatBoard.create(2)
        try:
            other = HeartbeatBoard.attach(board.name, 2)
            other.beat(1)
            assert board.read(1) > 0.0
            other.close()  # worker side: detach only, no unlink
            board.beat(0)  # segment must still be alive
        finally:
            board.close()

    def test_create_rejects_empty_board(self):
        with pytest.raises(ValueError):
            HeartbeatBoard.create(0)


class TestWatchdog:
    def test_hang_heals_within_timeout_not_wedge(self):
        """A 60s wedge heals in ~hang_timeout, with correct results."""
        items = list(range(6))
        plan = FaultPlan([FaultSpec("executor.hang", at_call=1,
                                    payload={"seconds": WEDGE_S})])
        with armed(plan):
            with ProcessBackend(workers=2, seed=0, max_crash_retries=2,
                                hang_timeout=1.0) as ex:
                t0 = time.monotonic()
                out = ex.map(_cube, items, label="hangmap")
                wall = time.monotonic() - t0
        assert out == [i ** 3 for i in items]
        assert wall < WEDGE_S / 4  # healed by the watchdog, not the wedge
        assert ex.hangs_detected >= 1
        assert ex.live_workers >= 1  # degraded like a crash
        assert plan.fired == [("executor.hang", 1)]

    def test_slow_worker_survives_watchdog(self):
        """A beating-but-late worker must never be killed."""
        items = list(range(4))
        plan = FaultPlan([FaultSpec("executor.slow", at_call=0,
                                    payload={"seconds": 1.2})])
        with armed(plan):
            with ProcessBackend(workers=2, seed=0,
                                hang_timeout=0.5) as ex:
                out = ex.map(_cube, items, label="slowmap")
        assert out == [i ** 3 for i in items]
        assert ex.hangs_detected == 0
        assert ex.live_workers == 2  # nobody was killed
        assert plan.fired == [("executor.slow", 0)]

    def test_repeated_hangs_escalate_as_worker_crash_error(self):
        """Hangs exhaust the same retry budget as crashes."""
        plan = FaultPlan([FaultSpec("executor.hang", at_call=0, count=50,
                                    payload={"seconds": WEDGE_S})])
        with armed(plan):
            with ProcessBackend(workers=2, seed=0, max_crash_retries=1,
                                hang_timeout=0.5) as ex:
                with pytest.raises(WorkerCrashError) as ei:
                    ex.map(_cube, list(range(4)), label="doomed")
        assert ei.value.crashes == 2
        assert ex.hangs_detected >= 2

    def test_disarmed_watchdog_runs_clean(self):
        """hang_timeout=None: no board, no thread, identical results."""
        with ProcessBackend(workers=2, seed=0) as ex:
            assert ex.map(_cube, list(range(5))) == [i ** 3 for i in range(5)]
            assert ex.hangs_detected == 0

    def test_hang_timeout_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=2, hang_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessBackend(workers=2, hang_timeout=-1.0)

    def test_results_identical_with_and_without_watchdog(self):
        items = list(range(8))
        with ProcessBackend(workers=2, seed=7) as plain:
            ref = plain.map(_cube, items)
        with ProcessBackend(workers=2, seed=7, hang_timeout=5.0) as armed_ex:
            out = armed_ex.map(_cube, items)
        assert out == ref
        assert armed_ex.hangs_detected == 0
