"""Torn-write / ENOSPC hardening of every persistence path.

Three subsystems persist state -- checkpoint rotation, tuning cache,
resilience event log -- and each must survive a disk that fills up or a
writer that dies mid-write: the previous artifact stays intact on
ENOSPC, a torn artifact is detected and degraded past on readback, and
no path ever crashes the run over lost telemetry.
"""

from __future__ import annotations

import errno
import json

import numpy as np
import pytest

from repro.core.mesh import DCMESHConfig, DCMESHSimulation
from repro.core.timescale import TimescaleSplit
from repro.grids.grid import Grid3D
from repro.pseudo.elements import get_species
from repro.resilience.atomicio import atomic_write_bytes, atomic_write_text
from repro.resilience.checkpointing import (
    CheckpointCorruptError,
    list_checkpoints,
    restore_newest_verified,
    sidecar_path,
    verify_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultSpec, armed, disarm
from repro.resilience.supervisor import ResilienceLog, read_event_log
from repro.tuning.cache import TuningCache
from repro.tuning.registry import default_registry


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


def _make_sim() -> DCMESHSimulation:
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=42,
    )
    return DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        config=config, buffer_width=2,
    )


class TestAtomicIO:
    def test_write_and_replace(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_enospc_leaves_previous_bytes_intact(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "good", fault_prefix="cache")
        plan = FaultPlan([FaultSpec("cache.enospc", at_call=0)])
        with armed(plan):
            with pytest.raises(OSError) as ei:
                atomic_write_text(path, "never-lands", fault_prefix="cache")
        assert ei.value.errno == errno.ENOSPC
        assert path.read_text() == "good"
        assert list(tmp_path.iterdir()) == [path]

    def test_torn_write_truncates_payload(self, tmp_path):
        path = tmp_path / "f.bin"
        plan = FaultPlan([FaultSpec("cache.torn_write", at_call=0,
                                    payload={"keep_fraction": 0.25})])
        with armed(plan):
            atomic_write_bytes(path, b"x" * 100, fault_prefix="cache")
        assert path.read_bytes() == b"x" * 25

    def test_real_write_failure_cleans_temp(self, tmp_path, monkeypatch):
        """A genuine mid-write failure removes the temp and re-raises."""
        import os as os_mod

        path = tmp_path / "f.json"
        atomic_write_text(path, "good")
        real_fsync = os_mod.fsync

        def dying_fsync(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.resilience.atomicio.os.fsync", dying_fsync)
        with pytest.raises(OSError):
            atomic_write_text(path, "torn")
        monkeypatch.setattr("repro.resilience.atomicio.os.fsync", real_fsync)
        assert path.read_text() == "good"
        assert list(tmp_path.iterdir()) == [path]


class TestCheckpointFaults:
    def test_enospc_preserves_previous_generations(self, tmp_path):
        sim = _make_sim()
        first = write_checkpoint(sim, tmp_path)
        sim.run(1)
        plan = FaultPlan([FaultSpec("checkpoint.enospc", at_call=0)])
        with armed(plan):
            with pytest.raises(OSError) as ei:
                write_checkpoint(sim, tmp_path)
        assert ei.value.errno == errno.ENOSPC
        assert list_checkpoints(tmp_path) == [first]
        verify_checkpoint(first)  # previous generation still pristine
        assert not list(tmp_path.glob(".tmp-*"))

    def test_torn_archive_fails_verification(self, tmp_path):
        sim = _make_sim()
        plan = FaultPlan([FaultSpec("checkpoint.torn_write", at_call=0,
                                    payload={"keep_fraction": 0.5})])
        with armed(plan):
            path = write_checkpoint(sim, tmp_path)
        meta = json.loads(sidecar_path(path).read_text())
        assert path.stat().st_size < meta["nbytes"]  # really torn
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(path)

    def test_restore_falls_back_past_torn_generation(self, tmp_path):
        """The newest generation tears; restore degrades to the previous."""
        sim = _make_sim()
        good = write_checkpoint(sim, tmp_path)
        good_step = sim.step_count
        sim.run(1)
        plan = FaultPlan([FaultSpec("checkpoint.torn_write", at_call=0)])
        with armed(plan):
            torn = write_checkpoint(sim, tmp_path)

        fresh = _make_sim()
        path, meta, skipped = restore_newest_verified(fresh, tmp_path)
        assert path == good
        assert skipped == [torn]
        assert fresh.step_count == good_step
        assert meta["step"] == good_step

    def test_restore_raises_when_all_generations_torn(self, tmp_path):
        sim = _make_sim()
        plan = FaultPlan([FaultSpec("checkpoint.torn_write", at_call=0,
                                    count=10)])
        with armed(plan):
            write_checkpoint(sim, tmp_path)
        with pytest.raises(CheckpointCorruptError, match="no usable"):
            restore_newest_verified(_make_sim(), tmp_path)

    def test_mid_write_kill_leaves_rotation_loadable(self, tmp_path):
        """A .tmp- file from a killed writer is invisible to the rotation."""
        sim = _make_sim()
        good = write_checkpoint(sim, tmp_path)
        litter = tmp_path / ".tmp-ckpt-00000099.npz"
        litter.write_bytes(b"half a checkpoint")
        assert list_checkpoints(tmp_path) == [good]
        fresh = _make_sim()
        path, _, skipped = restore_newest_verified(fresh, tmp_path)
        assert path == good
        assert skipped == []


class TestTuningCacheFaults:
    def _tunable(self):
        reg = default_registry()
        return reg.get(reg.ids()[0])

    def _populate(self, cache):
        t = self._tunable()
        cache.put(t, t.canonical_defaults(), speedup=1.5,
                  strategy="exhaustive", gate_error=0.0)

    def test_enospc_leaves_previous_cache_intact(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        self._populate(cache)
        cache.save()
        before = path.read_bytes()

        plan = FaultPlan([FaultSpec("cache.enospc", at_call=0)])
        with armed(plan):
            with pytest.raises(OSError) as ei:
                cache.save()
        assert ei.value.errno == errno.ENOSPC
        assert path.read_bytes() == before
        assert TuningCache(path).load_error is None  # still loads clean

    def test_torn_cache_degrades_to_empty_and_heals(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        self._populate(cache)
        plan = FaultPlan([FaultSpec("cache.torn_write", at_call=0)])
        with armed(plan):
            cache.save()  # publishes truncated JSON

        reloaded = TuningCache(path)
        assert reloaded.load_error is not None  # corruption surfaced
        assert len(reloaded) == 0  # treated as missing -> re-tune
        self._populate(reloaded)
        reloaded.save()  # next save heals the file
        healed = TuningCache(path)
        assert healed.load_error is None
        assert len(healed) == 1

    def test_session_survives_cache_enospc(self, tmp_path):
        """A full disk voids persistence, never the tuning that ran."""
        from repro.tuning.session import TuningSession

        cache = TuningCache(tmp_path / "cache.json")
        session = TuningSession(cache=cache)
        tid = default_registry().ids()[0]
        plan = FaultPlan([FaultSpec("cache.enospc", at_call=0, count=10)])
        with armed(plan):
            result = session.run(select=[tid], repeats=1)
        assert result.cache_save_error is not None
        assert "ENOSPC" in result.cache_save_error or \
            "No space left" in result.cache_save_error
        assert result.tuned == 1  # the winner still applied in-process
        assert not (tmp_path / "cache.json").exists()


class TestEventLogFaults:
    def test_enospc_disables_mirror_keeps_memory(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = ResilienceLog(path)
        log.record("checkpoint", step=1)
        plan = FaultPlan([FaultSpec("eventlog.enospc", at_call=0)])
        with armed(plan):
            log.record("fault", step=2)  # mirror write fails
        log.record("restore", step=2)  # mirroring now off, still recorded

        kinds = [e["event"] for e in log.events]
        assert kinds == ["checkpoint", "fault", "log_write_failed", "restore"]
        assert log.count("log_write_failed") == 1
        # The file holds only what landed before the disk filled.
        on_disk = read_event_log(path)
        assert [e["event"] for e in on_disk] == ["checkpoint"]

    def test_torn_line_skipped_on_readback(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = ResilienceLog(path)
        log.record("checkpoint", step=1)
        plan = FaultPlan([FaultSpec("eventlog.torn_write", at_call=0)])
        with armed(plan):
            log.record("fault", step=2)  # line torn mid-append
        log.record("restore", step=2)

        events = read_event_log(path)
        kinds = [e["event"] for e in events]
        # The torn "fault" line (and the "restore" line glued onto its
        # tail) fail to decode; the intact prefix survives.
        assert "checkpoint" in kinds
        assert len(events) < 3
        # In-memory record is complete regardless.
        assert [e["event"] for e in log.events] == \
            ["checkpoint", "fault", "restore"]

    def test_read_event_log_missing_file(self, tmp_path):
        assert read_event_log(tmp_path / "absent.jsonl") == []
