"""Fault-injection registry tests: deterministic, no-op when disarmed."""

import numpy as np
import pytest

from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    RankFailure,
    active_plan,
    arm,
    armed,
    disarm,
    fault_point,
)


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    disarm()
    yield
    disarm()


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("not.a.site")

    def test_negative_at_call_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("lfd.nan", at_call=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("lfd.nan", count=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("lfd.nan", probability=1.5)

    def test_all_known_sites_constructible(self):
        for site in KNOWN_SITES:
            assert FaultSpec(site).site == site


class TestPlanSemantics:
    def test_disarmed_is_noop(self):
        assert active_plan() is None
        assert fault_point("lfd.nan") is None

    def test_fires_on_exact_call_window(self):
        plan = FaultPlan([FaultSpec("lfd.nan", at_call=2, count=2)])
        arm(plan)
        hits = [fault_point("lfd.nan") is not None for _ in range(6)]
        assert hits == [False, False, True, True, False, False]
        assert plan.fired == [("lfd.nan", 2), ("lfd.nan", 3)]
        assert plan.calls("lfd.nan") == 6

    def test_sites_count_independently(self):
        plan = arm(FaultPlan([FaultSpec("device.oom", at_call=0)]))
        assert fault_point("lfd.nan") is None  # does not consume device.oom
        assert fault_point("device.oom") is not None
        assert plan.calls("lfd.nan") == 1
        assert plan.calls("device.oom") == 1

    def test_probability_is_seed_deterministic(self):
        def firings(seed):
            plan = FaultPlan(
                [FaultSpec("comm.drop", probability=0.3)], seed=seed
            )
            arm(plan)
            out = [fault_point("comm.drop") is not None for _ in range(50)]
            disarm()
            return out

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)

    def test_reset_rewinds_counters_and_rng(self):
        plan = arm(FaultPlan([FaultSpec("lfd.nan", at_call=0)]))
        assert fault_point("lfd.nan") is not None
        plan.reset()
        assert plan.calls("lfd.nan") == 0
        assert plan.fired == []
        assert fault_point("lfd.nan") is not None

    def test_armed_context_restores_previous(self):
        outer = arm(FaultPlan())
        with armed(FaultPlan([FaultSpec("lfd.nan")])) as inner:
            assert active_plan() is inner
        assert active_plan() is outer

    def test_add_is_chainable(self):
        plan = FaultPlan().add("lfd.nan", at_call=1).add("device.oom")
        assert [s.site for s in plan.specs] == ["lfd.nan", "device.oom"]


class TestWiredSites:
    def test_device_oom_burst(self):
        from repro.device import A100, DeviceAllocator, DeviceMemoryError

        alloc = DeviceAllocator(A100)
        with armed(FaultPlan([FaultSpec("device.oom", at_call=1, count=2)])):
            alloc.allocate(64)  # arrival 0: fine
            with pytest.raises(DeviceMemoryError, match="injected"):
                alloc.allocate(64)
            with pytest.raises(DeviceMemoryError, match="injected"):
                alloc.allocate(64)
            alloc.allocate(64)  # burst over

    def test_comm_drop_loses_message(self):
        from repro.parallel import SimComm

        comm = SimComm(2)
        with armed(FaultPlan([FaultSpec("comm.drop", at_call=0)])):
            comm.send(np.arange(3), 0, 1)
        assert comm.pending() == 0
        with pytest.raises(RuntimeError, match="no pending message"):
            comm.recv(0, 1)

    def test_comm_dup_duplicates_message(self):
        from repro.parallel import SimComm

        comm = SimComm(2)
        with armed(FaultPlan([FaultSpec("comm.dup", at_call=0)])):
            comm.send(42, 0, 1)
        assert comm.pending() == 2
        assert comm.recv(0, 1) == 42
        assert comm.recv(0, 1) == 42

    def test_comm_rank_failure_in_collectives(self):
        from repro.parallel import SimComm

        comm = SimComm(4)
        plan = FaultPlan([
            FaultSpec("comm.rank_fail", count=2, payload={"rank": 3}),
        ])
        with armed(plan):
            with pytest.raises(RankFailure, match="rank 3.*bcast"):
                comm.bcast(1.0)
            with pytest.raises(RankFailure, match="allreduce"):
                comm.allreduce([1.0, 2.0, 3.0, 4.0])
            # Window consumed: collectives work again.
            assert comm.allreduce([1.0, 2.0, 3.0, 4.0]) == [10.0] * 4

    def test_scf_divergence_site(self, grid8):
        from repro.pseudo import get_species
        from repro.qxmd.scf import scf_solve
        from repro.resilience.guards import SCFDivergenceError

        pos = np.array([[2.4, 2.4, 2.4]])
        species = [get_species("H")]
        with armed(FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=1)])):
            with pytest.raises(SCFDivergenceError, match="cycle 2"):
                scf_solve(grid8, pos, species, norb=2)

    def test_lfd_nan_site_poisons_chosen_orbital(self, grid8, rng):
        from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 3, rng)
        prop = QDPropagator(wf, np.zeros(grid8.shape), PropagatorConfig(dt=0.05))
        plan = FaultPlan([
            FaultSpec("lfd.nan", at_call=2, payload={"orbital": 1}),
        ])
        with armed(plan):
            prop.run(3)
        assert np.all(np.isfinite(wf.psi[..., 0]))
        assert np.all(np.isnan(wf.psi[..., 1]))
