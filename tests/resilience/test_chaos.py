"""Chaos acceptance harness: mixed seeded faults, exact physics.

One 20-step supervised trajectory on the process backend absorbs, in a
single run, every fault class this repo can inject -- a worker crash, a
wedged worker (healed by the heartbeat watchdog), a slow-but-alive
worker (spared by the watchdog), a torn checkpoint archive (restored
past via generation fallback), and a torn event-log line -- and must
still reproduce the fault-free serial trajectory to <= 1e-12.

The fault schedule is deterministic: an *empty* armed plan on the
fault-free run counts site arrivals (an empty plan counts but never
fires), and the chaos plan pins ``at_call`` indices inside those
observed totals, so every injected fault provably fires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mesh import DCMESHConfig, DCMESHSimulation
from repro.core.timescale import TimescaleSplit
from repro.grids.grid import Grid3D
from repro.parallel.backends import ProcessBackend
from repro.pseudo.elements import get_species
from repro.resilience.faults import FaultPlan, FaultSpec, armed, disarm
from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

NSTEPS = 20
CHECKPOINT_EVERY = 5
#: Injected wedge: long enough that only the watchdog explains survival.
WEDGE_S = 30.0


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


def _make_sim(executor=None) -> DCMESHSimulation:
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=42,
    )
    return DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        config=config, buffer_width=2, executor=executor,
    )


def _supervised_run(tmp_path, subdir, plan, hang_timeout=None,
                    max_crash_retries=2):
    with ProcessBackend(workers=2, seed=42,
                        max_crash_retries=max_crash_retries,
                        hang_timeout=hang_timeout) as ex:
        sim = _make_sim(ex)
        sup = RunSupervisor(
            sim, tmp_path / subdir,
            SupervisorConfig(
                checkpoint_every=CHECKPOINT_EVERY,
                log_path=tmp_path / f"{subdir}-events.jsonl",
            ),
        )
        with armed(plan):
            records = sup.run(NSTEPS)
    return sim, sup, records


def test_chaos_trajectory_matches_fault_free(tmp_path):
    # ---- fault-free references: serial, and process (arrival probe). --
    ref = _make_sim()
    ref_records = ref.run(NSTEPS)

    probe = FaultPlan([])  # counts arrivals, never fires
    _, _, probe_records = _supervised_run(tmp_path, "probe", probe)
    arrivals = dict(probe._calls)
    # Sanity: the probe itself matches serial (backend equivalence).
    np.testing.assert_allclose(
        [r.band_energy for r in probe_records],
        [r.band_energy for r in ref_records],
        rtol=0.0, atol=1e-12,
    )

    # ---- the chaos schedule, pinned inside observed arrival totals. ---
    nchunk = arrivals["executor.worker_crash"]  # one arrival per chunk
    assert nchunk >= 10, arrivals
    nckpt = arrivals["checkpoint.corrupt"]  # one arrival per write
    assert nckpt >= NSTEPS // CHECKPOINT_EVERY, arrivals
    plan = FaultPlan([
        # A slow worker early: beats through its delay, must survive.
        FaultSpec("executor.slow", at_call=nchunk // 8,
                  payload={"seconds": 0.6}),
        # A wedged worker at ~1/3: killed by the watchdog, chunk healed.
        FaultSpec("executor.hang", at_call=nchunk // 3,
                  payload={"seconds": WEDGE_S}),
        # A hard crash at ~2/3: classic broken-pool heal.
        FaultSpec("executor.worker_crash", at_call=(2 * nchunk) // 3),
        # The middle checkpoint generation is published torn ...
        FaultSpec("checkpoint.torn_write", at_call=nckpt // 2,
                  payload={"keep_fraction": 0.5}),
        # ... and a divergence in a later segment forces a restore,
        # which must fall back past the torn generation.  One arrival
        # per MD step, so index nckpt//2 * CHECKPOINT_EVERY + 2 lands
        # in the segment after the torn write.
        FaultSpec("qxmd.scf_diverge",
                  at_call=(nckpt // 2) * CHECKPOINT_EVERY + 2),
        # Telemetry loss must never touch physics.
        FaultSpec("eventlog.torn_write", at_call=3),
    ])

    sim, sup, records = _supervised_run(tmp_path, "chaos", plan,
                                        hang_timeout=1.0)

    # ---- every fault class really fired ... ----
    fired_sites = {site for site, _ in plan.fired}
    assert fired_sites == {
        "executor.slow", "executor.hang", "executor.worker_crash",
        "checkpoint.torn_write", "qxmd.scf_diverge",
        "eventlog.torn_write",
    }, plan.fired
    # ... and the recovery machinery it targets really engaged.
    assert sim.executor.hangs_detected >= 1  # watchdog killed the wedge
    assert sup.log.count("restore") >= 1  # supervisor replayed a segment
    assert sup.log.count("corrupt_checkpoint") >= 1  # torn gen skipped
    # The torn log line degrades the *file* mirror only: the in-memory
    # record is complete and the surviving lines still parse.
    from repro.resilience.supervisor import read_event_log

    on_disk = read_event_log(tmp_path / "chaos-events.jsonl")
    assert 0 < len(on_disk) < len(sup.log.events)

    # ---- physics is exactly the fault-free trajectory. ----
    assert len(records) == len(ref_records)
    np.testing.assert_allclose(
        [r.band_energy for r in records],
        [r.band_energy for r in ref_records],
        rtol=0.0, atol=1e-12,
    )
    np.testing.assert_allclose(
        [r.temperature for r in records],
        [r.temperature for r in ref_records],
        rtol=0.0, atol=1e-12,
    )
    np.testing.assert_allclose(
        sim.md_state.positions, ref.md_state.positions,
        rtol=0.0, atol=1e-12,
    )
    np.testing.assert_allclose(
        sim.md_state.velocities, ref.md_state.velocities,
        rtol=0.0, atol=1e-12,
    )
