"""RunSupervisor tests: recovery per fault class, abort, degradation."""

import json

import numpy as np
import pytest

from repro.core import TimescaleSplit
from repro.resilience.checkpointing import list_checkpoints
from repro.resilience.faults import FaultPlan, FaultSpec, armed, disarm
from repro.resilience.supervisor import (
    ResilienceLog,
    RunSupervisor,
    SupervisorAbort,
    SupervisorConfig,
)

from tests.core.test_mesh import make_sim

#: Cheap electronic settings for recovery tests (same dt_qd = 0.1 a.u.
#: as the default config, so the splitting stays stable).
CHEAP = dict(timescale=TimescaleSplit(dt_md=0.5, n_qd=5))


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


class TestConfig:
    def test_defaults_valid(self):
        SupervisorConfig()

    @pytest.mark.parametrize("kwargs", [
        dict(checkpoint_every=0),
        dict(max_retries=-1),
        dict(keep_checkpoints=0),
        dict(backoff_base=-0.1),
        dict(degrade_after=0),
        dict(degrade_mode="panic"),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestResilienceLog:
    def test_counts_and_events(self):
        log = ResilienceLog()
        log.record("fault", step=3)
        log.record("fault", step=4)
        log.record("restore", step=2)
        assert log.count("fault") == 2
        assert log.count("restore") == 1
        assert log.count("missing") == 0
        assert all("wall_time" in e for e in log.events)

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = ResilienceLog(path)
        log.record("checkpoint", step=1)
        log.record("fault", step=2, error="X")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["error"] == "X"

    def test_to_json_round_trips(self):
        log = ResilienceLog()
        log.record("abort", step=9)
        assert json.loads(log.to_json())[0]["event"] == "abort"


class TestSupervisedEqualsPlain:
    def test_no_plan_is_bit_identical(self, tmp_path):
        """Supervision without faults must not perturb the trajectory."""
        ref = make_sim(seed=7, **CHEAP)
        ref.run(3)

        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=2))
        records = sup.run(3)

        assert np.array_equal(sim.md_state.positions, ref.md_state.positions)
        assert np.array_equal(sim.md_state.velocities, ref.md_state.velocities)
        for a, b in zip(sim.dc.states, ref.dc.states):
            assert np.array_equal(a.occupations, b.occupations)
            assert np.array_equal(a.wf.psi, b.wf.psi)
        assert [r.step for r in records] == [1, 2, 3]
        assert sup.log.count("fault") == 0
        # Generation 0 plus one per completed segment (2 segments).
        assert sup.log.count("checkpoint") == 3


class TestRecoveryPerFaultClass:
    """One supervised recovery per injected fault class (ISSUE matrix)."""

    def _reference(self, seed=7):
        ref = make_sim(seed=seed, **CHEAP)
        ref.run(3)
        return ref

    def _assert_matches(self, sim, ref):
        assert np.array_equal(sim.md_state.positions, ref.md_state.positions)
        for a, b in zip(sim.dc.states, ref.dc.states):
            assert np.array_equal(a.occupations, b.occupations)

    def test_scf_divergence(self, tmp_path):
        ref = self._reference()
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        # 2 scf arrivals per MD step: arrival 2 is step 2, cycle 1.
        with armed(FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=2)])):
            sup.run(3)
        assert sup.log.count("fault") == 1
        assert sup.log.count("recovered") == 1
        self._assert_matches(sim, ref)

    def test_lfd_nan_caught_by_guard(self, tmp_path):
        ref = self._reference()
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        # 10 lfd arrivals per MD step (n_qd=5 x 2 domains): arrival 12
        # poisons step 2, domain 0, sub-step 3; the guard trips there.
        with armed(FaultPlan([FaultSpec("lfd.nan", at_call=12)])):
            sup.run(3)
        faults = [e for e in sup.log.events if e["event"] == "fault"]
        assert [f["error"] for f in faults] == ["NumericalDivergenceError"]
        self._assert_matches(sim, ref)

    def test_device_oom(self, tmp_path):
        from repro.device import VirtualGPU

        sim = make_sim(device=VirtualGPU(), seed=7, **CHEAP)
        ref = make_sim(device=VirtualGPU(), seed=7, **CHEAP)
        ref.run(3)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        # 2 handshake-staging allocations per MD step: arrival 2 = step 2.
        with armed(FaultPlan([FaultSpec("device.oom", at_call=2)])):
            sup.run(3)
        faults = [e for e in sup.log.events if e["event"] == "fault"]
        assert [f["error"] for f in faults] == ["DeviceMemoryError"]
        self._assert_matches(sim, ref)

    def test_corrupt_newest_falls_back_a_generation(self, tmp_path):
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        sup.run(2)
        newest = list_checkpoints(tmp_path)[-1]
        raw = bytearray(newest.read_bytes())
        raw[50] ^= 0xFF
        newest.write_bytes(bytes(raw))
        sup._restore()
        assert sim.step_count == 1  # previous generation
        assert sup.log.count("corrupt_checkpoint") == 1
        assert sup.log.count("restore") == 1

    def test_stale_future_generations_pruned(self, tmp_path):
        """A reused checkpoint dir must not let a recovery restore into a
        previous run's future."""
        old = make_sim(seed=3, **CHEAP)
        old_sup = RunSupervisor(
            old, tmp_path, SupervisorConfig(checkpoint_every=1)
        )
        old_sup.run(3)  # leaves generations up to step 3

        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        with armed(FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=0)])):
            sup.run(2)
        assert sup.log.count("stale_checkpoint") == 3
        # The recovery restored the fresh generation 0, not old step 3.
        restores = [e for e in sup.log.events if e["event"] == "restore"]
        assert [e["step"] for e in restores] == [0]
        assert sim.step_count == 2
        ref = make_sim(seed=7, **CHEAP)
        ref.run(2)
        self._assert_matches(sim, ref)

    def test_all_generations_corrupt_aborts(self, tmp_path):
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(checkpoint_every=1))
        sup.run(1)
        for path in list_checkpoints(tmp_path):
            raw = bytearray(path.read_bytes())
            raw[50] ^= 0xFF
            path.write_bytes(bytes(raw))
        with pytest.raises(SupervisorAbort, match="no usable checkpoint"):
            sup._restore()


class TestAbort:
    def test_persistent_fault_exhausts_retries(self, tmp_path):
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(
            sim, tmp_path, SupervisorConfig(checkpoint_every=1, max_retries=1)
        )
        plan = FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=0, count=100)])
        with armed(plan):
            with pytest.raises(SupervisorAbort, match="failed 2 time"):
                sup.run(3)
        assert sup.log.count("fault") == 2
        assert sup.log.count("abort") == 1
        assert sup.total_retries == 2


class TestDegradation:
    def test_double_nqd_after_repeated_divergence(self, tmp_path):
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(
            sim,
            tmp_path,
            SupervisorConfig(
                checkpoint_every=1, degrade_mode="double_nqd", degrade_after=1
            ),
        )
        with armed(FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=2)])):
            records = sup.run(3)
        assert sup.log.count("degrade") == 1
        assert sim.config.timescale.n_qd == 10  # doubled from 5
        assert sim.config.timescale.dt_md == 0.5  # unchanged
        assert len(records) == 3  # still completed the run

    def test_halve_dt_mode(self, tmp_path):
        sim = make_sim(seed=7, **CHEAP)
        sup = RunSupervisor(
            sim,
            tmp_path,
            SupervisorConfig(
                checkpoint_every=1, degrade_mode="halve_dt", degrade_after=1
            ),
        )
        with armed(FaultPlan([FaultSpec("qxmd.scf_diverge", at_call=2)])):
            sup.run(3)
        assert sim.config.timescale.dt_md == 0.25
        assert sim.config.timescale.n_qd == 5

    def test_degradation_skips_non_numerical_faults(self, tmp_path):
        from repro.device import VirtualGPU

        sim = make_sim(device=VirtualGPU(), seed=7, **CHEAP)
        sup = RunSupervisor(
            sim,
            tmp_path,
            SupervisorConfig(
                checkpoint_every=1, degrade_mode="halve_dt", degrade_after=1
            ),
        )
        with armed(FaultPlan([FaultSpec("device.oom", at_call=2)])):
            sup.run(3)
        assert sup.log.count("degrade") == 0
        assert sim.config.timescale.dt_md == 0.5


class TestAcceptanceScenario:
    def test_scf_plus_nan_plus_corrupt_checkpoint(self, tmp_path):
        """ISSUE acceptance: one SCF divergence, one NaN injection and a
        corrupted newest checkpoint, all in one supervised run, ending in
        the same final state as the fault-free trajectory."""
        ref = make_sim(seed=5)
        ref.excite_carrier(0)
        ref.run(6)

        sim = make_sim(seed=5)
        sim.excite_carrier(0)
        sup = RunSupervisor(
            sim,
            tmp_path,
            SupervisorConfig(
                checkpoint_every=2,
                max_retries=3,
                log_path=tmp_path / "events.jsonl",
            ),
        )
        plan = FaultPlan([
            # Corrupts the step-2 generation as it is published.
            FaultSpec("checkpoint.corrupt", at_call=1),
            # 2 scf arrivals/step: arrival 4 diverges step 3, forcing the
            # restore to skip the corrupt newest generation.
            FaultSpec("qxmd.scf_diverge", at_call=4),
            # 40 lfd arrivals/step: fires mid step 5, after recovery.
            FaultSpec("lfd.nan", at_call=250),
        ])
        with armed(plan):
            records = sup.run(6)

        kinds = [e["event"] for e in sup.log.events]
        assert sup.log.count("fault") == 2
        assert sup.log.count("recovered") == 2
        assert sup.log.count("corrupt_checkpoint") >= 1
        # The corrupt generation was detected during the first recovery.
        assert kinds.index("corrupt_checkpoint") < kinds.index("restore")
        assert plan.fired  # every armed window actually fired
        assert {site for site, _ in plan.fired} == {
            "checkpoint.corrupt", "qxmd.scf_diverge", "lfd.nan"
        }

        # Exact -- not approximate -- match with the fault-free run.
        assert [r.step for r in records] == [1, 2, 3, 4, 5, 6]
        assert np.array_equal(sim.md_state.positions, ref.md_state.positions)
        assert np.array_equal(sim.md_state.velocities, ref.md_state.velocities)
        for a, b in zip(sim.dc.states, ref.dc.states):
            assert np.array_equal(a.occupations, b.occupations)

        # The JSON-lines event log mirrors the in-memory events.
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == kinds


class TestCLI:
    def test_supervised_run_flags(self, tmp_path, capsys):
        from repro.cli import main

        ckpt_dir = tmp_path / "ckpts"
        log = tmp_path / "events.jsonl"
        code = main([
            "run", "--steps", "2", "--n-qd", "5", "--dt-md", "0.5",
            "--checkpoint-every", "1", "--max-retries", "2",
            "--checkpoint-dir", str(ckpt_dir),
            "--resilience-log", str(log),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "supervised run" in out
        assert "resilience: 0 fault(s)" in out
        assert list_checkpoints(ckpt_dir)
        events = [json.loads(l) for l in log.read_text().splitlines()]
        # A fault-free run logs only the active-tuning-profile stamp
        # (written at run start for resume provenance) and checkpoints.
        assert {e["event"] for e in events} == {"tuning_profile", "checkpoint"}
        assert sum(e["event"] == "checkpoint" for e in events) == len(events) - 1

    def test_unsupervised_by_default(self, capsys):
        from repro.cli import main

        assert main(["run", "--steps", "1", "--n-qd", "5"]) == 0
        out = capsys.readouterr().out
        assert "resilience" not in out
