"""Hardened-checkpoint tests: atomicity, integrity, rotation, round-trip."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.checkpointing import (
    CheckpointCorruptError,
    checkpoint_path,
    list_checkpoints,
    load_verified,
    sidecar_path,
    verify_checkpoint,
    write_checkpoint,
)

from tests.core.test_mesh import make_sim


@pytest.fixture(scope="module")
def warm_sim():
    """One simulation advanced two steps (shared, read-only per test)."""
    sim = make_sim(seed=13)
    sim.excite_carrier(0)
    sim.run(2)
    return sim


class TestWriteAndVerify:
    def test_write_publishes_archive_and_sidecar(self, warm_sim, tmp_path):
        path = write_checkpoint(warm_sim, tmp_path)
        assert path == checkpoint_path(tmp_path, warm_sim.step_count)
        assert path.is_file()
        meta = json.loads(sidecar_path(path).read_text())
        assert meta["step"] == warm_sim.step_count
        assert meta["time"] == pytest.approx(warm_sim.time)
        assert len(meta["sha256"]) == 64

    def test_no_temporary_files_left(self, warm_sim, tmp_path):
        write_checkpoint(warm_sim, tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []

    def test_verify_accepts_good_checkpoint(self, warm_sim, tmp_path):
        path = write_checkpoint(warm_sim, tmp_path)
        meta = verify_checkpoint(path)
        assert meta["step"] == warm_sim.step_count

    def test_verify_detects_corruption(self, warm_sim, tmp_path):
        path = write_checkpoint(warm_sim, tmp_path)
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            verify_checkpoint(path)

    def test_verify_requires_sidecar(self, warm_sim, tmp_path):
        path = write_checkpoint(warm_sim, tmp_path)
        sidecar_path(path).unlink()
        with pytest.raises(CheckpointCorruptError, match="sidecar"):
            verify_checkpoint(path)

    def test_missing_archive_reported(self, tmp_path):
        with pytest.raises(CheckpointCorruptError, match="does not exist"):
            verify_checkpoint(tmp_path / "ckpt-00000001.npz")

    def test_corruption_fault_site_defeats_digest(self, warm_sim, tmp_path):
        from repro.resilience.faults import FaultPlan, FaultSpec, armed

        with armed(FaultPlan([FaultSpec("checkpoint.corrupt")])):
            path = write_checkpoint(warm_sim, tmp_path)
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(path)


class TestRotation:
    def test_keeps_last_k_generations(self, tmp_path):
        sim = make_sim(seed=3)
        write_checkpoint(sim, tmp_path, keep=2)
        for _ in range(3):
            sim.md_step()
            write_checkpoint(sim, tmp_path, keep=2)
        kept = list_checkpoints(tmp_path)
        assert [p.name for p in kept] == ["ckpt-00000002.npz", "ckpt-00000003.npz"]
        # Sidecars rotate with their archives.
        sidecars = sorted(p.name for p in tmp_path.glob("*.json"))
        assert sidecars == ["ckpt-00000002.npz.json", "ckpt-00000003.npz.json"]

    def test_list_is_ordered_oldest_first(self, tmp_path):
        sim = make_sim(seed=3)
        write_checkpoint(sim, tmp_path, keep=5)
        sim.md_step()
        write_checkpoint(sim, tmp_path, keep=5)
        steps = [int(p.name[5:13]) for p in list_checkpoints(tmp_path)]
        assert steps == sorted(steps)

    def test_empty_directory(self, tmp_path):
        assert list_checkpoints(tmp_path) == []
        assert list_checkpoints(tmp_path / "missing") == []


class TestRoundtripProperty:
    def test_restart_bit_identical_including_rng(self, tmp_path):
        """2 + restore + 2 equals 4 straight: positions, orbitals, RNG."""
        ref = make_sim(seed=21)
        ref.excite_carrier(0)
        ref.run(4)

        work = make_sim(seed=21)
        work.excite_carrier(0)
        work.run(2)
        path = write_checkpoint(work, tmp_path)

        resumed = make_sim(seed=21)
        resumed.rng.random()  # desynchronize on purpose; restore must fix it
        meta = load_verified(resumed, path)
        assert meta["step"] == 2
        resumed.run(2)

        assert np.array_equal(resumed.md_state.positions, ref.md_state.positions)
        assert np.array_equal(resumed.md_state.velocities, ref.md_state.velocities)
        for a, b in zip(resumed.dc.states, ref.dc.states):
            assert np.array_equal(a.occupations, b.occupations)
            assert np.array_equal(a.wf.psi, b.wf.psi)
        assert resumed.rng.random() == ref.rng.random()


class TestLoadValidatesBeforeApply:
    def _tampered_copy(self, src, dst, **overrides):
        with np.load(src, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays.update(overrides)
        np.savez_compressed(dst, **arrays)
        return dst

    def test_bad_domain_shape_leaves_sim_untouched(self, warm_sim, tmp_path):
        """A mid-archive shape mismatch must not half-restore the sim."""
        good = save_checkpoint(warm_sim, tmp_path / "good.npz")
        bad = self._tampered_copy(
            good, tmp_path / "bad.npz", occ_1=np.zeros(17)
        )
        victim = make_sim(seed=99)
        victim.excite_carrier(0)
        before_pos = victim.md_state.positions.copy()
        before_step = victim.step_count
        before_psi = victim.dc.states[0].wf.psi.copy()
        before_rng = victim.rng.bit_generator.state
        with pytest.raises(ValueError, match="occupation shape"):
            load_checkpoint(victim, bad)
        # Nothing -- not even the early arrays -- was applied.
        assert np.array_equal(victim.md_state.positions, before_pos)
        assert victim.step_count == before_step
        assert np.array_equal(victim.dc.states[0].wf.psi, before_psi)
        assert victim.rng.bit_generator.state == before_rng
        assert victim.carriers  # pre-existing carriers were not cleared

    def test_missing_domain_array_detected(self, warm_sim, tmp_path):
        good = save_checkpoint(warm_sim, tmp_path / "good.npz")
        with np.load(good, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files if k != "vloc_1"}
        bad = tmp_path / "missing.npz"
        np.savez_compressed(bad, **arrays)
        victim = make_sim(seed=99)
        before_pos = victim.md_state.positions.copy()
        with pytest.raises(ValueError, match="missing array"):
            load_checkpoint(victim, bad)
        assert np.array_equal(victim.md_state.positions, before_pos)

    def test_carrier_out_of_range_detected(self, warm_sim, tmp_path):
        good = save_checkpoint(warm_sim, tmp_path / "good.npz")
        bad = self._tampered_copy(
            good, tmp_path / "badc.npz",
            carrier_0_0=np.zeros(3, dtype=complex),
        )
        victim = make_sim(seed=99)
        with pytest.raises(ValueError, match="amplitude shape"):
            load_checkpoint(victim, bad)
