"""Numerical health-guard tests: typed failures, configurable cadence."""

import numpy as np
import pytest

from repro.resilience.guards import (
    EnergyDriftError,
    GuardConfig,
    HealthGuard,
    NormDriftError,
    NumericalDivergenceError,
    NumericalHealthError,
    SCFDivergenceError,
)


class TestConfig:
    def test_defaults_valid(self):
        HealthGuard(GuardConfig())

    def test_bad_cadence(self):
        with pytest.raises(ValueError):
            GuardConfig(check_every=0)

    def test_bad_tolerances(self):
        with pytest.raises(ValueError):
            GuardConfig(norm_tol=0.0)
        with pytest.raises(ValueError):
            GuardConfig(energy_rel_tol=-1.0)
        with pytest.raises(ValueError):
            GuardConfig(max_abs_energy=0.0)

    def test_exception_taxonomy(self):
        for exc in (NumericalDivergenceError, NormDriftError,
                    EnergyDriftError, SCFDivergenceError):
            assert issubclass(exc, NumericalHealthError)
            assert issubclass(exc, RuntimeError)


class TestArrayChecks:
    def test_finite_array_passes(self):
        HealthGuard().check_array(np.ones(8), "x")

    def test_nan_raises_divergence(self):
        with pytest.raises(NumericalDivergenceError, match="positions"):
            HealthGuard().check_array(np.array([1.0, np.nan]), "positions")

    def test_inf_raises_divergence(self):
        with pytest.raises(NumericalDivergenceError):
            HealthGuard().check_array(np.array([np.inf]), "v")

    def test_complex_nan_detected(self):
        arr = np.ones(4, dtype=np.complex128)
        arr[2] = complex(0.0, np.nan)
        with pytest.raises(NumericalDivergenceError):
            HealthGuard().check_array(arr, "psi")


class TestWavefunctionChecks:
    def test_normalized_wf_passes(self, grid8, rng):
        from repro.lfd import WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 2, rng)
        HealthGuard().check_wavefunction(wf)

    def test_nan_orbital_detected(self, grid8, rng):
        from repro.lfd import WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 2, rng)
        wf.psi[0, 0, 0, 1] = np.nan
        with pytest.raises(NumericalDivergenceError, match="orbitals"):
            HealthGuard().check_wavefunction(wf, where="QD sub-step 3")

    def test_norm_drift_detected(self, grid8, rng):
        from repro.lfd import WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 3, rng)
        wf.psi[..., 2] *= 1.1  # 10% norm drift on the last orbital
        with pytest.raises(NormDriftError, match="orbital 2"):
            HealthGuard(GuardConfig(norm_tol=1e-3)).check_wavefunction(wf)

    def test_norm_check_can_be_disabled(self, grid8, rng):
        from repro.lfd import WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 2, rng)
        wf.psi *= 2.0
        HealthGuard(GuardConfig(check_norms=False)).check_wavefunction(wf)


class TestEnergyChecks:
    def test_steady_energy_passes(self):
        g = HealthGuard()
        for step, e in enumerate((-3.0, -3.01, -2.99)):
            g.check_energy(e, step)

    def test_nonfinite_energy(self):
        with pytest.raises(EnergyDriftError, match="non-finite"):
            HealthGuard().check_energy(float("nan"), 1)

    def test_absolute_cap(self):
        with pytest.raises(EnergyDriftError, match="exceeds"):
            HealthGuard(GuardConfig(max_abs_energy=10.0)).check_energy(11.0, 1)

    def test_relative_jump(self):
        g = HealthGuard(GuardConfig(energy_rel_tol=0.5))
        g.check_energy(-2.0, 1)
        with pytest.raises(EnergyDriftError, match="jumped"):
            g.check_energy(-8.0, 2)

    def test_reset_forgets_reference(self):
        g = HealthGuard(GuardConfig(energy_rel_tol=0.5))
        g.check_energy(-2.0, 1)
        g.reset_energy_reference()
        g.check_energy(-8.0, 2)  # no previous value -> no jump check


class TestPropagatorIntegration:
    def test_guard_trips_inside_qd_loop(self, grid8, rng):
        from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
        from repro.resilience.faults import FaultPlan, FaultSpec, armed

        wf = WaveFunctionSet.random(grid8, 2, rng)
        guard = HealthGuard(GuardConfig(check_every=1))
        prop = QDPropagator(
            wf, np.zeros(grid8.shape), PropagatorConfig(dt=0.05), guard=guard
        )
        with armed(FaultPlan([FaultSpec("lfd.nan", at_call=4)])):
            with pytest.raises(NumericalDivergenceError, match="sub-step 5"):
                prop.run(10)
        assert prop.steps_taken == 5  # failed fast, not at the end

    def test_cadence_defers_detection(self, grid8, rng):
        from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
        from repro.resilience.faults import FaultPlan, FaultSpec, armed

        wf = WaveFunctionSet.random(grid8, 2, rng)
        guard = HealthGuard(GuardConfig(check_every=5))
        prop = QDPropagator(
            wf, np.zeros(grid8.shape), PropagatorConfig(dt=0.05), guard=guard
        )
        with armed(FaultPlan([FaultSpec("lfd.nan", at_call=0)])):
            with pytest.raises(NumericalDivergenceError):
                prop.run(10)
        assert prop.steps_taken == 5  # first check at the cadence boundary

    def test_guard_checks_counted(self, grid8, rng):
        from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet

        wf = WaveFunctionSet.random(grid8, 2, rng)
        guard = HealthGuard(GuardConfig(check_every=2))
        prop = QDPropagator(
            wf, np.zeros(grid8.shape), PropagatorConfig(dt=0.05), guard=guard
        )
        prop.run(10)
        assert guard.checks_run > 0
