"""Liveness primitives: deadlines, retry budgets, circuit breaker.

Unit-level behaviour of :mod:`repro.resilience.liveness`, the
executor-side deadline enforcement (serial and thread backends), and
the supervisor-level policy built on top: deadline faults recover via
checkpoint restore, relaxed budgets grow geometrically, the run-wide
retry budget converts endless heal-fail loops into clean aborts, and
the breaker trips on consecutive faults.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.mesh import DCMESHConfig, DCMESHSimulation
from repro.core.timescale import TimescaleSplit
from repro.grids.grid import Grid3D
from repro.parallel.backends import SerialBackend, ThreadBackend
from repro.pseudo.elements import get_species
from repro.resilience.faults import FaultPlan, FaultSpec, armed, disarm
from repro.resilience.liveness import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryBudget,
    _SCOPES,
    active_deadline,
    check_deadline,
    deadline_scope,
)
from repro.resilience.supervisor import (
    RECOVERABLE,
    RunSupervisor,
    SupervisorAbort,
    SupervisorConfig,
)


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm()
    yield
    disarm()


def _make_sim(executor=None) -> DCMESHSimulation:
    grid = Grid3D((12, 12, 12), (0.6,) * 3)
    L = grid.lengths[0]
    positions = np.array([[L / 4, L / 2, L / 2], [3 * L / 4, L / 2, L / 2]])
    species = [get_species("H"), get_species("H")]
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=2.0, n_qd=4),
        nscf=1, ncg=1, norb_extra=1, seed=42,
    )
    return DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        config=config, buffer_width=2, executor=executor,
    )


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        d = Deadline(60.0, "unit")
        assert not d.expired
        assert 0.0 <= d.elapsed() < 1.0
        assert d.remaining() > 59.0
        d.check()  # must not raise

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0, "unit")
        time.sleep(0.005)
        assert d.expired
        with pytest.raises(DeadlineExceeded) as ei:
            d.check("somewhere")
        assert ei.value.where == "somewhere"
        assert ei.value.budget_s == 0.0
        assert ei.value.elapsed_s > 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_check_deadline_noop_when_disarmed(self):
        assert active_deadline() is None
        check_deadline("anywhere")  # must not raise

    def test_scope_arms_and_disarms(self):
        assert not _SCOPES
        with deadline_scope(60.0, "outer") as scope:
            assert active_deadline() is scope
            check_deadline("inside")
        assert not _SCOPES
        assert active_deadline() is None

    def test_none_budget_is_noop_scope(self):
        with deadline_scope(None) as scope:
            assert scope is None
            assert active_deadline() is None

    def test_expired_scope_raises_via_check(self):
        with deadline_scope(0.0, "tight"):
            time.sleep(0.005)
            with pytest.raises(DeadlineExceeded):
                check_deadline("loop")
        assert not _SCOPES  # unwound despite the raise

    def test_nested_scopes_enforce_outer_budget(self):
        """An inner scope can never outlive its enclosing budget."""
        with deadline_scope(0.0, "outer"):
            time.sleep(0.005)
            with deadline_scope(60.0, "inner"):
                with pytest.raises(DeadlineExceeded) as ei:
                    check_deadline("nested")
        assert ei.value.budget_s == 0.0

    def test_scope_removed_even_if_body_raises(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(60.0):
                raise RuntimeError("boom")
        assert not _SCOPES


class TestRetryBudget:
    def test_unbounded_never_exhausts(self):
        b = RetryBudget(None)
        for _ in range(100):
            assert b.consume()
        assert b.remaining is None
        assert not b.exhausted

    def test_bounded_budget_exhausts(self):
        b = RetryBudget(2)
        assert b.consume()
        assert b.consume()
        assert b.exhausted
        assert not b.consume()
        assert b.remaining == 0

    def test_zero_budget_refuses_immediately(self):
        b = RetryBudget(0)
        assert not b.consume()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryBudget(-1)


class TestCircuitBreaker:
    def test_disabled_breaker_never_opens(self):
        cb = CircuitBreaker(0)
        assert not cb.enabled
        for _ in range(50):
            cb.record_failure()
        assert not cb.open

    def test_opens_at_threshold(self):
        cb = CircuitBreaker(3)
        cb.record_failure()
        cb.record_failure()
        assert not cb.open
        cb.record_failure()
        assert cb.open

    def test_success_resets_consecutive_count(self):
        cb = CircuitBreaker(2)
        cb.record_failure()
        cb.record_success()
        cb.record_failure()
        assert not cb.open

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(-1)


def _slow_item(x):
    time.sleep(0.05)
    return x


class TestExecutorDeadlines:
    def test_serial_map_raises_on_expired_deadline(self):
        with SerialBackend(seed=0) as ex:
            with deadline_scope(0.02, "serial-test"):
                with pytest.raises(DeadlineExceeded):
                    ex.map(_slow_item, list(range(50)), label="slowmap")

    def test_thread_map_raises_on_expired_deadline(self):
        with ThreadBackend(workers=2, seed=0) as ex:
            with deadline_scope(0.02, "thread-test"):
                with pytest.raises(DeadlineExceeded):
                    ex.map(_slow_item, list(range(50)), label="slowmap")

    def test_maps_unaffected_by_generous_deadline(self):
        for ex_cls in (SerialBackend, ThreadBackend):
            with ex_cls(seed=0) as ex:
                with deadline_scope(60.0):
                    assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]


class TestSupervisorPolicy:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_growth=0.5)
        with pytest.raises(ValueError):
            SupervisorConfig(retry_budget=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(breaker_threshold=-1)

    def test_deadline_exceeded_is_recoverable(self):
        assert DeadlineExceeded in RECOVERABLE

    def test_deadline_fault_recovers_and_relaxes(self, tmp_path):
        """A too-tight segment budget fails once, relaxes, and finishes."""
        ref = _make_sim()
        ref_records = ref.run(2)

        sim = _make_sim()
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(
            checkpoint_every=1, deadline_s=1e-4, deadline_growth=1e6,
        ))
        records = sup.run(2)
        assert sup.log.count("deadline_relaxed") >= 1
        assert sup.deadline_s > sup.config.deadline_s
        faults = [e for e in sup.log.events if e["event"] == "fault"]
        assert any(e["error"] == "DeadlineExceeded" for e in faults)
        np.testing.assert_allclose(
            [r.band_energy for r in records],
            [r.band_energy for r in ref_records],
            rtol=0.0, atol=1e-12,
        )

    def test_retry_budget_exhaustion_aborts(self, tmp_path):
        """Faults alternating across segments beat per-segment retries
        but not the run-wide budget."""
        sim = _make_sim()
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(
            checkpoint_every=1, max_retries=10, retry_budget=1,
            deadline_growth=1.0, deadline_s=1e-4,
        ))
        with pytest.raises(SupervisorAbort, match="retry budget"):
            sup.run(2)
        assert sup.log.count("retry_budget_exhausted") == 1
        assert sup.retry_budget.exhausted

    def test_breaker_trips_on_consecutive_faults(self, tmp_path):
        sim = _make_sim()
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(
            checkpoint_every=1, max_retries=10, breaker_threshold=2,
            deadline_growth=1.0, deadline_s=1e-4,
        ))
        with pytest.raises(SupervisorAbort, match="breaker"):
            sup.run(2)
        assert sup.log.count("breaker_open") == 1
        assert sup.breaker.open

    def test_breaker_resets_on_completed_segment(self, tmp_path):
        """One fault per *completed* segment never trips a breaker of 2."""
        sim = _make_sim()
        sup = RunSupervisor(sim, tmp_path, SupervisorConfig(
            checkpoint_every=1, breaker_threshold=2,
        ))
        # One scf_diverge arrival per MD step; replays re-arrive.  The
        # timeline is s1:0 ok / s2:1 FAULT / s2:2 ok / s3:3 FAULT /
        # s3:4 ok -- two faults, each followed by a completed segment.
        plan = FaultPlan([
            FaultSpec("qxmd.scf_diverge", at_call=1),
            FaultSpec("qxmd.scf_diverge", at_call=3),
        ])
        with armed(plan):
            sup.run(3)
        assert plan.fired
        assert sup.total_retries == 2
        assert not sup.breaker.open
