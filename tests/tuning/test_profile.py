"""TuningProfile resolution and its pickup by the wired kernels."""

import pytest

from repro.tuning.defaults import DEFAULT_PARAMS, default_params
from repro.tuning.profile import (
    TuningProfile,
    active_profile,
    get_active_profile,
    resolve,
    set_active_profile,
)


class TestResolution:
    def test_default_profile_matches_defaults(self):
        p = TuningProfile.default()
        for tid in DEFAULT_PARAMS:
            assert p.params_for(tid) == default_params(tid)
        assert p.tuned_ids == ()

    def test_overrides_merge_over_defaults(self):
        p = TuningProfile({"lfd.kin_prop": {"variant": "blocked"}})
        params = p.params_for("lfd.kin_prop")
        assert params["variant"] == "blocked"
        assert params["block_size"] == default_params("lfd.kin_prop")["block_size"]
        assert p.tuned_ids == ("lfd.kin_prop",)

    def test_unknown_tunable_rejected(self):
        with pytest.raises(KeyError):
            TuningProfile({"no.such": {"x": 1}})
        with pytest.raises(KeyError):
            TuningProfile.default().params_for("no.such")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            TuningProfile({"lfd.kin_prop": {"warp": 9}})

    def test_resolve_single_value(self):
        with active_profile(TuningProfile(
                {"multigrid.poisson": {"pre_sweeps": 3}})):
            assert resolve("multigrid.poisson", "pre_sweeps") == 3
        with pytest.raises(KeyError, match="no parameter"):
            resolve("multigrid.poisson", "nope")

    def test_to_from_dict_round_trip(self):
        p = TuningProfile({"lfd.nonlocal": {"variant": "naive"}},
                          source="test")
        q = TuningProfile.from_dict(p.to_dict())
        assert q == p
        assert q.params_for("lfd.nonlocal")["variant"] == "naive"

    def test_save_load_round_trip(self, tmp_path):
        p = TuningProfile({"parallel.executor": {"backend": "thread",
                                                 "workers": 2}})
        path = tmp_path / "profile.json"
        p.save(path)
        q = TuningProfile.load(path)
        assert q == p
        assert str(path) in q.source


class TestActiveProfile:
    def test_context_manager_restores(self):
        before = get_active_profile()
        override = TuningProfile({"lfd.kin_prop": {"variant": "baseline"}})
        with active_profile(override):
            assert get_active_profile() is override
        assert get_active_profile() is before

    def test_set_returns_previous(self):
        before = get_active_profile()
        new = TuningProfile.default()
        try:
            assert set_active_profile(new) is before
        finally:
            set_active_profile(before)


class TestKernelPickup:
    """The wired constructors resolve None parameters from the profile."""

    def test_propagator_config_defaults_match_seed_state(self):
        from repro.lfd.propagator import PropagatorConfig

        cfg = PropagatorConfig()
        assert cfg.kin_variant == "collapsed"
        assert cfg.block_size == 32

    def test_propagator_config_reads_profile(self):
        from repro.lfd.propagator import PropagatorConfig

        with active_profile(TuningProfile(
                {"lfd.kin_prop": {"variant": "blocked", "block_size": 8}})):
            cfg = PropagatorConfig()
        assert cfg.kin_variant == "blocked"
        assert cfg.block_size == 8

    def test_propagator_config_explicit_beats_profile(self):
        from repro.lfd.propagator import PropagatorConfig

        with active_profile(TuningProfile(
                {"lfd.kin_prop": {"variant": "blocked"}})):
            cfg = PropagatorConfig(kin_variant="interchange")
        assert cfg.kin_variant == "interchange"

    def test_poisson_reads_profile_but_zero_is_honoured(self):
        from repro.grids.grid import Grid3D
        from repro.multigrid.poisson import PoissonMultigrid

        grid = Grid3D.cubic(8, 0.5)
        with active_profile(TuningProfile(
                {"multigrid.poisson": {"smoother": "jacobi",
                                       "pre_sweeps": 3}})):
            mg = PoissonMultigrid(grid)
            assert mg.smoother == "jacobi"
            assert mg.pre_sweeps == 3
            assert mg.post_sweeps == 2  # default, not overridden
            # Explicit 0 must never be mistaken for "resolve from profile".
            explicit = PoissonMultigrid(grid, pre_sweeps=0)
            assert explicit.pre_sweeps == 0

    def test_make_executor_reads_profile(self):
        from repro.parallel.executor import make_executor

        with active_profile(TuningProfile(
                {"parallel.executor": {"backend": "thread", "workers": 2}})):
            ex = make_executor()
            try:
                assert ex.name == "thread"
                assert ex.workers == 2
            finally:
                ex.shutdown()

    def test_make_executor_explicit_backend_wins(self):
        with active_profile(TuningProfile(
                {"parallel.executor": {"backend": "thread", "workers": 2}})):
            from repro.parallel.executor import make_executor

            ex = make_executor("serial")
            assert ex.name == "serial"

    def test_nonlocal_corrector_reads_profile(self):
        import numpy as np

        from repro.grids.grid import Grid3D
        from repro.lfd.nonlocal_corr import NonlocalCorrector
        from repro.lfd.wavefunction import WaveFunctionSet

        grid = Grid3D.cubic(6, 0.5)
        ref = WaveFunctionSet.random(grid, 4, np.random.default_rng(0))
        with active_profile(TuningProfile(
                {"lfd.nonlocal": {"variant": "blas_blocked",
                                  "orb_block": 4}})):
            corr = NonlocalCorrector(ref, 0.05)
        assert corr.variant == "blas_blocked"
        assert corr.orb_block == 4
        default_corr = NonlocalCorrector(ref, 0.05)
        assert default_corr.variant == "blas"
