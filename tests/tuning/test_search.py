"""Search engines: gating, defaults-survival, determinism, pruning."""

import numpy as np
import pytest

from repro.tuning.registry import Tunable
from repro.tuning.search import tune
from repro.tuning.spaces import Choice, IntRange, ParamSpace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_tunable(costs, wrong=(), defaults=None, prefilter=None,
                 clock=None, dims=None):
    """A synthetic tunable whose per-candidate cost is table-driven.

    ``costs`` maps algo name -> seconds charged to the fake clock per
    call; names in ``wrong`` return a diverged output (gate must
    reject them).
    """
    dims = dims or (Choice("algo", tuple(costs)),)

    def run_trial(probe, params):
        if clock is not None:
            key = params["algo"]
            clock.t += costs[key]
        out = np.ones(4)
        if params["algo"] in wrong:
            out = out + 1e-6
        return out

    return Tunable(
        tunable_id="fake.tunable",
        space=ParamSpace(dims),
        defaults=defaults or {"algo": next(iter(costs))},
        description="synthetic",
        paper_ref="n/a",
        source_modules=(),
        make_probe=lambda: None,
        run_trial=run_trial,
        prefilter=prefilter,
    )


class TestExhaustive:
    def test_fastest_gated_candidate_wins(self):
        clock = FakeClock()
        t = make_tunable({"slow": 1.0, "fast": 0.1, "mid": 0.5},
                         clock=clock)
        out = tune(t, strategy="exhaustive", repeats=3, clock=clock)
        assert out.best_params == {"algo": "fast"}
        assert out.speedup == pytest.approx(10.0)
        assert out.non_default

    def test_wrong_but_fast_candidate_is_rejected(self):
        clock = FakeClock()
        t = make_tunable({"ok": 1.0, "cheat": 0.001}, wrong=("cheat",),
                         clock=clock)
        out = tune(t, strategy="exhaustive", repeats=2, clock=clock)
        assert out.best_params == {"algo": "ok"}
        assert out.gate_rejected == 1
        rejected = [tr for tr in out.trials if tr.status == "gate_rejected"]
        assert rejected[0].params == {"algo": "cheat"}
        assert rejected[0].measurement is None  # never timed

    def test_defaults_always_candidate_so_speedup_at_least_one(self):
        clock = FakeClock()
        t = make_tunable({"best": 0.1, "worse": 0.2}, clock=clock,
                         defaults={"algo": "best"})
        out = tune(t, strategy="exhaustive", repeats=2, clock=clock)
        assert out.best_params == out.default_params
        assert not out.non_default
        assert out.speedup >= 1.0

    def test_deterministic_across_runs(self):
        def run(seed):
            clock = FakeClock()
            t = make_tunable({"a": 0.3, "b": 0.1, "c": 0.2}, clock=clock)
            return tune(t, strategy="exhaustive", seed=seed, clock=clock)

        r1, r2 = run(0), run(0)
        assert r1.best_params == r2.best_params
        assert [t.status for t in r1.trials] == [t.status for t in r2.trials]

    def test_prefilter_skips_without_measuring(self):
        clock = FakeClock()
        dims = (Choice("algo", ("a", "b")), IntRange("knob", 1, 3))

        def prefilter(params):
            if params["algo"] == "a" and params["knob"] != 1:
                return "knob irrelevant for a"
            return None

        t = make_tunable({"a": 0.2, "b": 0.1}, clock=clock, dims=dims,
                         defaults={"algo": "a", "knob": 1},
                         prefilter=prefilter)
        out = tune(t, strategy="exhaustive", repeats=2, clock=clock)
        skipped = [tr for tr in out.trials if tr.status == "skipped"]
        assert len(skipped) == 2  # a/knob=2, a/knob=3
        assert all(tr.measurement is None for tr in skipped)
        assert out.measured_trials == 4  # a1, b1, b2, b3


class TestSuccessiveHalving:
    def test_prunes_but_defaults_survive(self):
        clock = FakeClock()
        costs = {f"v{i}": 0.1 * (i + 1) for i in range(8)}
        t = make_tunable(costs, clock=clock, defaults={"algo": "v7"})
        out = tune(t, strategy="halving", repeats=4, clock=clock)
        assert out.best_params == {"algo": "v0"}
        # The default (slowest) was never pruned: it has an "ok" trial.
        statuses = {tuple(tr.params.values())[0]: tr.status
                    for tr in out.trials}
        assert statuses["v7"] == "ok"
        assert "pruned" in statuses.values()
        assert out.speedup == pytest.approx(8.0)

    def test_auto_dispatches_on_space_size(self):
        clock = FakeClock()
        small = make_tunable({"a": 0.1, "b": 0.2}, clock=clock)
        out = tune(small, strategy="auto", repeats=2, clock=clock)
        assert out.strategy == "exhaustive"

        clock2 = FakeClock()
        costs = {f"v{i:02d}": 0.01 * (i + 1) for i in range(30)}
        big = make_tunable(costs, clock=clock2, defaults={"algo": "v00"})
        out2 = tune(big, strategy="auto", repeats=2, clock=clock2)
        assert out2.strategy == "halving"
        assert out2.best_params == {"algo": "v00"}

    def test_halving_deterministic(self):
        def run():
            clock = FakeClock()
            costs = {f"v{i}": 0.1 + 0.01 * i for i in range(10)}
            t = make_tunable(costs, clock=clock, defaults={"algo": "v9"})
            return tune(t, strategy="halving", repeats=4, seed=3,
                        clock=clock)

        r1, r2 = run(), run()
        assert r1.best_params == r2.best_params
        assert r1.to_dict() == r2.to_dict()


class TestValidation:
    def test_unknown_strategy_rejected(self):
        t = make_tunable({"a": 0.1})
        with pytest.raises(ValueError, match="unknown strategy"):
            tune(t, strategy="genetic")

    def test_all_rejected_raises(self):
        # Even the defaults diverge from the reference: a broken probe
        # (non-deterministic run_trial) must be loud, not a silent win.
        calls = {"n": 0}

        def run_trial(probe, params):
            calls["n"] += 1
            return np.full(4, float(calls["n"]))  # different every call

        t = Tunable(
            tunable_id="fake.broken",
            space=ParamSpace((Choice("algo", ("a",)),)),
            defaults={"algo": "a"},
            description="broken",
            paper_ref="n/a",
            source_modules=(),
            make_probe=lambda: None,
            run_trial=run_trial,
        )
        with pytest.raises(RuntimeError, match="no candidate passed"):
            tune(t, strategy="exhaustive")

    def test_outcome_to_dict_is_json_ready(self):
        import json

        clock = FakeClock()
        t = make_tunable({"a": 0.1, "b": 0.2}, clock=clock)
        out = tune(t, strategy="exhaustive", repeats=2, clock=clock)
        json.dumps(out.to_dict())  # must not raise
