"""Checkpoints carry the active tuning profile; resumes replay it."""

import json

import numpy as np

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.tuning.profile import (
    TuningProfile,
    active_profile,
    get_active_profile,
    set_active_profile,
)

from tests.core.test_mesh import make_sim


class TestCheckpointProfile:
    def test_save_records_active_profile(self, tmp_path):
        sim = make_sim(seed=3)
        sim.run(1)
        profile = TuningProfile({"lfd.nonlocal": {"variant": "naive"}},
                                source="test")
        with active_profile(profile):
            path = save_checkpoint(sim, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
        assert meta["tuning_profile"]["source"] == "test"
        assert meta["tuning_profile"]["overrides"] == {
            "lfd.nonlocal": dict(profile.params_for("lfd.nonlocal"))
        }

    def test_load_restores_the_saved_profile(self, tmp_path):
        sim = make_sim(seed=3)
        sim.run(1)
        tuned = TuningProfile({"multigrid.poisson": {"pre_sweeps": 3}})
        with active_profile(tuned):
            path = save_checkpoint(sim, tmp_path / "s.npz")

        before = get_active_profile()
        try:
            fresh = make_sim(seed=3)
            load_checkpoint(fresh, path)
            restored = get_active_profile()
            assert restored == tuned
            assert restored.params_for(
                "multigrid.poisson")["pre_sweeps"] == 3
        finally:
            set_active_profile(before)

    def test_pre_tuning_checkpoint_leaves_profile_alone(self, tmp_path):
        # Simulate a checkpoint written before the tuning subsystem
        # existed: strip the key from meta and rewrite the archive.
        sim = make_sim(seed=4)
        sim.run(1)
        path = save_checkpoint(sim, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta.pop("tuning_profile")
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                       dtype=np.uint8)
        np.savez_compressed(path, **arrays)

        marker = TuningProfile({"lfd.kin_prop": {"block_size": 16}})
        before = get_active_profile()
        set_active_profile(marker)
        try:
            fresh = make_sim(seed=4)
            load_checkpoint(fresh, path)
            assert get_active_profile() is marker
        finally:
            set_active_profile(before)

    def test_supervisor_logs_active_profile(self, tmp_path):
        from repro.resilience.supervisor import (
            RunSupervisor,
            SupervisorConfig,
        )

        sim = make_sim(seed=5)
        sup = RunSupervisor(
            sim, tmp_path / "ckpts",
            SupervisorConfig(checkpoint_every=1, max_retries=1),
        )
        with active_profile(TuningProfile(
                {"lfd.nonlocal": {"variant": "naive"}}, source="sup-test")):
            sup.run(1)
        events = [e for e in sup.log.events
                  if e["event"] == "tuning_profile"]
        assert len(events) == 1
        assert events[0]["source"] == "sup-test"
        assert events[0]["tuned"] == ["lfd.nonlocal"]
