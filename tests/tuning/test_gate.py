"""Correctness gate: tuned physics must equal untuned physics."""

import numpy as np

from repro.tuning.gate import GATE_TOL, check, correctness_error


class TestCorrectnessError:
    def test_identical_arrays_pass_with_zero_error(self):
        a = np.random.default_rng(0).standard_normal((4, 4))
        assert correctness_error(a, a.copy()) == 0.0
        assert check(a, a.copy()).passed

    def test_small_roundoff_divergence_passes(self):
        ref = np.ones((8,))
        cand = ref + 1e-15
        v = check(cand, ref)
        assert v.passed
        assert 0.0 < v.error <= GATE_TOL

    def test_real_divergence_rejects(self):
        ref = np.ones((8,))
        cand = ref.copy()
        cand[3] += 1e-9
        v = check(cand, ref)
        assert not v.passed
        assert v.error > GATE_TOL

    def test_normalization_is_relative_for_large_references(self):
        # 1e-6 absolute error on a 1e9-magnitude field is round-off.
        ref = np.full((4,), 1e9)
        cand = ref + 1e-6
        assert check(cand, ref).passed

    def test_normalization_is_absolute_for_small_references(self):
        # The denominator floors at 1: tiny references don't inflate
        # tiny absolute errors into passes.
        ref = np.full((4,), 1e-30)
        cand = ref + 1e-9
        assert not check(cand, ref).passed

    def test_shape_mismatch_is_infinite_error(self):
        assert correctness_error(np.ones((3,)), np.ones((4,))) == np.inf

    def test_nan_candidate_never_wins(self):
        ref = np.ones((4,))
        cand = ref.copy()
        cand[0] = np.nan
        assert correctness_error(cand, ref) == np.inf

    def test_complex_arrays_supported(self):
        ref = np.array([1.0 + 1.0j, 2.0 - 0.5j])
        assert check(ref + 1e-16j, ref).passed
        assert not check(ref + 1e-6j, ref).passed

    def test_empty_arrays_trivially_agree(self):
        assert correctness_error(np.empty(0), np.empty(0)) == 0.0
