"""Tuning sessions: cache-first orchestration and report output."""

import json

import numpy as np

from repro.tuning.cache import TuningCache
from repro.tuning.registry import Tunable, TunableRegistry
from repro.tuning.report import format_report, write_report_json
from repro.tuning.session import TuningSession
from repro.tuning.spaces import Choice, ParamSpace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_registry(clock, costs=None):
    costs = costs or {"slow": 0.2, "fast": 0.1}

    def run_trial(probe, params):
        clock.t += costs[params["algo"]]
        return np.ones(2)

    registry = TunableRegistry()
    registry.register(Tunable(
        tunable_id="fake.one",
        space=ParamSpace((Choice("algo", tuple(costs)),)),
        defaults={"algo": next(iter(costs))},
        description="synthetic",
        paper_ref="n/a",
        source_modules=(),
        make_probe=lambda: None,
        run_trial=run_trial,
    ))
    return registry


class TestSession:
    def test_fresh_tune_then_pure_cache_hit(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        cache = TuningCache(tmp_path / "cache.json")
        session = TuningSession(cache=cache, registry=registry)

        first = session.run(clock=clock)
        assert first.tuned == 1
        assert first.cache_hits == 0
        assert first.total_trials == 2
        assert first.records[0].params == {"algo": "fast"}

        # Second session, fresh cache object from disk: zero trials.
        session2 = TuningSession(cache=TuningCache(tmp_path / "cache.json"),
                                 registry=registry)
        second = session2.run(clock=clock)
        assert second.cache_hits == 1
        assert second.tuned == 0
        assert second.total_trials == 0
        assert second.records[0].params == {"algo": "fast"}

    def test_force_drops_cache_and_retunes(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        session.run(clock=clock)
        forced = session.run(force=True, clock=clock)
        assert forced.tuned == 1
        assert forced.cache_hits == 0

    def test_select_subset(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        res = session.run(select=["fake.one"], clock=clock)
        assert [r.tunable_id for r in res.records] == ["fake.one"]

    def test_profile_reflects_winners(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        res = session.run(clock=clock)
        # fake.one is not a known tunable id for profiles, so build the
        # mapping directly from the records instead.
        assert {r.tunable_id: r.params for r in res.records} == {
            "fake.one": {"algo": "fast"}
        }


class TestReport:
    def test_text_report_states_cache_and_speedup(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        res = session.run(clock=clock)
        text = format_report(res)
        assert "fake.one" in text
        assert "tuned" in text
        assert "speedup" in text
        assert "gate-rejected" in text

        hit = session.run(clock=clock)
        assert "cache_hit" in format_report(hit)

    def test_defaults_optimal_is_a_visible_result(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock, costs={"best": 0.1, "worse": 0.3})
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        res = session.run(clock=clock)
        assert "defaults already optimal" in format_report(res)

    def test_json_report_schema(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(clock)
        session = TuningSession(cache=TuningCache(tmp_path / "c.json"),
                                registry=registry)
        res = session.run(clock=clock)
        path = write_report_json(res, tmp_path / "report.json")
        data = json.load(open(path))
        assert data["schema"] == "repro-tuning-report/1"
        assert data["tuned"] == 1
        assert data["records"][0]["tunable_id"] == "fake.one"
        assert data["records"][0]["outcome"]["gate_tol"] == 1e-12
