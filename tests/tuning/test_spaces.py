"""Parameter-space primitives: order, validation, encoding, hashing."""

import numpy as np
import pytest

from repro.tuning.spaces import Choice, IntRange, ParamSpace


def make_space():
    return ParamSpace((
        Choice("variant", ("a", "b")),
        IntRange("block", 8, 32, step=8),
    ))


class TestDimensions:
    def test_choice_values_keep_declaration_order(self):
        c = Choice("v", ("z", "a", "m"))
        assert c.values() == ("z", "a", "m")

    def test_choice_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            Choice("v", ("a", "a"))
        with pytest.raises(ValueError):
            Choice("v", ())

    def test_int_range_values_and_lattice_membership(self):
        r = IntRange("b", 8, 32, step=8)
        assert r.values() == (8, 16, 24, 32)
        assert r.contains(24)
        assert not r.contains(12)   # off-lattice
        assert not r.contains(40)   # out of range
        assert not r.contains("8")  # wrong type

    def test_int_range_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            IntRange("b", 10, 5)
        with pytest.raises(ValueError):
            IntRange("b", 0, 5, step=0)


class TestParamSpace:
    def test_size_is_the_product(self):
        assert make_space().size == 2 * 4

    def test_iterate_is_canonical_first_dim_slowest(self):
        pts = list(make_space().iterate())
        assert pts[0] == {"variant": "a", "block": 8}
        assert pts[1] == {"variant": "a", "block": 16}
        assert pts[4] == {"variant": "b", "block": 8}
        assert len(pts) == 8

    def test_validate_coerces_numpy_integers(self):
        clean = make_space().validate({"variant": "a",
                                       "block": np.int64(16)})
        assert clean["block"] == 16
        assert type(clean["block"]) is int

    def test_validate_rejects_unknown_missing_and_outside(self):
        space = make_space()
        with pytest.raises(ValueError, match="unknown parameter"):
            space.validate({"variant": "a", "block": 8, "extra": 1})
        with pytest.raises(ValueError, match="missing parameter"):
            space.validate({"variant": "a"})
        with pytest.raises(ValueError, match="outside the declared"):
            space.validate({"variant": "a", "block": 12})

    def test_encode_decode_round_trip_and_key_order(self):
        space = make_space()
        params = {"block": 24, "variant": "b"}
        enc = space.encode(params)
        assert enc == '{"block":24,"variant":"b"}'
        assert space.decode(enc) == {"variant": "b", "block": 24}

    def test_space_hash_stable_and_sensitive(self):
        h1 = make_space().space_hash()
        assert h1 == make_space().space_hash()
        other = ParamSpace((
            Choice("variant", ("a", "b", "c")),
            IntRange("block", 8, 32, step=8),
        ))
        assert other.space_hash() != h1

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace((Choice("x", ("a",)), IntRange("x", 0, 1)))

    def test_sample_is_seeded(self):
        space = make_space()
        a = space.sample(np.random.default_rng(7))
        b = space.sample(np.random.default_rng(7))
        assert a == b
        space.validate(a)
