"""Measurement harness: median/MAD robustness and clock injection."""

import pytest

from repro.tuning.measure import aggregate, measure_callable


class FakeClock:
    """Deterministic clock: tasks advance it themselves."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestAggregate:
    def test_median_and_mad(self):
        m = aggregate((1.0, 2.0, 10.0))
        assert m.median_s == 2.0
        assert m.mad_s == 1.0  # |1-2|, |2-2|, |10-2| -> median 1
        assert m.repeats == 3

    def test_one_preempted_repeat_does_not_move_the_median(self):
        quiet = aggregate((1.0, 1.0, 1.0, 1.0, 1.0))
        noisy = aggregate((1.0, 1.0, 100.0, 1.0, 1.0))
        assert noisy.median_s == quiet.median_s

    def test_noise_ratio(self):
        assert aggregate((2.0, 2.0, 2.0)).noise_ratio == 0.0

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            aggregate(())


class TestMeasureCallable:
    def test_deterministic_with_injected_clock(self):
        clock = FakeClock()

        def fn():
            clock.t += 0.25
            return "out"

        m, out = measure_callable(fn, warmup=1, repeats=4, clock=clock)
        assert out == "out"
        assert m.times_s == (0.25, 0.25, 0.25, 0.25)
        assert m.median_s == 0.25
        assert m.mad_s == 0.0

    def test_first_output_comes_from_warmup(self):
        calls = []

        def fn():
            calls.append(len(calls))
            return len(calls)  # 1 on the first call

        _, out = measure_callable(fn, warmup=2, repeats=2)
        assert out == 1
        assert len(calls) == 4

    def test_zero_warmup_output_comes_from_first_repeat(self):
        _, out = measure_callable(lambda: 42, warmup=0, repeats=1)
        assert out == 42

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            measure_callable(lambda: 0, warmup=-1)
        with pytest.raises(ValueError):
            measure_callable(lambda: 0, repeats=0)
