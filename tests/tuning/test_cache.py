"""Tuning cache: round-trip, atomicity, fingerprint invalidation."""

import json

import numpy as np
import pytest

from repro.tuning.cache import (
    TuningCache,
    code_fingerprint,
    machine_fingerprint,
)
from repro.tuning.registry import Tunable
from repro.tuning.spaces import Choice, ParamSpace


def make_tunable(options=("a", "b"), source_modules=()):
    return Tunable(
        tunable_id="fake.cached",
        space=ParamSpace((Choice("algo", tuple(options)),)),
        defaults={"algo": options[0]},
        description="synthetic",
        paper_ref="n/a",
        source_modules=tuple(source_modules),
        make_probe=lambda: None,
        run_trial=lambda probe, params: np.ones(1),
    )


class TestFingerprints:
    def test_machine_fingerprint_is_stable_in_process(self):
        assert machine_fingerprint() == machine_fingerprint()
        assert len(machine_fingerprint()) == 16

    def test_code_fingerprint_tracks_module_source(self):
        t1 = make_tunable(source_modules=("repro.tuning.gate",))
        t2 = make_tunable(source_modules=("repro.tuning.measure",))
        t3 = make_tunable(source_modules=())
        assert code_fingerprint(t1) == code_fingerprint(t1)
        assert code_fingerprint(t1) != code_fingerprint(t2)
        assert code_fingerprint(t1) != code_fingerprint(t3)


class TestRoundTrip:
    def test_put_save_reload_get(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        t = make_tunable()
        cache.put(t, {"algo": "b"}, speedup=1.5, strategy="exhaustive",
                  gate_error=0.0)
        cache.save()
        assert path.exists()

        fresh = TuningCache(path)
        entry = fresh.get(t)
        assert entry is not None
        assert entry.params == {"algo": "b"}
        assert entry.speedup == 1.5

    def test_missing_file_is_empty_cache(self, tmp_path):
        cache = TuningCache(tmp_path / "nope" / "cache.json")
        assert len(cache) == 0
        assert cache.get(make_tunable()) is None

    def test_corrupt_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        assert len(TuningCache(path)) == 0

    def test_wrong_schema_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": "other/9", "entries": {}}))
        assert len(TuningCache(path)) == 0

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put(make_tunable(), {"algo": "a"}, speedup=1.0,
                  strategy="exhaustive", gate_error=0.0)
        cache.save()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "cache.json"]
        assert leftovers == []
        json.load(open(path))  # valid JSON on disk


class TestInvalidation:
    def test_space_change_invalidates(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        t = make_tunable(("a", "b"))
        cache.put(t, {"algo": "b"}, speedup=1.0, strategy="exhaustive",
                  gate_error=0.0)
        grown = make_tunable(("a", "b", "c"))
        assert cache.get(t) is not None
        assert cache.get(grown) is None

    def test_machine_change_invalidates(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        t = make_tunable()
        cache.put(t, {"algo": "b"}, speedup=1.0, strategy="exhaustive",
                  gate_error=0.0, machine="deadbeefdeadbeef")
        assert cache.get(t) is None  # real fingerprint differs
        assert cache.get(t, machine="deadbeefdeadbeef") is not None

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = TuningCache(tmp_path / "cache.json")
        t = make_tunable(source_modules=("repro.tuning.gate",))
        cache.put(t, {"algo": "b"}, speedup=1.0, strategy="exhaustive",
                  gate_error=0.0)
        assert cache.get(t) is not None
        # Same tunable, edited kernel source -> different code print.
        monkeypatch.setattr(
            "repro.tuning.cache.code_fingerprint", lambda _: "0" * 16
        )
        assert cache.get(t) is None

    def test_out_of_space_params_invalidated(self, tmp_path):
        # Entry written against a wider space: params no longer valid.
        cache = TuningCache(tmp_path / "cache.json")
        wide = make_tunable(("a", "b", "c"))
        cache.put(wide, {"algo": "c"}, speedup=1.0, strategy="exhaustive",
                  gate_error=0.0)
        assert cache.get(make_tunable(("a", "b"))) is None

    def test_put_validates_params(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        with pytest.raises(ValueError):
            cache.put(make_tunable(), {"algo": "zzz"}, speedup=1.0,
                      strategy="exhaustive", gate_error=0.0)

    def test_drop_forces_retune(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        t = make_tunable()
        cache.put(t, {"algo": "b"}, speedup=1.0, strategy="exhaustive",
                  gate_error=0.0)
        assert cache.drop(t.tunable_id)
        assert cache.get(t) is None
        assert not cache.drop(t.tunable_id)
