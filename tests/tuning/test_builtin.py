"""Built-in tunables: registry shape and probe/trial physics."""

import numpy as np
import pytest

from repro.tuning.builtin import build_registry
from repro.tuning.defaults import TUNABLE_IDS, default_params
from repro.tuning.gate import GATE_TOL, correctness_error
from repro.tuning.registry import default_registry


@pytest.fixture(scope="module")
def registry():
    return build_registry()


class TestRegistryShape:
    def test_all_declared_ids_registered(self, registry):
        assert registry.ids() == TUNABLE_IDS
        assert len(registry) == 5

    def test_default_registry_is_cached_singleton(self):
        assert default_registry() is default_registry()

    def test_defaults_lie_inside_every_space(self, registry):
        for t in registry:
            assert t.canonical_defaults() == default_params(t.tunable_id)

    def test_every_tunable_documents_its_paper_counterpart(self, registry):
        for t in registry:
            assert t.paper_ref
            assert t.description
            assert t.source_modules or t.tunable_id == "parallel.executor"

    def test_source_texts_resolve(self, registry):
        for t in registry:
            for name, text in t.source_texts():
                assert text, f"{name} produced empty source"


def gate_against_defaults(tunable, params):
    probe = tunable.make_probe()
    ref = np.asarray(tunable.run_trial(probe, tunable.canonical_defaults()))
    out = np.asarray(tunable.run_trial(probe, params))
    return correctness_error(out, ref)


class TestProbePhysics:
    def test_kin_prop_variants_agree_on_probe(self, registry):
        t = registry.get("lfd.kin_prop")
        for params in ({"variant": "baseline", "block_size": 32},
                       {"variant": "interchange", "block_size": 32},
                       {"variant": "blocked", "block_size": 8}):
            assert gate_against_defaults(t, params) <= GATE_TOL, params

    def test_nonlocal_variants_agree_on_probe(self, registry):
        t = registry.get("lfd.nonlocal")
        for params in ({"variant": "naive", "orb_block": 16},
                       {"variant": "blas_blocked", "orb_block": 4}):
            assert gate_against_defaults(t, params) <= GATE_TOL

    def test_executor_backends_agree_on_probe(self, registry):
        t = registry.get("parallel.executor")
        err = gate_against_defaults(
            t, {"backend": "thread", "workers": 2, "chunk_size": 1})
        assert err == 0.0  # identical tasks, identical results

    def test_poisson_configs_agree_on_probe(self, registry):
        t = registry.get("multigrid.poisson")
        err = gate_against_defaults(
            t, {"smoother": "jacobi", "pre_sweeps": 1, "post_sweeps": 1})
        assert err <= GATE_TOL

    def test_trials_do_not_mutate_the_probe(self, registry):
        t = registry.get("lfd.kin_prop")
        probe = t.make_probe()
        before = probe["wf"].psi.copy()
        t.run_trial(probe, t.canonical_defaults())
        assert np.array_equal(probe["wf"].psi, before)


class TestPrefilters:
    def test_kin_prop_collapses_degenerate_block_sizes(self, registry):
        t = registry.get("lfd.kin_prop")
        assert t.skip_reason({"variant": "collapsed", "block_size": 8})
        assert t.skip_reason({"variant": "blocked", "block_size": 8}) is None
        assert t.skip_reason({"variant": "collapsed",
                              "block_size": 32}) is None

    def test_executor_skips_process_and_degenerate_points(self, registry):
        t = registry.get("parallel.executor")
        assert t.skip_reason({"backend": "process", "workers": 2,
                              "chunk_size": 2})
        assert t.skip_reason({"backend": "serial", "workers": 2,
                              "chunk_size": 1})
        assert t.skip_reason({"backend": "thread", "workers": 2,
                              "chunk_size": 2})
        assert t.skip_reason({"backend": "thread", "workers": 2,
                              "chunk_size": 1}) is None
