"""CLI integration: repro-mesh tune and --tuning-profile activation."""

import json

from repro.cli import main
from repro.tuning.profile import (
    TuningProfile,
    get_active_profile,
    set_active_profile,
)


def tune_args(tmp_path, *extra):
    return ["tune", "--select", "parallel.executor", "--repeats", "2",
            "--cache", str(tmp_path / "cache.json"), *extra]


class TestTuneCommand:
    def test_tune_writes_cache_report_and_profile(self, tmp_path, capsys):
        rc = main(tune_args(
            tmp_path,
            "--report", str(tmp_path / "report.json"),
            "--profile-out", str(tmp_path / "profile.json"),
        ))
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned fresh         : 1" in out
        assert (tmp_path / "cache.json").exists()

        report = json.load(open(tmp_path / "report.json"))
        assert report["schema"] == "repro-tuning-report/1"
        assert report["tuned"] == 1

        profile = TuningProfile.load(tmp_path / "profile.json")
        assert "backend" in profile.params_for("parallel.executor")

    def test_second_invocation_is_pure_cache_hit(self, tmp_path, capsys):
        assert main(tune_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(tune_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "cache hits          : 1" in out
        assert "trials executed     : 0" in out

    def test_force_retunes_despite_cache(self, tmp_path, capsys):
        assert main(tune_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(tune_args(tmp_path, "--force")) == 0
        out = capsys.readouterr().out
        assert "tuned fresh         : 1" in out

    def test_every_winner_passed_the_gate(self, tmp_path):
        rc = main(tune_args(tmp_path,
                            "--report", str(tmp_path / "report.json")))
        assert rc == 0
        report = json.load(open(tmp_path / "report.json"))
        for rec in report["records"]:
            winner_trials = [
                t for t in rec["outcome"]["trials"]
                if t["status"] == "ok" and t["params"] == rec["params"]
            ]
            assert winner_trials, "winner must appear among ok trials"
            assert winner_trials[0]["gate_error"] <= 1e-12


class TestProfileActivation:
    def test_spectrum_installs_profile(self, tmp_path, capsys):
        before = get_active_profile()
        try:
            profile = TuningProfile(
                {"lfd.kin_prop": {"variant": "interchange"}})
            path = tmp_path / "p.json"
            profile.save(path)
            rc = main(["spectrum", "--grid", "6", "--norb", "2", "--steps",
                       "8", "--tuning-profile", str(path)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "tuning profile" in out
            assert "lfd.kin_prop" in out
            assert get_active_profile().params_for(
                "lfd.kin_prop")["variant"] == "interchange"
        finally:
            set_active_profile(before)
