"""Multigrid Poisson solver: convergence, O(N) work, FFT agreement."""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.multigrid import PoissonMultigrid, solve_poisson_fft
from repro.multigrid.smoothers import laplacian_periodic


@pytest.fixture
def grid32() -> Grid3D:
    return Grid3D.cubic(32, 0.4)


def random_density(grid, rng):
    rho = rng.standard_normal(grid.shape)
    return rho - rho.mean()


class TestFFTReference:
    def test_solves_discrete_operator(self, grid16, rng):
        rho = random_density(grid16, rng)
        v = solve_poisson_fft(rho, grid16)
        lhs = laplacian_periodic(v, grid16.spacing)
        assert np.allclose(lhs, -4 * np.pi * rho, atol=1e-9)

    def test_mean_free(self, grid16, rng):
        v = solve_poisson_fft(random_density(grid16, rng), grid16)
        assert abs(v.mean()) < 1e-12

    def test_point_charge_coulomb_tail(self):
        """The potential of a compact charge ~ q/r near the charge.

        Far from the charge the periodic images and the neutralizing
        background bend the tail, so only the near field is compared.
        """
        g = Grid3D.cubic(32, 0.5)
        rho = g.zeros()
        rho[16, 16, 16] = 1.0 / g.dvol  # unit charge
        v = solve_poisson_fft(rho, g)
        profile = v[16:16 + 12, 16, 16]
        # Monotonic decay away from the charge...
        assert np.all(np.diff(profile) < 0)
        # ...and Coulombic magnitude at r = 2 mesh points (1 bohr).
        assert profile[2] == pytest.approx(1.0, rel=0.2)

    def test_shape_mismatch(self, grid16):
        with pytest.raises(ValueError):
            solve_poisson_fft(np.zeros((4, 4, 4)), grid16)


class TestMultigrid:
    def test_matches_fft(self, grid32, rng):
        rho = random_density(grid32, rng)
        mg = PoissonMultigrid(grid32)
        v, stats = mg.solve(rho, tol=1e-10)
        assert stats.converged
        v_ref = solve_poisson_fft(rho, grid32)
        assert np.abs(v - v_ref).max() < 1e-7 * np.abs(v_ref).max() + 1e-9

    def test_converges_in_few_cycles(self, grid32, rng):
        mg = PoissonMultigrid(grid32)
        _, stats = mg.solve(random_density(grid32, rng), tol=1e-8)
        assert stats.cycles <= 12
        assert stats.mean_contraction < 0.35

    def test_work_units_bounded(self, grid32):
        """Geometric coarsening gives < 8/7 fine-grid-equivalents per cycle."""
        mg = PoissonMultigrid(grid32)
        assert mg.nlevels >= 3
        assert mg.work_units() < 8.0 / 7.0 + 1e-9

    def test_cycles_independent_of_size(self, rng):
        """O(N): V-cycle count does not grow with problem size."""
        cycles = []
        for n in (16, 32):
            g = Grid3D.cubic(n, 0.4)
            mg = PoissonMultigrid(g)
            rho = rng.standard_normal(g.shape)
            rho -= rho.mean()
            _, stats = mg.solve(rho, tol=1e-8)
            cycles.append(stats.cycles)
        assert abs(cycles[1] - cycles[0]) <= 2

    def test_jacobi_smoother_variant(self, grid16, rng):
        mg = PoissonMultigrid(grid16, smoother="jacobi", pre_sweeps=3, post_sweeps=3)
        v, stats = mg.solve(random_density(grid16, rng), tol=1e-8)
        assert stats.converged

    def test_zero_density_trivial(self, grid16):
        mg = PoissonMultigrid(grid16)
        v, stats = mg.solve(np.zeros(grid16.shape))
        assert stats.converged
        assert np.all(v == 0.0)

    def test_initial_guess_speeds_convergence(self, grid32, rng):
        rho = random_density(grid32, rng)
        mg = PoissonMultigrid(grid32)
        v, stats_cold = mg.solve(rho, tol=1e-9)
        _, stats_warm = mg.solve(rho, tol=1e-9, initial_guess=v)
        assert stats_warm.cycles <= stats_cold.cycles

    def test_invalid_smoother(self, grid16):
        with pytest.raises(ValueError):
            PoissonMultigrid(grid16, smoother="sor")

    def test_linearity(self, grid16, rng):
        """Solve(a rho1 + b rho2) = a Solve(rho1) + b Solve(rho2)."""
        mg = PoissonMultigrid(grid16)
        r1 = random_density(grid16, rng)
        r2 = random_density(grid16, rng)
        v1, _ = mg.solve(r1, tol=1e-11)
        v2, _ = mg.solve(r2, tol=1e-11)
        v12, _ = mg.solve(2.0 * r1 - 0.5 * r2, tol=1e-11)
        assert np.abs(v12 - (2.0 * v1 - 0.5 * v2)).max() < 1e-6


class TestAnisotropicGrids:
    def test_fft_reference_anisotropic(self, aniso_grid, rng):
        rho = rng.standard_normal(aniso_grid.shape)
        rho -= rho.mean()
        v = solve_poisson_fft(rho, aniso_grid)
        lhs = laplacian_periodic(v, aniso_grid.spacing)
        assert np.allclose(lhs, -4 * np.pi * rho, atol=1e-9)

    def test_multigrid_anisotropic_matches_fft(self, rng):
        # Moderately anisotropic spacings (strong anisotropy would need
        # line smoothers; point smoothers handle this regime fine).
        g = Grid3D((16, 16, 16), (0.5, 0.45, 0.6))
        rho = rng.standard_normal(g.shape)
        rho -= rho.mean()
        mg = PoissonMultigrid(g)
        v, stats = mg.solve(rho, tol=1e-9, max_cycles=60)
        assert stats.converged
        ref = solve_poisson_fft(rho, g)
        assert np.abs(v - ref).max() < 1e-6 * np.abs(ref).max() + 1e-10
