"""Smoother tests: residual reduction and operator consistency."""

import numpy as np
import pytest

from repro.multigrid import (
    laplacian_periodic,
    red_black_gauss_seidel,
    weighted_jacobi,
)
from repro.multigrid.smoothers import residual


SPACING = (0.5, 0.5, 0.5)


def make_problem(rng, shape=(8, 8, 8)):
    f = rng.standard_normal(shape)
    f -= f.mean()
    u0 = np.zeros(shape)
    return u0, f


class TestLaplacian:
    def test_constant_in_kernel(self):
        u = np.full((8, 8, 8), 4.2)
        assert np.abs(laplacian_periodic(u, SPACING)).max() < 1e-12

    def test_plane_wave_eigenfunction(self):
        n, h = 8, 0.5
        k = 2 * np.pi * 2 / n
        x = np.arange(n)
        u = np.broadcast_to(np.cos(k * x)[:, None, None], (n, n, n)).copy()
        lam = (2 * np.cos(k) - 2) / (h * h)
        assert np.allclose(laplacian_periodic(u, (h, h, h)), lam * u, atol=1e-12)

    def test_symmetry(self, rng):
        """<u, L v> == <L u, v> (the discrete Laplacian is symmetric)."""
        u = rng.standard_normal((6, 6, 6))
        v = rng.standard_normal((6, 6, 6))
        lu = laplacian_periodic(u, SPACING)
        lv = laplacian_periodic(v, SPACING)
        assert np.sum(u * lv) == pytest.approx(np.sum(lu * v))


class TestJacobi:
    def test_reduces_residual(self, rng):
        u0, f = make_problem(rng)
        r0 = np.linalg.norm(residual(u0, f, SPACING))
        u = weighted_jacobi(u0, f, SPACING, sweeps=10)
        r1 = np.linalg.norm(residual(u, f, SPACING))
        assert r1 < r0

    def test_does_not_modify_input(self, rng):
        u0, f = make_problem(rng)
        u0_copy = u0.copy()
        weighted_jacobi(u0, f, SPACING, sweeps=2)
        assert np.array_equal(u0, u0_copy)

    def test_smooths_high_frequency_fast(self, rng):
        """Damped Jacobi kills the checkerboard error mode quickly."""
        n = 8
        ii, jj, kk = np.indices((n, n, n))
        err = ((-1.0) ** (ii + jj + kk)).astype(float)
        f = np.zeros((n, n, n))  # exact solution is 0 (mean-free part)
        u = weighted_jacobi(err, f, SPACING, sweeps=5)
        assert np.abs(u).max() < 0.1 * np.abs(err).max()


class TestRedBlackGS:
    def test_reduces_residual_faster_than_jacobi(self, rng):
        u0, f = make_problem(rng)
        uj = weighted_jacobi(u0, f, SPACING, sweeps=4)
        ug = red_black_gauss_seidel(u0, f, SPACING, sweeps=4)
        rj = np.linalg.norm(residual(uj, f, SPACING))
        rg = np.linalg.norm(residual(ug, f, SPACING))
        assert rg < rj

    def test_odd_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            red_black_gauss_seidel(
                np.zeros((7, 8, 8)), np.zeros((7, 8, 8)), SPACING
            )
