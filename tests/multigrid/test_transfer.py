"""Restriction/prolongation operator tests."""

import numpy as np
import pytest

from repro.multigrid import prolong_trilinear, restrict_full_weighting


class TestRestriction:
    def test_constant_preserved(self):
        f = np.full((8, 8, 8), 3.5)
        c = restrict_full_weighting(f)
        assert c.shape == (4, 4, 4)
        assert np.allclose(c, 3.5)

    def test_linear_ramp_sampled(self, rng):
        # A smooth (low-frequency) field restricts to its sample values.
        x = np.cos(2 * np.pi * np.arange(16) / 16)
        f = np.broadcast_to(x[:, None, None], (16, 16, 16)).copy()
        c = restrict_full_weighting(f)
        # Full weighting slightly damps the mode but keeps its shape.
        assert np.corrcoef(c[:, 0, 0], x[::2])[0, 1] > 0.999

    def test_odd_shape_rejected(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((7, 8, 8)))

    def test_non3d_rejected(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((8, 8)))

    def test_highest_frequency_killed(self):
        """The Nyquist mode (+1/-1 checkerboard along x) restricts to ~0."""
        x = (-1.0) ** np.arange(8)
        f = np.broadcast_to(x[:, None, None], (8, 8, 8)).copy()
        c = restrict_full_weighting(f)
        assert np.abs(c).max() < 1e-14


class TestProlongation:
    def test_constant_preserved(self):
        c = np.full((4, 4, 4), 2.0)
        f = prolong_trilinear(c, (8, 8, 8))
        assert f.shape == (8, 8, 8)
        assert np.allclose(f, 2.0)

    def test_even_points_copied(self, rng):
        c = rng.standard_normal((4, 4, 4))
        f = prolong_trilinear(c, (8, 8, 8))
        assert np.allclose(f[::2, ::2, ::2], c)

    def test_odd_points_average(self, rng):
        c = rng.standard_normal((4, 4, 4))
        f = prolong_trilinear(c, (8, 8, 8))
        expected = 0.5 * (c[0, 0, 0] + c[1, 0, 0])
        assert f[1, 0, 0] == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prolong_trilinear(np.zeros((4, 4, 4)), (8, 8, 10))

    def test_adjointness(self, rng):
        """<R f, c> = const * <f, P c> (transfer operators are adjoint)."""
        f = rng.standard_normal((8, 8, 8))
        c = rng.standard_normal((4, 4, 4))
        lhs = np.sum(restrict_full_weighting(f) * c)
        rhs = np.sum(f * prolong_trilinear(c, (8, 8, 8)))
        assert lhs == pytest.approx(rhs / 8.0, rel=1e-10)
