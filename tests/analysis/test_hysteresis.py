"""Ferroelectric hysteresis analysis tests."""

import numpy as np
import pytest

from repro.analysis.hysteresis import (
    HysteresisLoop,
    excitation_softening,
    sweep_hysteresis,
)
from repro.materials import EffectiveHamiltonian, LandauParameters


@pytest.fixture(scope="module")
def ham():
    # Weak intersite coupling so the loop is cheap to sweep.
    return EffectiveHamiltonian(
        (4, 4, 4), LandauParameters(coupling=0.1, c_div=0.05)
    )


@pytest.fixture(scope="module")
def loop(ham):
    return sweep_hysteresis(ham, e_max=1.5, nsteps=13)


class TestSweep:
    def test_loop_is_hysteretic(self, loop):
        assert loop.is_hysteretic
        assert loop.loop_area() > 0.1

    def test_saturation_at_strong_field(self, loop, ham):
        p_sat = np.abs(loop.polarizations).max()
        # Saturated polarization near (or beyond) the zero-field well.
        assert p_sat > 0.8 * ham.params.p_min

    def test_remanent_polarization_finite(self, loop, ham):
        assert loop.remanent_polarization > 0.5 * ham.params.p_min

    def test_coercive_field_positive(self, loop):
        assert loop.coercive_field > 0.0

    def test_validation(self, ham):
        with pytest.raises(ValueError):
            sweep_hysteresis(ham, e_max=0.0)
        with pytest.raises(ValueError):
            sweep_hysteresis(ham, e_max=1.0, nsteps=2)
        with pytest.raises(ValueError):
            sweep_hysteresis(ham, e_max=1.0, axis=3)


class TestExcitationSoftening:
    def test_coercive_field_shrinks_with_excitation(self, ham):
        pairs = excitation_softening(ham, e_max=1.5,
                                     excitations=(0.0, 0.3), nsteps=11)
        ec = dict(pairs)
        assert ec[0.3] < ec[0.0]

    def test_above_threshold_loop_closes(self, ham):
        """Beyond the Landau threshold the paraelectric state has no loop."""
        loop = sweep_hysteresis(ham, e_max=1.5, nsteps=11, n_exc=0.8)
        assert loop.remanent_polarization < 0.1


class TestLoopObject:
    def test_no_zero_crossing_raises(self):
        loop = HysteresisLoop(
            fields=np.array([0.5, 1.0]), polarizations=np.array([1.0, 1.0]),
            axis=2,
        )
        with pytest.raises(ValueError):
            _ = loop.remanent_polarization

    def test_non_switching_loop_zero_coercive(self):
        loop = HysteresisLoop(
            fields=np.array([-1.0, 0.0, 1.0]),
            polarizations=np.array([0.5, 0.5, 0.5]),
            axis=2,
        )
        assert loop.coercive_field == 0.0
