"""Absorption-spectrum analysis tests."""

import numpy as np
import pytest

from repro.analysis import absorption_peaks, dipole_to_spectrum


class TestSpectrum:
    def test_single_mode_peak_position(self):
        """A damped cosine dipole gives one peak at its frequency."""
        omega0 = 0.8
        t = np.arange(0, 400.0, 0.2)
        dip = 0.01 * (np.cos(omega0 * t) - 1.0)
        omega, s = dipole_to_spectrum(t, dip, kick_strength=0.01, damping=0.01)
        peaks = absorption_peaks(omega, s, min_height=0.5)
        assert len(peaks) >= 1
        assert min(abs(p - omega0) for p in peaks) < 0.05

    def test_two_modes_resolved(self):
        t = np.arange(0, 600.0, 0.2)
        dip = 0.01 * (np.cos(0.5 * t) + 0.5 * np.cos(1.2 * t) - 1.5)
        omega, s = dipole_to_spectrum(t, dip, kick_strength=0.01, damping=0.005)
        peaks = absorption_peaks(omega, s, min_height=0.2)
        assert min(abs(p - 0.5) for p in peaks) < 0.05
        assert min(abs(p - 1.2) for p in peaks) < 0.05

    def test_validation(self):
        t = np.arange(0, 10.0, 0.1)
        with pytest.raises(ValueError):
            dipole_to_spectrum(t, np.zeros(5), 0.01)
        with pytest.raises(ValueError):
            dipole_to_spectrum(t, np.zeros_like(t), 0.0)
        with pytest.raises(ValueError):
            dipole_to_spectrum(t ** 2, np.zeros_like(t), 0.01)  # non-uniform

    def test_peak_threshold(self):
        omega = np.linspace(0, 2, 100)
        s = np.zeros(100)
        s[30] = 1.0
        s[60] = 0.01
        peaks = absorption_peaks(omega, s, min_height=0.05)
        assert len(peaks) == 1

    def test_empty_strength(self):
        assert absorption_peaks(np.zeros(5), np.zeros(5)).size == 0
