"""High-harmonic-generation analysis tests."""

import numpy as np
import pytest

from repro.analysis.hhg import (
    harmonic_peak_intensities,
    harmonic_spectrum,
    odd_even_contrast,
)


class TestSpectrumExtraction:
    def test_synthetic_harmonics_located(self):
        """A signal with known 1st/3rd/5th harmonic content peaks there."""
        omega0 = 0.5
        t = np.arange(0, 600.0, 0.1)
        d = (
            np.cos(omega0 * t)
            + 0.1 * np.cos(3 * omega0 * t)
            + 0.01 * np.cos(5 * omega0 * t)
        )
        orders, intensity = harmonic_spectrum(t, d, omega0)
        peaks = harmonic_peak_intensities(orders, intensity,
                                          harmonics=(1, 2, 3, 4, 5))
        assert peaks[3] > 100 * peaks[2]
        assert peaks[5] > 100 * peaks[4]
        assert odd_even_contrast(peaks) > 2.0

    def test_omega_squared_weighting(self):
        """Emission ~ |omega^2 d|^2: equal dipole amplitudes at 1 and 3
        give a 3^4 = 81x stronger 3rd-harmonic emission."""
        omega0 = 0.4
        t = np.arange(0, 800.0, 0.1)
        d = np.cos(omega0 * t) + np.cos(3 * omega0 * t)
        orders, intensity = harmonic_spectrum(t, d, omega0)
        peaks = harmonic_peak_intensities(orders, intensity, harmonics=(1, 3))
        assert peaks[3] / peaks[1] == pytest.approx(81.0, rel=0.1)

    def test_validation(self):
        t = np.arange(0, 10.0, 0.1)
        with pytest.raises(ValueError):
            harmonic_spectrum(t, np.zeros(5), 0.5)
        with pytest.raises(ValueError):
            harmonic_spectrum(t, np.zeros_like(t), -1.0)
        with pytest.raises(ValueError):
            harmonic_spectrum(t ** 1.1, np.zeros_like(t), 0.5)

    def test_contrast_needs_both_parities(self):
        with pytest.raises(ValueError):
            odd_even_contrast({1: 1.0, 3: 1.0})


class TestPhysicalHHG:
    def test_centrosymmetric_medium_suppresses_even_harmonics(self):
        """Real-time LFD in an inversion-symmetric potential under a CW
        driver emits odd harmonics only -- the attosecond-physics
        signature the paper's introduction leads with."""
        from repro.grids import Grid3D
        from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
        from repro.lfd.observables import dipole_moment
        from repro.maxwell.laser import CWField
        from repro.qxmd import KSHamiltonian, cg_eigensolve

        g = Grid3D.cubic(10, 0.5)
        c = (10 - 1) * 0.5 / 2.0
        xs, ys, zs = g.meshgrid()
        # Inversion-symmetric about the cell centre.
        vloc = -2.0 * np.exp(
            -((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 2.0
        )
        ham = KSHamiltonian(g, vloc)
        wf = WaveFunctionSet.random(g, 2, np.random.default_rng(0))
        cg_eigensolve(ham, wf, ncg=25)
        occ = np.array([2.0, 0.0])
        omega0 = 0.35
        driver = CWField(e0=0.08, omega=omega0)
        dt = 0.1
        prop = QDPropagator(
            wf, vloc, PropagatorConfig(dt=dt),
            a_of_t=lambda t: driver.vector_potential(t),
        )
        times, dips = [], []

        def observe(p):
            times.append(p.time)
            dips.append(dipole_moment(p.wf, occ)[0])

        ncycles = 14
        nsteps = int(ncycles * 2 * np.pi / omega0 / dt)
        prop.run(nsteps, observer=observe)
        orders, intensity = harmonic_spectrum(
            np.array(times), np.array(dips), omega0
        )
        # The 5th harmonic sits below the hard-turn-on transient noise at
        # this short run length; judge the symmetry rule on 2/3/4.
        peaks = harmonic_peak_intensities(orders, intensity,
                                          harmonics=(2, 3, 4),
                                          half_width=0.3)
        # The odd 3rd harmonic dominates both flanking even harmonics by
        # an order of magnitude.
        assert odd_even_contrast(peaks) > 0.8
        assert peaks[3] > 5 * max(peaks[2], peaks[4])
