"""Efficiency/speedup definition tests."""

import pytest

from repro.analysis import (
    cumulative_speedup,
    speedup,
    strong_scaling_efficiency,
    throughput,
    weak_scaling_efficiency,
)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestWeak:
    def test_perfect_scaling(self):
        # Same per-rank speed at 4 and 1024 ranks -> efficiency 1.
        assert weak_scaling_efficiency(256.0, 1.0, 1024, 4) == pytest.approx(1.0)

    def test_paper_fig2_value(self):
        """Reconstruct eta = 0.9673: speed ratio 247.6 at P ratio 256."""
        eta = weak_scaling_efficiency(0.9673 * 256.0, 1.0, 1024, 4)
        assert eta == pytest.approx(0.9673)


class TestStrong:
    def test_ideal(self):
        assert strong_scaling_efficiency(4.0, 1.0, 64, 256) == pytest.approx(1.0)

    def test_paper_fig3_value(self):
        """5,120 atoms: t(64)/t(256) = 2.654 -> eta = 0.6634."""
        eta = strong_scaling_efficiency(2.654, 1.0, 64, 256)
        assert eta == pytest.approx(0.6634, abs=1e-3)


class TestThroughput:
    def test_definition(self):
        assert throughput(4, 2.0) == pytest.approx(2.0)

    def test_fig4_shape(self):
        """CPU+GPU completes 19x more ranks per unit time (Fig. 4)."""
        t_gpu = throughput(4, 1.0)
        t_cpu = throughput(4, 19.0)
        assert t_gpu / t_cpu == pytest.approx(19.0)


class TestCumulative:
    def test_fig6_chain(self):
        """25.2 x 18.6 x 1.376 ~ 644 (the paper's cumulative speedup)."""
        total = cumulative_speedup([25.2, 18.6, 1.376])
        assert total == pytest.approx(644.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            cumulative_speedup([2.0, 0.0])
