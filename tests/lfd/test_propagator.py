"""Full QD propagator (Eq. 6) tests."""

import numpy as np
import pytest

from repro.lfd import (
    NonlocalCorrector,
    PropagatorConfig,
    QDPropagator,
    WaveFunctionSet,
)


@pytest.fixture
def setup(grid8, rng):
    wf = WaveFunctionSet.random(grid8, 4, rng)
    vloc = 0.3 * rng.standard_normal(grid8.shape)
    ref = WaveFunctionSet.random(grid8, 2, rng)
    corr = NonlocalCorrector(ref, 0.12)
    return wf, vloc, corr


class TestConfig:
    def test_bad_dt(self):
        with pytest.raises(ValueError):
            PropagatorConfig(dt=0.0)

    def test_defaults(self):
        cfg = PropagatorConfig()
        assert cfg.kin_variant == "collapsed"
        assert cfg.nl_normalize


class TestPropagation:
    def test_norm_conservation_long_run(self, setup):
        wf, vloc, corr = setup
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.04), corrector=corr)
        prop.run(100)
        assert np.abs(wf.norms() - 1.0).max() < 1e-11
        assert prop.steps_taken == 100
        assert prop.time == pytest.approx(4.0)

    def test_eigenstate_acquires_phase_only(self, grid8):
        """An eigenstate of h_loc stays stationary up to a global phase.

        Use a constant potential: plane waves are exact eigenstates of
        both the kinetic stencil and the potential.
        """
        v0 = 0.7
        vloc = np.full(grid8.shape, v0)
        k = 2 * np.pi * 1 / 8
        xs = np.arange(8)
        plane = np.exp(1j * k * xs)[:, None, None] * np.ones((8, 8, 8))
        wf = WaveFunctionSet(grid8, 1, data=plane[..., None])
        wf.normalize()
        rho0 = np.abs(wf.orbital(0)) ** 2
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05))
        prop.run(40)
        # The even/odd pair splitting is only approximately translation
        # invariant, so the density picks up an O(dt^2) ripple; verify it
        # is at the splitting-error scale, far below the density itself.
        err = np.abs(np.abs(wf.orbital(0)) ** 2 - rho0).max()
        assert err < 5e-3 * rho0.max()

    def test_laser_drives_current(self, setup, grid8):
        from repro.lfd.observables import current_expectation

        wf, vloc, _ = setup
        a_of_t = lambda t: (10.0 * np.sin(0.5 * t), 0.0, 0.0)
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05), a_of_t=a_of_t)
        j0 = current_expectation(wf, np.ones(wf.norb))[0]
        prop.run(60)
        j1 = current_expectation(wf, np.ones(wf.norb))[0]
        assert abs(j1 - j0) > 1e-4

    def test_without_field_matches_zero_field_callback(self, setup):
        wf, vloc, corr = setup
        a = wf.copy()
        b = wf.copy()
        QDPropagator(a, vloc, PropagatorConfig(dt=0.05), corrector=None).run(10)
        QDPropagator(
            b, vloc, PropagatorConfig(dt=0.05), corrector=None,
            a_of_t=lambda t: (0.0, 0.0, 0.0),
        ).run(10)
        assert a.max_abs_diff(b) < 1e-14

    def test_kin_variant_invariance(self, setup):
        wf, vloc, corr = setup
        results = []
        for variant in ("baseline", "collapsed"):
            w = wf.copy()
            QDPropagator(
                w, vloc,
                PropagatorConfig(dt=0.05, kin_variant=variant),
                corrector=corr,
            ).run(5)
            results.append(w)
        assert results[0].max_abs_diff(results[1]) < 1e-12


class TestShadowAmortization:
    def test_set_potential_refreshes_phase(self, setup):
        wf, vloc, _ = setup
        prop = QDPropagator(wf.copy(), vloc, PropagatorConfig(dt=0.05))
        old_phase = prop._half_phase.copy()
        prop.set_potential(vloc * 2.0)
        assert np.abs(prop._half_phase - old_phase).max() > 1e-6

    def test_set_potential_shape_check(self, setup):
        wf, vloc, _ = setup
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05))
        with pytest.raises(ValueError):
            prop.set_potential(np.zeros((2, 2, 2)))

    def test_observer_called(self, setup):
        wf, vloc, _ = setup
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05))
        calls = []
        prop.run(10, observer=lambda p: calls.append(p.steps_taken),
                 observe_every=2)
        assert calls == [2, 4, 6, 8, 10]

    def test_negative_steps(self, setup):
        wf, vloc, _ = setup
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05))
        with pytest.raises(ValueError):
            prop.run(-1)

    def test_renormalize_every(self, setup):
        wf, vloc, corr = setup
        cfg = PropagatorConfig(dt=0.05, renormalize_every=3)
        prop = QDPropagator(wf, vloc, cfg, corrector=corr)
        prop.run(9)
        assert np.abs(wf.norms() - 1.0).max() < 1e-12
