"""Energy kernel tests (calc_energy / band_energies)."""

import numpy as np
import pytest

from repro.lfd import NonlocalCorrector, WaveFunctionSet, band_energies, calc_energy
from repro.lfd.energy import apply_kinetic, band_energies_naive


class TestKineticApply:
    def test_plane_wave_eigenvalue(self, grid8):
        k = 2 * np.pi * 2 / 8
        xs = np.arange(8)
        plane = np.exp(1j * k * xs)[:, None, None] * np.ones((8, 8, 8))
        wf = WaveFunctionSet(grid8, 1, data=plane[..., None])
        tpsi = apply_kinetic(wf)
        lam = (1.0 - np.cos(k)) / (0.5 ** 2)
        assert np.abs(tpsi[..., 0] - lam * wf.orbital(0)).max() < 1e-12

    def test_kinetic_positive(self, wf_small):
        e = band_energies(wf_small, np.zeros(wf_small.grid.shape))
        assert np.all(e > 0)


class TestBandEnergies:
    def test_blas_matches_naive(self, wf_small, rng):
        vloc = rng.standard_normal(wf_small.grid.shape)
        ref = WaveFunctionSet.random(wf_small.grid, 2, rng)
        corr = NonlocalCorrector(ref, 0.23)
        e_blas = band_energies(wf_small, vloc, corrector=corr)
        e_naive = band_energies_naive(wf_small, vloc, corrector=corr)
        assert np.abs(e_blas - e_naive).max() < 1e-12

    def test_constant_potential_shift(self, wf_small):
        v0 = np.zeros(wf_small.grid.shape)
        v1 = np.full(wf_small.grid.shape, 1.3)
        e0 = band_energies(wf_small, v0)
        e1 = band_energies(wf_small, v1)
        assert np.allclose(e1 - e0, 1.3)

    def test_scissor_term_nonnegative(self, wf_small, rng):
        ref = WaveFunctionSet.random(wf_small.grid, 3, rng)
        vloc = np.zeros(wf_small.grid.shape)
        e_no = band_energies(wf_small, vloc)
        e_sci = band_energies(wf_small, vloc, corrector=NonlocalCorrector(ref, 0.5))
        # Positive scissor shift can only raise energies.
        assert np.all(e_sci >= e_no - 1e-12)

    def test_shape_mismatch(self, wf_small):
        with pytest.raises(ValueError):
            band_energies(wf_small, np.zeros((3, 3, 3)))


class TestTotalEnergy:
    def test_weighted_sum(self, wf_small, rng):
        vloc = rng.standard_normal(wf_small.grid.shape)
        f = np.array([2.0, 2.0, 1.0, 0.0])
        e = band_energies(wf_small, vloc)
        assert calc_energy(wf_small, vloc, f) == pytest.approx(float(f @ e))

    def test_occupation_shape_check(self, wf_small, rng):
        vloc = rng.standard_normal(wf_small.grid.shape)
        with pytest.raises(ValueError):
            calc_energy(wf_small, vloc, np.ones(3))

    def test_empty_occupations_zero(self, wf_small, rng):
        vloc = rng.standard_normal(wf_small.grid.shape)
        assert calc_energy(wf_small, vloc, np.zeros(4)) == 0.0
