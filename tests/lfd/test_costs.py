"""LFD flop/byte inventory tests."""

import pytest

from repro.lfd.costs import KernelCost, LFDWorkload


@pytest.fixture
def workload():
    return LFDWorkload(ngrid=70 * 70 * 72, norb=64, nunocc=32, itemsize=16, nqd=1000)


class TestValidation:
    def test_bad_itemsize(self):
        with pytest.raises(ValueError):
            LFDWorkload(ngrid=100, norb=4, nunocc=2, itemsize=4)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            LFDWorkload(ngrid=0, norb=4, nunocc=2)

    def test_real_itemsize(self, workload):
        assert workload.real_itemsize == 8
        sp = LFDWorkload(ngrid=10, norb=2, nunocc=1, itemsize=8)
        assert sp.real_itemsize == 4


class TestScaling:
    def test_kin_prop_linear_in_orbitals(self):
        a = LFDWorkload(ngrid=1000, norb=8, nunocc=4)
        b = LFDWorkload(ngrid=1000, norb=16, nunocc=4)
        assert b.kin_prop_step().flops == pytest.approx(2 * a.kin_prop_step().flops)

    def test_nine_passes_per_step(self, workload):
        assert workload.kin_prop_step().flops == pytest.approx(
            9 * workload.kin_prop_pass().flops
        )

    def test_nonlocal_naive_moves_more_bytes(self, workload):
        blas = workload.nonlocal_half()
        naive = workload.nonlocal_half_naive()
        assert naive.flops == pytest.approx(blas.flops)
        assert naive.bytes_moved > 10 * blas.bytes_moved

    def test_sp_halves_bytes(self):
        dp = LFDWorkload(ngrid=1000, norb=8, nunocc=4, itemsize=16)
        sp = LFDWorkload(ngrid=1000, norb=8, nunocc=4, itemsize=8)
        assert sp.kin_prop_step().bytes_moved == pytest.approx(
            dp.kin_prop_step().bytes_moved / 2
        )

    def test_qd_step_kernel_list(self, workload):
        steps = workload.qd_step()
        names = [k.name for k in steps]
        assert names == [
            "nonlocal_half", "pot_prop_half", "kin_prop",
            "pot_prop_half", "nonlocal_half",
        ]


class TestMDStep:
    def test_totals_groups(self, workload):
        tot = workload.md_step_totals()
        assert set(tot) == {
            "electron_propagation", "nonlocal_correction",
            "calc_energy", "remap_occ",
        }
        # Per-MD-step work dominated by the N_QD amortized kernels.
        assert tot["electron_propagation"].flops > 100 * tot["calc_energy"].flops

    def test_shadow_handshake_tiny(self, workload):
        hs = workload.shadow_handshake_bytes()
        assert hs < 0.01 * workload.psi_bytes
        # And independent of N_QD.
        w2 = LFDWorkload(ngrid=workload.ngrid, norb=64, nunocc=32, nqd=10)
        assert w2.shadow_handshake_bytes() == hs

    def test_kernel_cost_addition(self):
        a = KernelCost("x", 10.0, 20.0)
        b = KernelCost("x", 1.0, 2.0)
        c = a + b
        assert (c.flops, c.bytes_moved) == (11.0, 22.0)
