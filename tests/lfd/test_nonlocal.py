"""Nonlocal correction (Eqs. 7-9): naive/BLAS agreement and properties."""

import numpy as np
import pytest

from repro.lfd import (
    NonlocalCorrector,
    WaveFunctionSet,
    nonlocal_correction_blas,
    nonlocal_correction_naive,
)


@pytest.fixture
def ref_unocc(grid8, rng):
    return WaveFunctionSet.random(grid8, 3, rng)


class TestAgreement:
    @pytest.mark.parametrize("normalize", [True, False])
    def test_naive_matches_blas(self, wf_small, ref_unocc, normalize):
        a, b = wf_small.copy(), wf_small.copy()
        nonlocal_correction_naive(a, ref_unocc, 0.15, 0.05, normalize=normalize)
        nonlocal_correction_blas(b, ref_unocc, 0.15, 0.05, normalize=normalize)
        assert a.max_abs_diff(b) < 1e-13

    def test_corrector_dispatch(self, wf_small, ref_unocc):
        a, b = wf_small.copy(), wf_small.copy()
        NonlocalCorrector(ref_unocc, 0.15, variant="naive").apply(a, 0.05)
        NonlocalCorrector(ref_unocc, 0.15, variant="blas").apply(b, 0.05)
        assert a.max_abs_diff(b) < 1e-13

    def test_bad_variant(self, ref_unocc):
        with pytest.raises(ValueError):
            NonlocalCorrector(ref_unocc, 0.1, variant="cublas")


class TestProperties:
    def test_zero_scissor_identity_up_to_norm(self, wf_small, ref_unocc):
        a = wf_small.copy()
        nonlocal_correction_blas(a, ref_unocc, 0.0, 0.05)
        assert a.max_abs_diff(wf_small) < 1e-12

    def test_normalized_output(self, wf_small, ref_unocc):
        nonlocal_correction_blas(wf_small, ref_unocc, 0.4, 0.1)
        assert np.abs(wf_small.norms() - 1.0).max() < 1e-12

    def test_orthogonal_subspace_untouched(self, grid8, rng):
        """Orbitals orthogonal to the reference block are unchanged."""
        big = WaveFunctionSet.random(grid8, 6, rng)
        ref = WaveFunctionSet(grid8, 2, data=big.psi[..., :2])
        probe = WaveFunctionSet(grid8, 2, data=big.psi[..., 4:6])
        before = probe.copy()
        nonlocal_correction_blas(probe, ref, 0.3, 0.1)
        assert probe.max_abs_diff(before) < 1e-12

    def test_first_order_in_dt(self, wf_small, ref_unocc):
        """The correction magnitude scales ~ linearly with dt (small dt)."""
        a, b = wf_small.copy(), wf_small.copy()
        nonlocal_correction_blas(a, ref_unocc, 0.2, 1e-3, normalize=False)
        nonlocal_correction_blas(b, ref_unocc, 0.2, 2e-3, normalize=False)
        da = np.abs(a.psi - wf_small.psi).max()
        db = np.abs(b.psi - wf_small.psi).max()
        assert db / da == pytest.approx(2.0, rel=1e-6)

    def test_grid_mismatch(self, wf_small, grid12, rng):
        ref = WaveFunctionSet.random(grid12, 2, rng)
        with pytest.raises(ValueError):
            nonlocal_correction_blas(wf_small, ref, 0.1, 0.05)


class TestCostModel:
    def test_flop_count_positive_and_scales(self, ref_unocc):
        c = NonlocalCorrector(ref_unocc, 0.1)
        f1 = c.flop_count(norb=8, ngrid=1000)
        f2 = c.flop_count(norb=16, ngrid=1000)
        assert f2 == pytest.approx(2 * f1)

    def test_byte_count_scales_with_itemsize(self, ref_unocc):
        c = NonlocalCorrector(ref_unocc, 0.1)
        assert c.byte_count(8, 1000, 16) == pytest.approx(
            2 * c.byte_count(8, 1000, 8)
        )
