"""Velocity-gauge coupling helpers."""

import numpy as np
import pytest

from repro.constants import C_LIGHT
from repro.lfd.vector_gauge import field_from_vector_potential, peierls_phases


class TestPeierls:
    def test_zero_field_zero_phase(self, grid8):
        assert peierls_phases(grid8, (0.0, 0.0, 0.0)) == (0.0, 0.0, 0.0)

    def test_scaling_with_spacing(self, aniso_grid):
        th = peierls_phases(aniso_grid, (C_LIGHT, C_LIGHT, C_LIGHT))
        assert th == pytest.approx(aniso_grid.spacing)

    def test_linear_in_field(self, grid8):
        a = np.array([1.0, -2.0, 3.0])
        t1 = np.array(peierls_phases(grid8, a))
        t2 = np.array(peierls_phases(grid8, 2 * a))
        assert np.allclose(t2, 2 * t1)

    def test_bad_shape(self, grid8):
        with pytest.raises(ValueError):
            peierls_phases(grid8, (1.0, 2.0))


class TestField:
    def test_central_difference(self):
        a0 = np.array([0.0, 0.0, 0.0])
        a1 = np.array([2.0 * C_LIGHT, 0.0, 0.0])
        e = field_from_vector_potential(a0, a1, dt=2.0)
        assert e[0] == pytest.approx(-1.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            field_from_vector_potential(np.zeros(3), np.ones(3), 0.0)
