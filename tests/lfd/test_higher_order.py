"""4th-order Suzuki composition and CAP tests."""

import numpy as np
import pytest

from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
from repro.lfd.cap import cos2_absorber, ionization_yield


@pytest.fixture
def system(grid8, rng):
    wf = WaveFunctionSet.random(grid8, 2, rng)
    vloc = 0.5 * rng.standard_normal(grid8.shape)
    return wf, vloc


class TestSuzukiOrder4:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PropagatorConfig(order=3)

    def test_convergence_orders(self, system):
        """Order 2 halving-error ratio ~4; order 4 ratio ~16."""
        wf0, vloc = system
        T = 0.8
        ref = wf0.copy()
        QDPropagator(ref, vloc, PropagatorConfig(dt=T / 512, order=4)).run(512)
        ratios = {}
        for order in (2, 4):
            errs = []
            for nsteps in (8, 16):
                w = wf0.copy()
                QDPropagator(
                    w, vloc, PropagatorConfig(dt=T / nsteps, order=order)
                ).run(nsteps)
                errs.append(ref.max_abs_diff(w))
            ratios[order] = errs[0] / errs[1]
        assert ratios[2] == pytest.approx(4.0, rel=0.3)
        assert ratios[4] == pytest.approx(16.0, rel=0.4)

    def test_order4_more_accurate_at_same_dt(self, system):
        wf0, vloc = system
        ref = wf0.copy()
        QDPropagator(ref, vloc, PropagatorConfig(dt=0.4 / 512, order=4)).run(512)
        w2, w4 = wf0.copy(), wf0.copy()
        QDPropagator(w2, vloc, PropagatorConfig(dt=0.1, order=2)).run(4)
        QDPropagator(w4, vloc, PropagatorConfig(dt=0.1, order=4)).run(4)
        assert ref.max_abs_diff(w4) < 0.05 * ref.max_abs_diff(w2)

    def test_order4_unitary(self, system):
        wf, vloc = system
        QDPropagator(wf, vloc, PropagatorConfig(dt=0.1, order=4)).run(20)
        assert np.abs(wf.norms() - 1.0).max() < 1e-11

    def test_order4_with_laser_runs(self, system):
        wf, vloc = system
        prop = QDPropagator(
            wf, vloc, PropagatorConfig(dt=0.1, order=4),
            a_of_t=lambda t: (3.0 * np.sin(0.5 * t), 0.0, 0.0),
        )
        prop.run(10)
        assert prop.time == pytest.approx(1.0)


class TestCAP:
    def test_absorber_profile(self, grid12):
        w = cos2_absorber(grid12, width_points=3, strength=0.5, axes=(0,))
        assert w.max() == pytest.approx(0.5)
        # Interior untouched.
        assert np.all(w[3:-3, :, :] == 0.0)
        # Symmetric ramps.
        assert np.allclose(w[0, 0, 0], w[-1, 0, 0])

    def test_absorber_validation(self, grid8):
        with pytest.raises(ValueError):
            cos2_absorber(grid8, width_points=0, strength=1.0)
        with pytest.raises(ValueError):
            cos2_absorber(grid8, width_points=4, strength=1.0)  # no interior
        with pytest.raises(ValueError):
            cos2_absorber(grid8, width_points=2, strength=-1.0)

    def test_no_cap_norm_conserved(self, system):
        wf, vloc = system
        QDPropagator(wf, vloc, PropagatorConfig(dt=0.05)).run(40)
        assert np.abs(wf.norms() - 1.0).max() < 1e-11

    def test_cap_absorbs_driven_electrons(self, grid12, rng):
        """A strong laser drives flux into the absorber: norm decays and
        the ionization yield is positive."""
        wf = WaveFunctionSet.random(grid12, 2, rng)
        vloc = np.zeros(grid12.shape)
        cap = cos2_absorber(grid12, width_points=3, strength=1.0, axes=(0,))
        n0 = wf.norms().copy()
        occ = np.array([2.0, 2.0])
        prop = QDPropagator(
            wf, vloc, PropagatorConfig(dt=0.05), cap=cap,
            a_of_t=lambda t: (30.0 * np.sin(0.4 * t), 0.0, 0.0),
        )
        prop.run(100)
        y = ionization_yield(n0, wf, occ)
        assert y > 0.01
        assert np.all(wf.norms() < 1.0)

    def test_cap_shape_and_sign_validation(self, system):
        wf, vloc = system
        with pytest.raises(ValueError):
            QDPropagator(wf, vloc, PropagatorConfig(dt=0.05),
                         cap=np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            QDPropagator(wf, vloc, PropagatorConfig(dt=0.05),
                         cap=-np.ones(wf.grid.shape))

    def test_yield_validation(self, system):
        wf, _ = system
        with pytest.raises(ValueError):
            ionization_yield(np.ones(3), wf, np.ones(2))
