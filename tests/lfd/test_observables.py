"""Density, dipole, current observables."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet, current_expectation, density, dipole_moment


class TestDensity:
    def test_integrates_to_electron_count(self, wf_small):
        f = np.array([2.0, 2.0, 1.0, 0.0])
        rho = density(wf_small, f)
        n = rho.sum() * wf_small.grid.dvol
        assert n == pytest.approx(f.sum(), rel=1e-12)

    def test_nonnegative(self, wf_small):
        rho = density(wf_small, np.ones(4))
        assert np.all(rho >= 0.0)

    def test_occupation_shape_check(self, wf_small):
        with pytest.raises(ValueError):
            density(wf_small, np.ones(2))


class TestDipole:
    def test_gaussian_dipole_at_minus_center(self, grid8):
        """Dipole of a localized electron is -e times its centroid."""
        xs, ys, zs = grid8.meshgrid()
        c = 1.75  # centre of the 8 x 0.5 cell
        g = np.exp(-((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2))
        wf = WaveFunctionSet(grid8, 1, data=g[..., None].astype(complex))
        wf.normalize()
        d = dipole_moment(wf, np.array([1.0]))
        assert np.allclose(d, -c, atol=1e-6)

    def test_offset_gaussian_shifts_dipole(self, grid8):
        xs, ys, zs = grid8.meshgrid()
        c = 1.75
        g0 = np.exp(-((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 0.25)
        g1 = np.exp(-((xs - c - 0.5) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 0.25)
        d = []
        for g in (g0, g1):
            wf = WaveFunctionSet(grid8, 1, data=g[..., None].astype(complex))
            wf.normalize()
            d.append(dipole_moment(wf, np.array([1.0])))
        # Electron displaced by +0.5 along x lowers the dipole by ~0.5.
        assert d[1][0] - d[0][0] == pytest.approx(-0.5, rel=0.05)
        assert d[1][1] == pytest.approx(d[0][1], abs=1e-8)


class TestCurrent:
    def test_real_wavefunction_zero_paramagnetic_current(self, grid8, rng):
        data = rng.standard_normal(grid8.shape + (2,)).astype(complex)
        wf = WaveFunctionSet(grid8, 2, data=data)
        wf.normalize()
        j = current_expectation(wf, np.ones(2))
        assert np.abs(j).max() < 1e-12

    def test_plane_wave_carries_momentum(self, grid8):
        k = 2 * np.pi * 1 / (8 * 0.5)
        xs, _, _ = grid8.meshgrid()
        psi = np.exp(1j * k * xs)
        wf = WaveFunctionSet(grid8, 1, data=psi[..., None])
        wf.normalize()
        j = current_expectation(wf, np.array([1.0]))
        # Discrete sin(k h)/h instead of k.
        assert j[0] == pytest.approx(np.sin(k * 0.5) / 0.5, rel=1e-10)

    def test_diamagnetic_term(self, grid8, rng):
        data = rng.standard_normal(grid8.shape + (1,)).astype(complex)
        wf = WaveFunctionSet(grid8, 1, data=data)
        wf.normalize()
        from repro.constants import C_LIGHT

        a = (C_LIGHT * 0.4, 0.0, 0.0)
        j = current_expectation(wf, np.array([1.0]), a_field=a)
        assert j[0] == pytest.approx(0.4, rel=1e-10)
