"""WaveFunctionSet: layouts, norms, orthonormalization, precision."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet


class TestConstruction:
    def test_zero_init(self, grid8):
        wf = WaveFunctionSet(grid8, 3)
        assert wf.psi.shape == grid8.shape + (3,)
        assert np.all(wf.psi == 0)

    def test_bad_norb(self, grid8):
        with pytest.raises(ValueError):
            WaveFunctionSet(grid8, 0)

    def test_bad_dtype(self, grid8):
        with pytest.raises(ValueError):
            WaveFunctionSet(grid8, 2, dtype=np.float64)

    def test_data_shape_check(self, grid8):
        with pytest.raises(ValueError):
            WaveFunctionSet(grid8, 2, data=np.zeros((2,) + grid8.shape))

    def test_random_reproducible(self, grid8):
        a = WaveFunctionSet.random(grid8, 3, np.random.default_rng(7))
        b = WaveFunctionSet.random(grid8, 3, np.random.default_rng(7))
        assert a.max_abs_diff(b) == 0.0


class TestLayouts:
    def test_aos_roundtrip(self, wf_small):
        aos = wf_small.to_aos()
        assert aos.shape == (4,) + wf_small.grid.shape
        copy = wf_small.copy()
        copy.psi[:] = 0
        copy.from_aos(aos)
        assert copy.max_abs_diff(wf_small) == 0.0

    def test_aos_is_contiguous(self, wf_small):
        assert wf_small.to_aos().flags["C_CONTIGUOUS"]

    def test_from_aos_shape_check(self, wf_small):
        with pytest.raises(ValueError):
            wf_small.from_aos(np.zeros((5,) + wf_small.grid.shape))

    def test_as_matrix_view_shares_memory(self, wf_small):
        m = wf_small.as_matrix()
        m[0, 0] = 123.0
        assert wf_small.psi[0, 0, 0, 0] == 123.0

    def test_orbital_view(self, wf_small):
        orb = wf_small.orbital(2)
        assert orb.shape == wf_small.grid.shape
        wf_small.set_orbital(2, np.zeros(wf_small.grid.shape))
        assert np.all(wf_small.orbital(2) == 0)


class TestNorms:
    def test_random_is_orthonormal(self, wf_medium):
        s = wf_medium.overlap_matrix()
        assert np.abs(s - np.eye(wf_medium.norb)).max() < 1e-12

    def test_normalize(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 3, rng, orthonormal=False)
        wf.psi *= 3.7
        wf.normalize()
        assert np.allclose(wf.norms(), 1.0)

    def test_normalize_zero_orbital_raises(self, grid8):
        wf = WaveFunctionSet(grid8, 2)
        with pytest.raises(ZeroDivisionError):
            wf.normalize()

    def test_orthonormalize_idempotent(self, wf_small):
        before = wf_small.psi.copy()
        wf_small.orthonormalize()
        assert np.abs(wf_small.psi - before).max() < 1e-10

    def test_overlap_cross_set(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 3, rng)
        b = WaveFunctionSet.random(grid8, 2, rng)
        s = a.overlap_matrix(b)
        assert s.shape == (3, 2)
        # Completeness bound: |<a_i|b_j>| <= 1.
        assert np.abs(s).max() <= 1.0 + 1e-12

    def test_overlap_grid_mismatch(self, grid8, grid12, rng):
        a = WaveFunctionSet.random(grid8, 2, rng)
        b = WaveFunctionSet.random(grid12, 2, rng)
        with pytest.raises(ValueError):
            a.overlap_matrix(b)


class TestPrecision:
    def test_astype_sp(self, wf_small):
        sp = wf_small.astype(np.complex64)
        assert sp.dtype == np.complex64
        assert sp.max_abs_diff(wf_small.astype(np.complex64)) == 0.0
        # SP representation error is ~1e-7 relative.
        assert wf_small.max_abs_diff(sp.astype(np.complex128)) < 1e-6

    def test_nbytes_halves_in_sp(self, wf_small):
        assert wf_small.astype(np.complex64).nbytes * 2 == wf_small.nbytes
