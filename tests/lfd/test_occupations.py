"""Occupation remapping (remap_occ) tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet, remap_occ
from repro.lfd.occupations import remap_occ_naive


class TestRemap:
    def test_identity_basis(self, wf_small):
        f = np.array([2.0, 2.0, 1.0, 0.0])
        f_new = remap_occ(wf_small, wf_small, f)
        assert np.abs(f_new - f).max() < 1e-12

    def test_naive_matches_blas(self, wf_small, grid8, rng):
        basis = WaveFunctionSet.random(grid8, 5, rng)
        f = np.array([2.0, 1.5, 1.0, 0.5])
        a = remap_occ(wf_small, basis, f)
        b = remap_occ_naive(wf_small, basis, f)
        assert np.abs(a - b).max() < 1e-12

    def test_conservation_within_span(self, grid8, rng):
        """If psi(t) stays in span(basis), total occupation is conserved."""
        basis = WaveFunctionSet.random(grid8, 6, rng)
        # Build psi as a unitary mix of the basis.
        q, _ = np.linalg.qr(rng.standard_normal((6, 4))
                            + 1j * rng.standard_normal((6, 4)))
        m = basis.as_matrix() @ q
        wf_t = WaveFunctionSet(grid8, 4, data=m.reshape(grid8.shape + (4,)))
        f = np.array([2.0, 2.0, 1.0, 0.5])
        f_new = remap_occ(wf_t, basis, f)
        assert f_new.sum() == pytest.approx(f.sum(), rel=1e-10)
        assert np.all(f_new >= -1e-12)

    def test_population_never_created(self, grid8, rng):
        """Remapping cannot create occupation (projection is contractive)."""
        basis = WaveFunctionSet.random(grid8, 3, rng)
        wf_t = WaveFunctionSet.random(grid8, 4, rng)
        f = np.array([2.0, 2.0, 2.0, 2.0])
        f_new = remap_occ(wf_t, basis, f)
        assert f_new.sum() <= f.sum() + 1e-10

    def test_swapped_orbitals_swap_occupations(self, grid8, rng):
        basis = WaveFunctionSet.random(grid8, 4, rng)
        swapped = basis.copy()
        swapped.psi = swapped.psi[..., [1, 0, 2, 3]]
        f = np.array([2.0, 0.0, 1.0, 0.0])
        f_new = remap_occ(swapped, basis, f)
        assert f_new == pytest.approx([0.0, 2.0, 1.0, 0.0], abs=1e-12)

    def test_bad_occupations(self, wf_small):
        with pytest.raises(ValueError):
            remap_occ(wf_small, wf_small, np.ones(3))

    def test_grid_mismatch(self, wf_small, grid12, rng):
        basis = WaveFunctionSet.random(grid12, 4, rng)
        with pytest.raises(ValueError):
            remap_occ(wf_small, basis, np.ones(4))
