"""Single-precision (complex64) end-to-end paths (the SP columns of Table II)."""

import numpy as np
import pytest

from repro.lfd import (
    NonlocalCorrector,
    PropagatorConfig,
    QDPropagator,
    WaveFunctionSet,
    kinetic_step,
)


@pytest.fixture
def sp_setup(grid8, rng):
    wf = WaveFunctionSet.random(grid8, 4, rng, dtype=np.complex64)
    vloc = 0.3 * rng.standard_normal(grid8.shape)
    ref = WaveFunctionSet.random(grid8, 2, rng, dtype=np.complex64)
    return wf, vloc, ref


class TestSPKernels:
    @pytest.mark.parametrize("variant", ["baseline", "interchange",
                                         "blocked", "collapsed"])
    def test_kinetic_step_keeps_dtype_and_norm(self, sp_setup, variant):
        wf, _, _ = sp_setup
        kinetic_step(wf, 0.03, variant=variant)
        assert wf.psi.dtype == np.complex64
        assert np.abs(wf.norms() - 1.0).max() < 1e-5

    def test_sp_tracks_dp_trajectory(self, sp_setup):
        """SP propagation stays within single-precision distance of DP."""
        wf_sp, vloc, ref = sp_setup
        wf_dp = wf_sp.astype(np.complex128)
        for _ in range(20):
            kinetic_step(wf_sp, 0.05)
            kinetic_step(wf_dp, 0.05)
        diff = np.abs(
            wf_sp.psi.astype(np.complex128) - wf_dp.psi
        ).max()
        assert diff < 5e-5  # accumulated SP round-off over 20 steps

    def test_full_propagator_sp(self, sp_setup):
        wf, vloc, ref = sp_setup
        corr = NonlocalCorrector(ref, 0.1)
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05), corrector=corr)
        prop.run(30)
        assert wf.psi.dtype == np.complex64
        assert np.abs(wf.norms() - 1.0).max() < 1e-4

    def test_sp_memory_is_half(self, grid8, rng):
        sp = WaveFunctionSet.random(grid8, 4, rng, dtype=np.complex64)
        dp = WaveFunctionSet.random(grid8, 4, rng, dtype=np.complex128)
        assert sp.nbytes * 2 == dp.nbytes
