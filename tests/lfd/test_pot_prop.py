"""Local-potential phase propagator tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet, potential_phase_step
from repro.lfd.pot_prop import potential_phase


class TestPhaseField:
    def test_unit_modulus(self, grid8, rng):
        v = rng.standard_normal(grid8.shape)
        ph = potential_phase(v, 0.1)
        assert np.allclose(np.abs(ph), 1.0)

    def test_zero_potential_identity(self, grid8):
        ph = potential_phase(np.zeros(grid8.shape), 0.5)
        assert np.allclose(ph, 1.0)

    def test_additivity_in_time(self, grid8, rng):
        v = rng.standard_normal(grid8.shape)
        assert np.allclose(
            potential_phase(v, 0.3), potential_phase(v, 0.1) * potential_phase(v, 0.2)
        )


class TestStep:
    def test_norm_conserved(self, wf_small, rng):
        v = rng.standard_normal(wf_small.grid.shape)
        potential_phase_step(wf_small, v, 0.2)
        assert np.abs(wf_small.norms() - 1.0).max() < 1e-12

    def test_density_unchanged(self, wf_small, rng):
        """A diagonal phase cannot change |psi|^2."""
        from repro.lfd.observables import density

        v = rng.standard_normal(wf_small.grid.shape)
        f = np.ones(wf_small.norb)
        rho0 = density(wf_small, f)
        potential_phase_step(wf_small, v, 0.7)
        assert np.abs(density(wf_small, f) - rho0).max() < 1e-12

    def test_constant_potential_global_phase(self, wf_small):
        v = np.full(wf_small.grid.shape, 2.0)
        before = wf_small.psi.copy()
        potential_phase_step(wf_small, v, 0.25)
        expected = before * np.exp(-1j * 2.0 * 0.25)
        assert np.abs(wf_small.psi - expected).max() < 1e-12

    def test_cached_phase_reused(self, wf_small, rng):
        """Passing the returned phase must give identical results."""
        v = rng.standard_normal(wf_small.grid.shape)
        twin = wf_small.copy()
        phase = potential_phase_step(wf_small, v, 0.1)
        potential_phase_step(twin, v, 0.1, phase=phase)
        assert wf_small.max_abs_diff(twin) == 0.0

    def test_shape_mismatch(self, wf_small):
        with pytest.raises(ValueError):
            potential_phase_step(wf_small, np.zeros((2, 2, 2)), 0.1)

    def test_single_precision_path(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 2, rng, dtype=np.complex64)
        v = rng.standard_normal(grid8.shape)
        potential_phase_step(wf, v, 0.1)
        assert wf.dtype == np.complex64
        assert np.abs(wf.norms() - 1.0).max() < 1e-5
