"""Algorithms 1-5 kernel tests: cross-variant equality, unitarity, physics."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.grids import Grid3D
from repro.grids.stencil import pair_split_coefficients
from repro.lfd import WaveFunctionSet, kinetic_step
from repro.lfd.kin_prop import (
    KIN_PROP_VARIANTS,
    kin_prop_baseline,
    kin_prop_blocked,
    kin_prop_collapsed,
    kin_prop_interchange,
)

VARIANTS = ["baseline", "interchange", "blocked", "collapsed"]


class TestCrossVariantEquality:
    @pytest.mark.parametrize("variant", VARIANTS[1:])
    def test_matches_baseline(self, grid8, rng, variant):
        wf_ref = WaveFunctionSet.random(grid8, 5, rng)
        wf_v = wf_ref.copy()
        kinetic_step(wf_ref, 0.03, theta=(0.2, -0.1, 0.4), variant="baseline")
        kinetic_step(wf_v, 0.03, theta=(0.2, -0.1, 0.4), variant=variant, block_size=2)
        assert wf_ref.max_abs_diff(wf_v) < 1e-13

    def test_anisotropic_grid(self, aniso_grid, rng):
        wf_a = WaveFunctionSet.random(aniso_grid, 3, rng)
        wf_b = wf_a.copy()
        kinetic_step(wf_a, 0.05, variant="baseline")
        kinetic_step(wf_b, 0.05, variant="collapsed")
        assert wf_a.max_abs_diff(wf_b) < 1e-13

    @pytest.mark.parametrize("block_size", [1, 3, 4, 100])
    def test_block_size_invariance(self, grid8, rng, block_size):
        wf_ref = WaveFunctionSet.random(grid8, 5, rng)
        wf_b = wf_ref.copy()
        kinetic_step(wf_ref, 0.03, variant="collapsed")
        kinetic_step(wf_b, 0.03, variant="blocked", block_size=block_size)
        assert wf_ref.max_abs_diff(wf_b) < 1e-14


class TestTailBlocks:
    """Blocked kernel with ``norb % block_size != 0``: the ragged final
    orbital block must reproduce the unblocked arithmetic exactly."""

    NORB = 13  # prime: every block size below leaves a ragged tail

    @pytest.mark.parametrize("block_size", [2, 3, 5, 7, 11])
    def test_tail_block_bitwise_vs_baseline(self, grid8, rng, block_size):
        assert self.NORB % block_size != 0
        wf_ref = WaveFunctionSet.random(grid8, self.NORB, rng)
        wf_b = wf_ref.copy()
        kinetic_step(wf_ref, 0.03, theta=(0.1, -0.2, 0.3),
                     variant="baseline")
        kinetic_step(wf_b, 0.03, theta=(0.1, -0.2, 0.3),
                     variant="blocked", block_size=block_size)
        # Exact equality, not a tolerance: the blocked update performs
        # the identical scalar operations on every orbital, tail block
        # included, and the baseline's extra zero-coefficient term
        # (0 * psi) cannot change any value.
        assert np.array_equal(wf_ref.psi, wf_b.psi)

    @pytest.mark.parametrize("block_size", [4, 6, 9])
    def test_tail_block_bitwise_vs_collapsed(self, grid8, rng, block_size):
        wf_ref = WaveFunctionSet.random(grid8, self.NORB, rng)
        wf_b = wf_ref.copy()
        kinetic_step(wf_ref, 0.04, variant="collapsed")
        kinetic_step(wf_b, 0.04, variant="blocked", block_size=block_size)
        assert np.array_equal(wf_ref.psi, wf_b.psi)

    def test_block_larger_than_norb(self, grid8, rng):
        wf_ref = WaveFunctionSet.random(grid8, 3, rng)
        wf_b = wf_ref.copy()
        kinetic_step(wf_ref, 0.03, variant="collapsed")
        kinetic_step(wf_b, 0.03, variant="blocked", block_size=64)
        assert np.array_equal(wf_ref.psi, wf_b.psi)


class TestUnitarity:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_norm_conserved(self, grid8, rng, variant):
        wf = WaveFunctionSet.random(grid8, 4, rng)
        for _ in range(20):
            kinetic_step(wf, 0.05, theta=(0.3, 0.0, -0.2), variant=variant)
        assert np.abs(wf.norms() - 1.0).max() < 1e-12

    def test_orthogonality_conserved(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 4, rng)
        for _ in range(10):
            kinetic_step(wf, 0.05, variant="collapsed")
        s = wf.overlap_matrix()
        assert np.abs(s - np.eye(4)).max() < 1e-12


class TestPhysics:
    def test_matches_dense_exponential_1d(self):
        """Whole-step propagation agrees with expm of the 3-D kinetic op."""
        g = Grid3D((4, 4, 4), (0.7, 0.7, 0.7))
        rng = np.random.default_rng(5)
        wf = WaveFunctionSet.random(g, 2, rng)
        ref = wf.copy()
        dt = 0.02
        kinetic_step(wf, dt, variant="collapsed")
        # Build the dense 3-D kinetic matrix from 1-D pieces.
        from repro.grids.stencil import kinetic_matrix_1d

        n = 4
        t1 = kinetic_matrix_1d(n, 0.7)
        eye = np.eye(n)
        t3 = (
            np.kron(np.kron(t1, eye), eye)
            + np.kron(np.kron(eye, t1), eye)
            + np.kron(np.kron(eye, eye), t1)
        )
        u = sla.expm(-1j * dt * t3)
        for s in range(2):
            exact = (u @ ref.orbital(s).ravel()).reshape(g.shape)
            assert np.abs(exact - wf.orbital(s)).max() < 5e-5

    def test_free_wave_packet_moves(self):
        """A momentum-boosted Gaussian packet translates along +x."""
        g = Grid3D.cubic(16, 0.5)
        xs, ys, zs = g.meshgrid()
        x0 = 3.0
        packet = np.exp(-((xs - x0) ** 2 + (ys - 4) ** 2 + (zs - 4) ** 2) / 1.0)
        k = 1.2
        psi = packet * np.exp(1j * k * xs)
        wf = WaveFunctionSet(g, 1, data=psi[..., None])
        wf.normalize()

        def com_x(w):
            rho = np.abs(w.orbital(0)) ** 2
            return float((rho * xs).sum() / rho.sum())

        start = com_x(wf)
        nsteps, dt = 30, 0.05
        for _ in range(nsteps):
            kinetic_step(wf, dt, variant="collapsed")
        moved = com_x(wf) - start
        # Lattice group velocity sin(k h)/h, not k (FD dispersion).
        v_group = np.sin(k * 0.5) / 0.5
        assert moved == pytest.approx(v_group * nsteps * dt, rel=0.2)

    def test_constant_peierls_phase_conserves_current(self, grid8, rng):
        """With uniform static A, kinetic propagation commutes with p:
        the paramagnetic current is a constant of motion -- but the
        evolution must still differ from the zero-field one."""
        from repro.lfd.observables import current_expectation
        from repro.lfd.vector_gauge import peierls_phases

        wf = WaveFunctionSet.random(grid8, 2, rng)
        twin = wf.copy()
        theta = peierls_phases(grid8, (8.0, 0.0, 0.0))
        j0 = current_expectation(wf, np.ones(2))[0]
        for _ in range(15):
            kinetic_step(wf, 0.05, theta=theta, variant="collapsed")
            kinetic_step(twin, 0.05, variant="collapsed")
        j1 = current_expectation(wf, np.ones(2))[0]
        # Conserved up to the O(dt^2) splitting error (the pair splitting
        # commutes with p only approximately).
        assert j1 == pytest.approx(j0, abs=1e-3)
        assert wf.max_abs_diff(twin) > 1e-6


class TestKernelContracts:
    def test_baseline_needs_rank4(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 2, rng)
        coeff = pair_split_coefficients(8, 0.5, 0.02, 0)
        with pytest.raises(ValueError):
            kin_prop_baseline(wf.psi[..., 0], coeff, 0)  # 3-D array rejected

    def test_soa_kernels_reject_aos_rank(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 2, rng)
        coeff = pair_split_coefficients(8, 0.5, 0.02, 0)
        with pytest.raises(ValueError):
            kin_prop_collapsed(wf.psi[..., 0], coeff, 0)

    def test_coefficient_length_mismatch(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 2, rng)
        coeff = pair_split_coefficients(10, 0.5, 0.02, 0)
        with pytest.raises(ValueError):
            kin_prop_collapsed(wf.psi, coeff, 0)

    def test_unknown_variant(self, wf_small):
        with pytest.raises(ValueError):
            kinetic_step(wf_small, 0.02, variant="cuda")

    def test_registry_contents(self):
        assert set(KIN_PROP_VARIANTS) == {
            "baseline", "interchange", "blocked", "collapsed",
        }

    def test_blocked_bad_block_size(self, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 2, rng)
        coeff = pair_split_coefficients(8, 0.5, 0.02, 0)
        with pytest.raises(ValueError):
            kin_prop_blocked(wf.psi, coeff, 0, block_size=0)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_single_pass_each_axis(self, aniso_grid, rng, axis):
        """One pass along each axis agrees between interchange/collapsed."""
        wf_a = WaveFunctionSet.random(aniso_grid, 3, rng)
        wf_b = wf_a.copy()
        n = aniso_grid.shape[axis]
        h = aniso_grid.spacing[axis]
        coeff = pair_split_coefficients(n, h, 0.04, parity=1, theta=0.2)
        kin_prop_interchange(wf_a.psi, coeff, axis)
        kin_prop_collapsed(wf_b.psi, coeff, axis)
        assert wf_a.max_abs_diff(wf_b) < 1e-14
