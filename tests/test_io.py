"""Trajectory/field I/O tests."""

import numpy as np
import pytest

from repro.constants import BOHR_ANGSTROM
from repro.io import XYZTrajectoryWriter, read_xyz_trajectory, write_field_profile


class TestXYZRoundtrip:
    def test_write_read_roundtrip(self, tmp_path, rng):
        path = tmp_path / "traj.xyz"
        symbols = ["Pb", "Ti", "O"]
        frames_in = [rng.uniform(0, 10, size=(3, 3)) for _ in range(4)]
        with XYZTrajectoryWriter(path, symbols, box_bohr=(10, 10, 10)) as w:
            for i, pos in enumerate(frames_in):
                w.write_frame(pos, comment=f"step={i}")
            assert w.frames_written == 4
        frames_out = read_xyz_trajectory(path)
        assert len(frames_out) == 4
        for (syms, pos, comment), ref in zip(frames_out, frames_in):
            assert syms == symbols
            assert np.allclose(pos, ref, atol=1e-7)
        assert "step=2" in frames_out[2][2]
        assert "Lattice=" in frames_out[0][2]

    def test_units_are_angstrom_on_disk(self, tmp_path):
        path = tmp_path / "t.xyz"
        with XYZTrajectoryWriter(path, ["H"]) as w:
            w.write_frame(np.array([[1.0, 0.0, 0.0]]))
        line = path.read_text().splitlines()[2]
        assert float(line.split()[1]) == pytest.approx(BOHR_ANGSTROM)

    def test_shape_validation(self, tmp_path):
        with XYZTrajectoryWriter(tmp_path / "t.xyz", ["H", "H"]) as w:
            with pytest.raises(ValueError):
                w.write_frame(np.zeros((3, 3)))

    def test_write_without_open(self, tmp_path):
        w = XYZTrajectoryWriter(tmp_path / "t.xyz", ["H"])
        with pytest.raises(RuntimeError):
            w.write_frame(np.zeros((1, 3)))

    def test_empty_symbols(self, tmp_path):
        with pytest.raises(ValueError):
            XYZTrajectoryWriter(tmp_path / "t.xyz", [])

    def test_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.xyz"
        bad.write_text("notanumber\ncomment\n")
        with pytest.raises(ValueError):
            read_xyz_trajectory(bad)


class TestFieldProfile:
    def test_write_and_parse(self, tmp_path):
        z = np.linspace(0, 10, 11)
        a = np.sin(z)
        path = write_field_profile(tmp_path / "a.dat", z, a, header="A(z)")
        lines = path.read_text().splitlines()
        assert lines[0] == "# A(z)"
        parsed = np.loadtxt(path)
        assert np.allclose(parsed[:, 0], z)
        assert np.allclose(parsed[:, 1], a)

    def test_shape_check(self, tmp_path):
        with pytest.raises(ValueError):
            write_field_profile(tmp_path / "x.dat", np.zeros(3), np.zeros(4))


class TestSimulationIntegration:
    def test_md_trajectory_export(self, tmp_path):
        """A DC-MESH run streams frames that read back consistently."""
        from tests.core.test_mesh import make_sim

        sim = make_sim(seed=1)
        symbols = [sp.symbol for sp in sim.species]
        path = tmp_path / "run.xyz"
        with XYZTrajectoryWriter(path, symbols,
                                 box_bohr=sim.grid.lengths) as w:
            w.write_frame(sim.md_state.positions, comment="t=0")
            for rec in sim.run(2):
                w.write_frame(sim.md_state.positions,
                              comment=f"t={rec.time:.3f}")
        frames = read_xyz_trajectory(path)
        assert len(frames) == 3
        assert np.allclose(frames[-1][1], sim.md_state.positions, atol=1e-7)
