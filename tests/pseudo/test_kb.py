"""Kleinman-Bylander projector tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet
from repro.pseudo import KBProjectorSet, get_species


@pytest.fixture
def kb_o2(o2_system):
    grid, pos, species = o2_system
    return grid, KBProjectorSet(grid, pos, species)


class TestConstruction:
    def test_projector_count(self, kb_o2):
        _, kb = kb_o2
        # Each O carries one s projector only.
        assert kb.nproj == 2

    def test_ti_has_s_and_p(self, grid16):
        kb = KBProjectorSet(
            grid16, np.array([[4.8, 4.8, 4.8]]), [get_species("Ti")]
        )
        assert kb.nproj == 4  # s + 3 p components
        assert list(kb.owners) == [0, 0, 0, 0]

    def test_projectors_normalized(self, kb_o2):
        grid, kb = kb_o2
        norms = np.einsum("gp,gp->p", kb.projectors, kb.projectors) * grid.dvol
        assert np.allclose(norms, 1.0)

    def test_hydrogen_empty(self, h2_system):
        grid, pos, species = h2_system
        kb = KBProjectorSet(grid, pos, species)
        assert kb.nproj == 0
        psi = np.zeros(grid.shape + (2,), dtype=complex)
        assert np.all(kb.apply(psi) == 0)

    def test_bad_positions(self, grid16):
        with pytest.raises(ValueError):
            KBProjectorSet(grid16, np.zeros((2, 2)), [get_species("O")] * 2)


class TestApplication:
    def test_hermitian(self, kb_o2, rng):
        """<f| v_nl g> = <v_nl f| g>."""
        grid, kb = kb_o2
        f = rng.standard_normal(grid.shape + (1,)) + 1j * rng.standard_normal(
            grid.shape + (1,)
        )
        g = rng.standard_normal(grid.shape + (1,)) + 1j * rng.standard_normal(
            grid.shape + (1,)
        )
        lhs = np.vdot(f, kb.apply(g)) * grid.dvol
        rhs = np.vdot(kb.apply(f), g) * grid.dvol
        assert lhs == pytest.approx(rhs)

    def test_separable_rank(self, kb_o2, rng):
        """v_nl has rank <= nproj: applying to a projector-orthogonal
        function gives zero."""
        grid, kb = kb_o2
        f = rng.standard_normal(grid.shape).astype(complex)
        # Project out the full (non-orthogonal) projector span at once.
        flat = f.ravel()
        p_mat = kb.projectors
        gram = (p_mat.T @ p_mat) * grid.dvol
        coeff = np.linalg.solve(gram, (p_mat.T @ flat) * grid.dvol)
        flat = flat - p_mat @ coeff
        out = kb.apply(flat.reshape(grid.shape + ())[..., None])
        assert np.abs(out).max() < 1e-10 * np.abs(f).max()

    def test_expectation_nonnegative_for_positive_channels(self, kb_o2, rng):
        grid, kb = kb_o2
        wf = WaveFunctionSet.random(grid, 3, rng)
        exp = kb.expectation(wf)
        assert np.all(exp >= -1e-14)  # O channel strengths are positive

    def test_energy_weighted_sum(self, kb_o2, rng):
        grid, kb = kb_o2
        wf = WaveFunctionSet.random(grid, 3, rng)
        f = np.array([2.0, 1.0, 0.0])
        assert kb.energy(wf, f) == pytest.approx(
            float(f @ kb.expectation(wf))
        )

    def test_apply_wf_matches_apply(self, kb_o2, rng):
        grid, kb = kb_o2
        wf = WaveFunctionSet.random(grid, 2, rng)
        a = kb.apply_wf(wf)
        b = kb.apply(wf.psi.astype(np.complex128))
        assert np.abs(a - b).max() == 0.0
