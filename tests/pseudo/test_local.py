"""Local pseudopotential pieces: ionic densities and core repulsion."""

import numpy as np
import pytest

from repro.pseudo import (
    core_repulsion_pair_energy,
    core_repulsion_potential,
    gaussian_ion_density,
    get_species,
    ionic_density,
)
from repro.pseudo.local import core_repulsion_pair_forces


class TestIonDensity:
    def test_integrates_to_valence(self, grid16):
        rho = gaussian_ion_density(grid16, [4.8, 4.8, 4.8], 6.0, 0.6)
        assert rho.sum() * grid16.dvol == pytest.approx(6.0, rel=1e-12)

    def test_peak_at_center(self, grid16):
        rho = gaussian_ion_density(grid16, [4.8, 4.8, 4.8], 4.0, 0.6)
        assert np.unravel_index(rho.argmax(), rho.shape) == (8, 8, 8)

    def test_periodic_wrap(self, grid16):
        """An ion at the cell corner must be spread across all 8 corners."""
        rho = gaussian_ion_density(grid16, [0.0, 0.0, 0.0], 4.0, 0.6)
        assert rho[0, 0, 0] == pytest.approx(rho.max())
        assert rho[-1, -1, -1] == pytest.approx(
            rho[1, 1, 1], rel=1e-10
        )

    def test_bad_width(self, grid16):
        with pytest.raises(ValueError):
            gaussian_ion_density(grid16, [0, 0, 0], 1.0, -0.5)

    def test_total_ionic_charge(self, o2_system):
        grid, pos, species = o2_system
        rho = ionic_density(grid, pos, species)
        assert rho.sum() * grid.dvol == pytest.approx(12.0, rel=1e-12)

    def test_species_count_mismatch(self, o2_system):
        grid, pos, species = o2_system
        with pytest.raises(ValueError):
            ionic_density(grid, pos, species[:1])


class TestCorePotential:
    def test_positive_repulsive(self, o2_system):
        grid, pos, species = o2_system
        v = core_repulsion_potential(grid, pos, species)
        assert v.min() >= 0.0
        assert v.max() > 1.0

    def test_hydrogen_has_no_core(self, h2_system):
        grid, pos, species = h2_system
        v = core_repulsion_potential(grid, pos, species)
        assert np.all(v == 0.0)


class TestPairRepulsion:
    def test_energy_decreases_with_distance(self, grid16):
        sp = [get_species("O"), get_species("O")]
        e_close = core_repulsion_pair_energy(
            grid16, np.array([[4.0, 4.8, 4.8], [5.0, 4.8, 4.8]]), sp
        )
        e_far = core_repulsion_pair_energy(
            grid16, np.array([[3.0, 4.8, 4.8], [6.6, 4.8, 4.8]]), sp
        )
        assert e_close > e_far > 0.0

    def test_forces_match_energy_gradient(self, grid16):
        sp = [get_species("O"), get_species("Ti")]
        pos = np.array([[4.0, 4.8, 4.8], [5.4, 5.0, 4.6]])
        f = core_repulsion_pair_forces(grid16, pos, sp)
        eps = 1e-6
        for axis in range(3):
            p_plus = pos.copy()
            p_plus[0, axis] += eps
            p_minus = pos.copy()
            p_minus[0, axis] -= eps
            num = -(
                core_repulsion_pair_energy(grid16, p_plus, sp)
                - core_repulsion_pair_energy(grid16, p_minus, sp)
            ) / (2 * eps)
            assert f[0, axis] == pytest.approx(num, abs=1e-8)

    def test_newton_third_law(self, grid16):
        sp = [get_species("O"), get_species("O"), get_species("Ti")]
        pos = np.array([[4.0, 4.8, 4.8], [5.0, 4.8, 4.8], [4.5, 5.5, 4.8]])
        f = core_repulsion_pair_forces(grid16, pos, sp)
        assert np.abs(f.sum(axis=0)).max() < 1e-12

    def test_minimum_image_used(self, grid16):
        """Atoms near opposite faces interact through the boundary."""
        sp = [get_species("O"), get_species("O")]
        pos = np.array([[0.2, 4.8, 4.8], [9.4, 4.8, 4.8]])  # 0.4 apart wrapped
        e_wrapped = core_repulsion_pair_energy(grid16, pos, sp)
        pos_direct = np.array([[4.6, 4.8, 4.8], [5.0, 4.8, 4.8]])
        e_direct = core_repulsion_pair_energy(grid16, pos_direct, sp)
        assert e_wrapped == pytest.approx(e_direct, rel=1e-10)


class TestFourierIonDensity:
    def test_charge_exact(self, grid16):
        from repro.pseudo.local import gaussian_ion_density_fourier

        rho = gaussian_ion_density_fourier(grid16, [3.3, 4.8, 5.1], 6.0, 0.8)
        assert rho.sum() * grid16.dvol == pytest.approx(6.0, abs=1e-10)

    def test_matches_realspace_when_resolved(self, grid16):
        """For a wide, well-resolved Gaussian the two builds agree."""
        from repro.pseudo.local import (
            gaussian_ion_density,
            gaussian_ion_density_fourier,
        )

        center = [4.8, 4.8, 4.8]
        a = gaussian_ion_density(grid16, center, 4.0, 1.2)
        b = gaussian_ion_density_fourier(grid16, center, 4.0, 1.2)
        assert np.abs(a - b).max() < 1e-3 * a.max()

    def test_translation_exactness(self, grid16):
        """Shifting by a non-grid displacement shifts the density field
        exactly in the band-limited sense (peak value invariant)."""
        from repro.pseudo.local import gaussian_ion_density_fourier

        a = gaussian_ion_density_fourier(grid16, [4.8, 4.8, 4.8], 4.0, 0.9)
        b = gaussian_ion_density_fourier(grid16, [5.05, 4.8, 4.8], 4.0, 0.9)
        # Same total charge (no normalization wobble)...
        assert a.sum() == pytest.approx(b.sum(), rel=1e-12)
        # ...and b equals a spectrally shifted by exactly 0.25 bohr.
        dx = 0.25
        k = 2 * np.pi * np.fft.fftfreq(16, d=0.6)
        shift = np.exp(-1j * k * dx)[:, None, None]
        a_shifted = np.real(np.fft.ifftn(np.fft.fftn(a) * shift))
        assert np.abs(a_shifted - b).max() < 1e-10

    def test_grid_shift_is_roll(self, grid16):
        """Displacing by exactly one grid spacing rolls the array."""
        from repro.pseudo.local import gaussian_ion_density_fourier

        h = grid16.spacing[0]
        a = gaussian_ion_density_fourier(grid16, [4.8, 4.8, 4.8], 4.0, 0.9)
        b = gaussian_ion_density_fourier(grid16, [4.8 + h, 4.8, 4.8], 4.0, 0.9)
        assert np.abs(np.roll(a, 1, axis=0) - b).max() < 1e-10

    def test_total_ionic_density_fourier(self, o2_system):
        from repro.pseudo.local import ionic_density_fourier

        grid, pos, species = o2_system
        rho = ionic_density_fourier(grid, pos, species)
        assert rho.sum() * grid.dvol == pytest.approx(12.0, abs=1e-9)

    def test_validation(self, grid16):
        from repro.pseudo.local import ion_structure_fourier

        with pytest.raises(ValueError):
            ion_structure_fourier(grid16, np.zeros((2, 2)), [1.0], [1.0])
        with pytest.raises(ValueError):
            ion_structure_fourier(grid16, np.zeros((2, 3)), [1.0], [1.0, 1.0])
