"""Pseudo-species parameter tests."""

import pytest

from repro.pseudo import SPECIES, PseudoSpecies, get_species


def test_all_pbtio3_species_present():
    for sym in ("Pb", "Ti", "O"):
        sp = get_species(sym)
        assert sp.symbol == sym


def test_unknown_species_raises_with_catalog():
    with pytest.raises(KeyError, match="Pb"):
        get_species("Xx")


def test_valences():
    assert get_species("Pb").zval == 4.0
    assert get_species("Ti").zval == 4.0
    assert get_species("O").zval == 6.0


def test_masses_ordered():
    assert get_species("O").mass < get_species("Ti").mass < get_species("Pb").mass


def test_kb_channels():
    # Pb and Ti carry s+p projectors, O only s, H none.
    assert len(get_species("Pb").kb_energies) == 2
    assert len(get_species("O").kb_energies) == 1
    assert len(get_species("H").kb_energies) == 0


def test_validation():
    with pytest.raises(ValueError):
        PseudoSpecies("X", zval=-1.0, mass=1.0, gauss_width=1.0,
                      core_strength=0.0, core_width=1.0)
    with pytest.raises(ValueError):
        PseudoSpecies("X", zval=1.0, mass=1.0, gauss_width=0.0,
                      core_strength=0.0, core_width=1.0)


def test_registry_is_complete():
    assert set(SPECIES) >= {"Pb", "Ti", "O", "H"}
