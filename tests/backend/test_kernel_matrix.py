"""Kernel-by-kernel backend-differential matrix.

Two gates, one per axis of the array-API refactor:

1. **NumPy-path regression**: every hot kernel (kin/pot/nonlocal/CAP/
   multigrid/Hartree), run on the default NumPy backend, must reproduce
   the *pre-refactor* outputs committed in ``tests/data/golden_kernels.npz``
   -- bit-for-bit on the platform that generated the file
   (``REPRO_GOLDEN_EXACT=1``), and to 1e-12 across BLAS builds.  The
   namespace refactor is required to be a pure re-spelling of the same
   floating-point program.

2. **Cross-namespace agreement**: the same kernel run under the
   ``array_api_strict`` namespace (the real package when installed, the
   :mod:`repro.backend` strict shim otherwise) must agree with the NumPy
   path to <= 1e-12 on every converted kernel.

Regenerate the golden file (after a *deliberate* numerics change) with::

    PYTHONPATH=src:. python -m tests.backend.test_kernel_matrix
"""

import os
import pathlib

import numpy as np
import pytest

from repro.grids.grid import Grid3D
from repro.lfd.wavefunction import WaveFunctionSet

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "data" / "golden_kernels.npz"
)

#: Cross-platform gate; REPRO_GOLDEN_EXACT=1 demands bit-identity.
GOLDEN_ATOL = 1e-12

#: Cross-namespace gate of the acceptance criteria.
XNS_ATOL = 1e-12

SEED = 777
THETA = (0.1, 0.0, -0.05)
DT = 0.05


def _inputs():
    """Deterministic shared inputs of every kernel in the matrix."""
    grid = Grid3D.cubic(8, 0.5)
    rng = np.random.default_rng(SEED)
    wf = WaveFunctionSet.random(grid, 5, rng)
    ref = WaveFunctionSet.random(grid, 7, rng)
    vloc = 0.4 * rng.standard_normal(grid.shape)
    u = rng.standard_normal(grid.shape)
    f = rng.standard_normal(grid.shape)
    f -= f.mean()
    rho = rng.standard_normal(grid.shape)
    rho -= rho.mean()
    coarse = rng.standard_normal(tuple(n // 2 for n in grid.shape))
    return {
        "grid": grid, "wf": wf, "ref": ref, "vloc": vloc,
        "u": u, "f": f, "rho": rho, "coarse": coarse,
    }


def _kin(inp, variant, block_size=None, **kw):
    from repro.lfd.kin_prop import kinetic_step

    wf = inp["wf"].copy()
    for _ in range(2):
        kinetic_step(wf, DT, theta=THETA, variant=variant,
                     block_size=block_size, **kw)
    return wf.psi.copy()


def _pot(inp, **kw):
    from repro.lfd.pot_prop import potential_phase, potential_phase_step

    wf = inp["wf"].copy()
    phase = potential_phase(inp["vloc"], DT, **kw)
    potential_phase_step(wf, inp["vloc"], DT, **kw)
    return np.asarray(phase), wf.psi.copy()


def _cap(inp, **kw):
    from repro.lfd.cap import cos2_absorber

    w = cos2_absorber(inp["grid"], width_points=2, strength=1.5, **kw)
    wf = inp["wf"].copy()
    wf.psi *= np.exp(-DT * np.asarray(w))[..., None]
    return np.asarray(w), wf.psi.copy()


def _nonlocal(inp, variant, **kw):
    from repro.lfd.nonlocal_corr import NonlocalCorrector

    wf = inp["wf"].copy()
    corr = NonlocalCorrector(
        ref_unocc=inp["ref"], scissor_shift=0.037, variant=variant,
        orb_block=3 if variant == "blas_blocked" else 16, **kw,
    )
    corr.apply(wf, DT)
    return wf.psi.copy()


def _multigrid(inp, **kw):
    from repro.multigrid.poisson import PoissonMultigrid, solve_poisson_fft
    from repro.multigrid.smoothers import (red_black_gauss_seidel,
                                           weighted_jacobi)
    from repro.multigrid.transfer import (prolong_trilinear,
                                          restrict_full_weighting)

    grid = inp["grid"]
    spacing = grid.spacing
    out = {
        "mg_jacobi": weighted_jacobi(inp["u"], inp["f"], spacing, sweeps=3,
                                     **kw),
        "mg_rbgs": red_black_gauss_seidel(inp["u"], inp["f"], spacing,
                                          sweeps=2, **kw),
        "mg_restrict": restrict_full_weighting(inp["f"], **kw),
        "mg_prolong": prolong_trilinear(inp["coarse"], grid.shape, **kw),
        "mg_fft": solve_poisson_fft(inp["rho"], grid, **kw),
    }
    solver = PoissonMultigrid(grid, pre_sweeps=2, post_sweeps=2,
                              smoother="rbgs", **kw)
    v, stats = solver.solve(inp["rho"], tol=1e-10)
    out["mg_solve"] = v
    out["mg_residuals"] = np.asarray(stats.residual_norms)
    return {k: np.asarray(v) for k, v in out.items()}


def _hartree(inp, **kw):
    from repro.qxmd.hartree import hartree_potential

    return (
        np.asarray(hartree_potential(inp["rho"], inp["grid"],
                                     method="multigrid", **kw)),
        np.asarray(hartree_potential(inp["rho"], inp["grid"], method="fft",
                                     **kw)),
    )


def golden_kernel_outputs():
    """Every kernel of the matrix on the default (NumPy) backend."""
    inp = _inputs()
    out = {}
    for variant in ("baseline", "interchange", "collapsed"):
        out[f"kin_{variant}"] = _kin(inp, variant)
    out["kin_blocked_b3"] = _kin(inp, "blocked", block_size=3)
    out["kin_blocked_default"] = _kin(inp, "blocked")
    out["pot_phase"], out["pot_applied"] = _pot(inp)
    out["cap_w"], out["cap_applied"] = _cap(inp)
    for variant in ("naive", "blas", "blas_blocked"):
        out[f"nl_{variant}"] = _nonlocal(inp, variant)
    out.update(_multigrid(inp))
    out["hartree_mg"], out["hartree_fft"] = _hartree(inp)
    return out


def regenerate(path=GOLDEN_PATH):
    """Write a fresh golden file (deliberate-change workflow)."""
    data = golden_kernel_outputs()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **data)
    return path, data


# --------------------------------------------------------------------- #
# gate 1: NumPy path == pre-refactor kernels
# --------------------------------------------------------------------- #
class TestNumpyPathMatchesPreRefactorGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_PATH.exists(), (
            f"golden file missing: {GOLDEN_PATH}; regenerate with "
            f"python -m tests.backend.test_kernel_matrix"
        )
        return np.load(GOLDEN_PATH)

    @pytest.fixture(scope="class")
    def current(self):
        return golden_kernel_outputs()

    def test_same_kernel_set(self, golden, current):
        assert set(golden.files) == set(current)

    @pytest.mark.parametrize("key", sorted(np.load(GOLDEN_PATH).files)
                             if GOLDEN_PATH.exists() else [])
    def test_kernel_matches(self, golden, current, key):
        want, got = golden[key], current[key]
        assert want.shape == got.shape
        if os.environ.get("REPRO_GOLDEN_EXACT") == "1":
            assert np.array_equal(want, got), f"{key} not bit-exact"
        else:
            diff = float(np.max(np.abs(want - got))) if want.size else 0.0
            assert diff <= GOLDEN_ATOL, (
                f"{key}: max|diff| = {diff:.3e} > {GOLDEN_ATOL}"
            )


# --------------------------------------------------------------------- #
# gate 2: strict namespace agrees with the NumPy path on every kernel
# --------------------------------------------------------------------- #
class TestCrossNamespaceAgreement:
    """Same kernel, numpy vs array_api_strict namespace, <= 1e-12."""

    @pytest.fixture(scope="class")
    def inp(self):
        return _inputs()

    @pytest.fixture(scope="class")
    def strict(self):
        from repro.backend import get_backend

        return get_backend("array_api_strict")

    def _check(self, a, b, key):
        a, b = np.asarray(a), np.asarray(b)
        assert a.shape == b.shape, key
        diff = float(np.max(np.abs(a - b))) if a.size else 0.0
        assert diff <= XNS_ATOL, f"{key}: max|diff| = {diff:.3e} > {XNS_ATOL}"

    @pytest.mark.parametrize("variant", ["baseline", "interchange",
                                         "blocked", "collapsed"])
    def test_kin(self, inp, strict, variant):
        self._check(_kin(inp, variant),
                    _kin(inp, variant, backend=strict), f"kin_{variant}")

    def test_pot(self, inp, strict):
        phase_np, psi_np = _pot(inp)
        phase_xp, psi_xp = _pot(inp, backend=strict)
        self._check(phase_np, phase_xp, "pot_phase")
        self._check(psi_np, psi_xp, "pot_applied")

    def test_cap(self, inp, strict):
        w_np, psi_np = _cap(inp)
        w_xp, psi_xp = _cap(inp, backend=strict)
        self._check(w_np, w_xp, "cap_w")
        self._check(psi_np, psi_xp, "cap_applied")

    @pytest.mark.parametrize("variant", ["naive", "blas", "blas_blocked"])
    def test_nonlocal(self, inp, strict, variant):
        self._check(_nonlocal(inp, variant),
                    _nonlocal(inp, variant, backend=strict), f"nl_{variant}")

    def test_multigrid(self, inp, strict):
        a = _multigrid(inp)
        b = _multigrid(inp, backend=strict)
        for key in a:
            self._check(a[key], b[key], key)

    def test_hartree(self, inp, strict):
        mg_np, fft_np = _hartree(inp)
        mg_xp, fft_xp = _hartree(inp, backend=strict)
        self._check(mg_np, mg_xp, "hartree_mg")
        self._check(fft_np, fft_xp, "hartree_fft")


if __name__ == "__main__":
    p, data = regenerate()
    print(f"golden kernel outputs written to {p}")
    for key, val in sorted(data.items()):
        print(f"  {key}: shape {val.shape}")
