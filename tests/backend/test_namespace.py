"""The backend registry, handle pickling, and shim strictness teeth.

Three contracts of :mod:`repro.backend`:

* the registry resolves names to cached, picklable :class:`ArrayBackend`
  handles with the documented precedence (explicit > profile > default);
* handles survive the process-spawn executor boundary (they reduce to
  their name and re-resolve on the far side);
* the strict namespace actually *is* strict -- any silent NumPy
  round-trip of one of its arrays raises, which is what gives the
  cross-namespace differential tests their power.
"""

import pickle

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ArrayBackend,
    available_backends,
    get_backend,
    get_namespace,
    resolve_backend,
    to_numpy,
)


class TestRegistry:
    def test_numpy_backend_is_numpy_itself(self):
        """The native handle's namespace IS the numpy module: kernels
        routed through it run the exact same ufuncs as before."""
        b = get_backend("numpy")
        assert b.native
        assert b.xp is np

    def test_strict_backend_is_not_native(self):
        b = get_backend("array_api_strict")
        assert not b.native
        assert b.xp is not np

    def test_auto_resolves_to_numpy(self):
        assert get_backend("auto").name == "numpy"

    def test_none_resolves_to_default(self):
        assert get_backend(None).name == DEFAULT_BACKEND

    def test_handles_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("array_api_strict") is get_backend(
            "array_api_strict"
        )

    def test_handle_passthrough(self):
        b = get_backend("numpy")
        assert get_backend(b) is b

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("cupy")

    def test_available_backends_subset_of_names(self):
        avail = available_backends()
        assert set(avail) <= set(BACKEND_NAMES)
        assert "numpy" in avail and "array_api_strict" in avail

    def test_get_namespace(self, xp_backend):
        assert get_namespace(xp_backend.name) is xp_backend.xp

    def test_resolve_backend_precedence(self):
        # Explicit beats everything.
        assert resolve_backend("array_api_strict", "lfd.kin_prop").name \
            == "array_api_strict"
        # No explicit choice: the tunable's profile parameter (default
        # profile carries "numpy").
        assert resolve_backend(None, "lfd.kin_prop").name == "numpy"


class TestPickling:
    def test_handle_pickles_by_name(self, xp_backend):
        clone = pickle.loads(pickle.dumps(xp_backend))
        # __reduce__ routes through get_backend, so the cached handle
        # comes back -- identity, not just equality.
        assert clone is xp_backend

    def test_handle_pickles_inside_task_tuples(self):
        """The mesh/ensemble executor items embed handles or names."""
        item = ("task", 3, get_backend("array_api_strict"))
        name_item = ("task", 3, "array_api_strict")
        assert pickle.loads(pickle.dumps(item))[2].name == "array_api_strict"
        assert pickle.loads(pickle.dumps(name_item))[2] == "array_api_strict"


class TestBoundary:
    def test_asarray_to_numpy_round_trip(self, xp_backend):
        host = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        arr = xp_backend.asarray(host)
        back = to_numpy(arr)
        assert isinstance(back, np.ndarray)
        np.testing.assert_array_equal(back, host)

    def test_to_numpy_passes_ndarray_through(self):
        host = np.arange(5.0)
        assert to_numpy(host) is host


class TestStrictness:
    """The teeth that make the strict namespace a real second backend."""

    @pytest.fixture()
    def strict(self):
        return get_backend("array_api_strict")

    def test_no_silent_numpy_conversion(self, strict):
        arr = strict.asarray(np.arange(4.0))
        with pytest.raises(TypeError):
            np.asarray(arr)

    def test_numpy_ufuncs_rejected(self, strict):
        arr = strict.asarray(np.arange(4.0))
        with pytest.raises(TypeError):
            np.exp(arr)

    def test_raw_ndarray_operands_rejected(self, strict):
        arr = strict.asarray(np.arange(4.0))
        with pytest.raises(TypeError):
            arr + np.arange(4.0)

    def test_integer_array_indexing_rejected(self, strict):
        xp = strict.xp
        arr = strict.asarray(np.arange(12.0).reshape(3, 4))
        rows = xp.asarray(np.array([0, 2]))
        cols = xp.asarray(np.array([1, 3]))
        with pytest.raises((TypeError, IndexError)):
            arr[rows, cols]

    def test_sanctioned_boundary_still_works(self, strict):
        """asarray in, to_numpy out -- the only two legal crossings."""
        xp = strict.xp
        host = np.random.default_rng(0).standard_normal((4, 4))
        out = to_numpy(xp.exp(strict.asarray(host)))
        np.testing.assert_allclose(out, np.exp(host), atol=1e-15)


class TestConfigThreading:
    """Constructors accept names and handles and normalize to handles."""

    def test_propagator_config_resolves_backend(self, xp_backend):
        from repro.lfd import PropagatorConfig

        cfg = PropagatorConfig(dt=0.05, backend=xp_backend.name)
        assert isinstance(cfg.backend, ArrayBackend)
        assert cfg.backend is xp_backend

    def test_propagator_config_profile_fallback(self):
        from repro.lfd import PropagatorConfig
        from repro.tuning import TuningProfile
        from repro.tuning.profile import active_profile

        override = {"lfd.kin_prop": {"backend": "array_api_strict"}}
        with active_profile(TuningProfile(override, source="test")):
            cfg = PropagatorConfig(dt=0.05)
        assert cfg.backend.name == "array_api_strict"

    def test_multigrid_accepts_handle(self, xp_backend):
        from repro.grids import Grid3D
        from repro.multigrid import PoissonMultigrid

        solver = PoissonMultigrid(Grid3D.cubic(8, 0.5), backend=xp_backend)
        assert solver.backend is xp_backend

    def test_mesh_config_normalizes_name(self):
        from repro.core import DCMESHConfig

        assert DCMESHConfig(array_backend="auto").array_backend == "numpy"
        assert DCMESHConfig().array_backend is None
        with pytest.raises(ValueError):
            DCMESHConfig(array_backend="torch")
