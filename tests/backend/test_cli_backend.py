"""``--array-backend`` CLI flag tests (invoked in-process).

The flag must (a) parse on every dynamics subcommand, (b) install the
substrate as a tuning-profile layer *over* ``--tuning-profile`` so the
explicit CLI choice wins, and (c) actually route the run through the
strict kernels -- a strict `run` and a numpy `run` print the same
physics table (cross-substrate agreement at print precision), while the
active-profile override is visible in the banner.
"""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _restore_profile():
    """CLI commands install process-global profiles; undo after each test."""
    from repro.tuning import TuningProfile, set_active_profile
    from repro.tuning.profile import get_active_profile

    before = get_active_profile()
    try:
        yield
    finally:
        set_active_profile(before if before is not None
                           else TuningProfile.default())

RUN = ["run", "--grid", "8", "--steps", "1", "--n-qd", "2",
       "--nscf", "1", "--ncg", "2"]
ENS = ["ensemble", "--ntraj", "8", "--nsteps", "10", "--batch-size", "4"]


class TestParser:
    @pytest.mark.parametrize("cmd", ["run", "spectrum", "ensemble"])
    def test_flag_parses_everywhere(self, cmd):
        args = build_parser().parse_args(
            [cmd, "--array-backend", "array_api_strict"]
        )
        assert args.array_backend == "array_api_strict"

    @pytest.mark.parametrize("cmd", ["run", "spectrum", "ensemble"])
    def test_flag_defaults_to_none(self, cmd):
        assert build_parser().parse_args([cmd]).array_backend is None

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--array-backend", "cupy"])


class TestRunSmoke:
    def _table(self, out: str) -> str:
        """The physics table below the banner lines."""
        return out.split("hops")[-1]

    def test_strict_run_completes(self, capsys):
        """A strict `run` finishes and prints its physics table.

        No numpy-vs-strict table comparison here: this deliberately tiny
        scenario amplifies round-off into discrete occupation-remap
        flips (even the native ``naive`` vs ``blas`` nonlocal variants
        diverge on it), so cross-substrate agreement is pinned by the
        golden-trajectory gate in ``test_golden_strict`` instead.
        """
        assert main(RUN + ["--array-backend", "array_api_strict"]) == 0
        out = capsys.readouterr().out
        assert "array backend: array_api_strict" in out
        assert "E_band" in out

    def test_auto_resolves_to_numpy(self, capsys):
        assert main(RUN + ["--array-backend", "auto"]) == 0
        assert "array backend: numpy" in capsys.readouterr().out

    def test_strict_ensemble_matches_numpy(self, capsys):
        assert main(ENS) == 0
        numpy_out = capsys.readouterr().out
        assert main(ENS + ["--array-backend", "array_api_strict"]) == 0
        strict_out = capsys.readouterr().out
        assert "array backend: array_api_strict" in strict_out
        assert self._table(strict_out) == self._table(numpy_out)

    def test_overrides_tuning_profile(self, tmp_path, capsys):
        """Explicit CLI substrate beats the profile's backend parameter."""
        from repro.tuning import TuningProfile

        profile = TuningProfile(
            {"lfd.kin_prop": {"backend": "numpy", "variant": "baseline"}},
            source="test",
        )
        path = tmp_path / "profile.json"
        profile.save(path)
        assert main(RUN + ["--tuning-profile", str(path),
                           "--array-backend", "array_api_strict"]) == 0
        out = capsys.readouterr().out
        assert "array backend: array_api_strict" in out

        from repro.tuning.profile import get_active_profile

        params = get_active_profile().params_for("lfd.kin_prop")
        assert params["backend"] == "array_api_strict"
        # The profile's other choices survive the layering.
        assert params["variant"] == "baseline"
