"""Full-trajectory regressions under the strict array-API substrate.

The kernel-level differential matrix (``test_kernel_matrix``) pins each
hot kernel at 1e-12; these tests close the loop end to end: the *whole*
DC-MESH trajectory and the *whole* FSSH ensemble, run with every
dispatching kernel on the strict namespace, must land within ``1e-10``
of the committed NumPy-generated goldens.  That is the acceptance gate
for "the substrate changes the execution path, never the physics".

The strict substrate is selected the same way the CLI does it: the
``array_backend`` config field (which rides the executor task tuples)
plus a tuning-profile override for the profile-resolved consumers
(Poisson in SCF/forces).
"""

import numpy as np

from repro.core import DCMESHConfig, DCMESHSimulation, TimescaleSplit
from repro.ensemble import EnsembleConfig, model_path, run_ensemble
from repro.grids import Grid3D
from repro.maxwell import GaussianPulse
from repro.pseudo import get_species
from repro.qxmd import HopPolicy
from repro.tuning import TuningProfile
from repro.tuning.profile import active_profile

from tests.ensemble.test_golden_ensemble import (
    GOLDEN_PATH as ENSEMBLE_GOLDEN_PATH,
)
from tests.ensemble.test_golden_ensemble import NTRAJ
from tests.integration.test_golden_trajectory import (
    GOLDEN_ATOL,
    GOLDEN_PATH,
    NSTEPS,
)

STRICT = "array_api_strict"

#: Kernel tunables whose ``backend`` selects the array-API substrate.
_KERNEL_TUNABLES = ("lfd.kin_prop", "lfd.nonlocal", "multigrid.poisson")


def strict_profile() -> TuningProfile:
    """A profile routing every profile-resolved kernel through strict."""
    return TuningProfile(
        {tid: {"backend": STRICT} for tid in _KERNEL_TUNABLES},
        source="strict-golden-test",
    )


def golden_run_strict():
    """The pinned trajectory scenario, every kernel on the strict path."""
    with active_profile(strict_profile()):
        grid = Grid3D((12, 12, 12), (0.6, 0.6, 0.6))
        pos = np.array([[1.8, 3.6, 3.6], [5.4, 3.6, 3.6]])
        species = [get_species("O"), get_species("O")]
        laser = GaussianPulse(e0=0.02, omega=0.3, t0=10.0, sigma=6.0)
        config = DCMESHConfig(
            timescale=TimescaleSplit(dt_md=2.0, n_qd=5),
            nscf=2,
            ncg=2,
            norb_extra=2,
            seed=13,
            array_backend=STRICT,
        )
        sim = DCMESHSimulation(
            grid, (2, 1, 1), pos, species, laser=laser, config=config,
            buffer_width=3,
        )
        sim.excite_carrier(0)
        records = sim.run(NSTEPS)
    return {
        "time": np.array([r.time for r in records]),
        "temperature": np.array([r.temperature for r in records]),
        "band_energy": np.array([r.band_energy for r in records]),
        "excited_population": np.array(
            [r.excited_population for r in records]
        ),
        "hops": np.array([r.hops for r in records], dtype=float),
        "scissor_shifts": np.array([r.scissor_shifts for r in records]),
        "positions": sim.md_state.positions.copy(),
        "velocities": sim.md_state.velocities.copy(),
    }


def golden_ensemble_strict(backend="serial", workers=1):
    """The pinned ensemble scenario on the strict FSSH kernels."""
    path = model_path(nsteps=30, nstates=4, dt=1.0, seed=11, coupling=0.12)
    config = EnsembleConfig(
        ntraj=NTRAJ,
        seed=515,
        batch_size=8,
        policy=HopPolicy(dec_correction="edc", edc_parameter=0.3),
        array_backend=STRICT,
    )
    result = run_ensemble(path, config, backend=backend, workers=workers)
    stats = result.stats
    return {
        "pop_mean": stats.pop_mean,
        "pop_stderr": stats.pop_stderr,
        "active_counts": stats.active_counts.astype(float),
        "coherence_mean": stats.coherence_mean,
        "coherence_stderr": stats.coherence_stderr,
        "hops": result.hops.astype(float),
        "ke_factor": result.ke_factor,
        "final_active": result.final_active.astype(float),
    }


def _assert_matches(golden_path, current, atol):
    assert golden_path.exists(), f"golden file missing: {golden_path}"
    golden = np.load(golden_path)
    assert set(golden.files) == set(current)
    for key in golden.files:
        want, got = golden[key], current[key]
        assert want.shape == got.shape, key
        diff = np.max(np.abs(want - got)) if want.size else 0.0
        assert diff <= atol, f"{key}: max|diff| = {diff:.3e} > {atol}"


class TestGoldenStrictTrajectory:
    def test_strict_trajectory_matches_numpy_golden(self):
        """The full coupled loop on strict stays within the golden gate."""
        _assert_matches(GOLDEN_PATH, golden_run_strict(), GOLDEN_ATOL)

    def test_strict_run_is_deterministic(self):
        a, b = golden_run_strict(), golden_run_strict()
        for key in a:
            assert np.array_equal(a[key], b[key]), key


class TestGoldenStrictEnsemble:
    def test_strict_ensemble_matches_numpy_golden(self):
        _assert_matches(
            ENSEMBLE_GOLDEN_PATH, golden_ensemble_strict(), GOLDEN_ATOL
        )

    def test_strict_survives_process_spawn(self):
        """The substrate name rides the pickled batch items: a process-
        pool strict ensemble is bit-identical to the serial strict one."""
        serial = golden_ensemble_strict()
        spawned = golden_ensemble_strict(backend="process", workers=2)
        for key in serial:
            assert np.array_equal(serial[key], spawned[key]), key
