"""Property-based tests of the stencil/pair-splitting machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.stencil import (
    pair_split_coefficients,
    pair_split_matrix,
    strang_passes,
)

even_sizes = st.integers(min_value=2, max_value=12).map(lambda k: 2 * k)
spacings = st.floats(min_value=0.2, max_value=2.0)
timesteps = st.floats(min_value=1e-4, max_value=0.5)
phases = st.floats(min_value=-np.pi, max_value=np.pi)
parities = st.sampled_from([0, 1])


@settings(max_examples=60, deadline=None)
@given(n=even_sizes, h=spacings, dt=timesteps, theta=phases, parity=parities)
def test_pass_always_unitary(n, h, dt, theta, parity):
    """Every splitting pass is exactly unitary for any parameters."""
    c = pair_split_coefficients(n, h, dt, parity, theta=theta)
    m = pair_split_matrix(c)
    assert np.abs(m @ m.conj().T - np.eye(n)).max() < 1e-12


@settings(max_examples=40, deadline=None)
@given(n=even_sizes, h=spacings, dt=timesteps, theta=phases)
def test_strang_passes_compose_unitarily(n, h, dt, theta):
    a, b, c = strang_passes(n, h, dt, theta=theta)
    u = pair_split_matrix(a) @ pair_split_matrix(b) @ pair_split_matrix(c)
    assert np.abs(u @ u.conj().T - np.eye(n)).max() < 1e-12


@settings(max_examples=40, deadline=None)
@given(n=even_sizes, h=spacings, dt=timesteps, parity=parities)
def test_exactly_one_neighbor_coupling(n, h, dt, parity):
    c = pair_split_coefficients(n, h, dt, parity)
    count = (np.abs(c.bl) > 0).astype(int) + (np.abs(c.bu) > 0).astype(int)
    assert np.all(count == 1)


@settings(max_examples=40, deadline=None)
@given(n=even_sizes, h=spacings, dt=timesteps, parity=parities, theta=phases)
def test_time_reversal_symmetry(n, h, dt, parity, theta):
    """U(-dt) = U(dt)^dagger: the splitting is time-reversible."""
    fwd = pair_split_matrix(pair_split_coefficients(n, h, dt, parity, theta))
    bwd = pair_split_matrix(pair_split_coefficients(n, h, -dt, parity, theta))
    assert np.abs(bwd - fwd.conj().T).max() < 1e-12


@settings(max_examples=40, deadline=None)
@given(n=even_sizes, h=spacings, dt=timesteps, parity=parities)
def test_zero_field_pass_is_symmetric(n, h, dt, parity):
    """Without a Peierls phase the pass matrix is complex-symmetric."""
    m = pair_split_matrix(pair_split_coefficients(n, h, dt, parity))
    assert np.abs(m - m.T).max() < 1e-14
