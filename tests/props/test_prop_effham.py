"""Property-based tests of the effective Hamiltonian and device model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import A100, EPYC_7543_CORE, KernelCostModel
from repro.materials import EffectiveHamiltonian


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_exc=st.floats(0.0, 1.0),
    scale=st.floats(0.1, 2.0),
)
def test_forces_are_gradient_of_energy(seed, n_exc, scale):
    ham = EffectiveHamiltonian((4, 4, 4))
    rng = np.random.default_rng(seed)
    modes = scale * rng.standard_normal((4, 4, 4, 3))
    f = ham.forces(modes, n_exc=n_exc)
    idx = tuple(rng.integers(0, 4, size=3)) + (int(rng.integers(0, 3)),)
    eps = 1e-6
    mp = modes.copy()
    mp[idx] += eps
    mm = modes.copy()
    mm[idx] -= eps
    num = -(ham.energy(mp, n_exc) - ham.energy(mm, n_exc)) / (2 * eps)
    assert abs(f[idx] - num) < 1e-4 * (1.0 + abs(num))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_energy_invariant_under_lattice_translation(seed):
    ham = EffectiveHamiltonian((4, 4, 4))
    rng = np.random.default_rng(seed)
    modes = rng.standard_normal((4, 4, 4, 3))
    e0 = ham.energy(modes)
    for axis in range(3):
        assert abs(ham.energy(np.roll(modes, 1, axis=axis)) - e0) < 1e-9 * (
            1 + abs(e0)
        )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_energy_invariant_under_global_inversion(seed):
    """E(-p) = E(p) without external field (inversion symmetry)."""
    ham = EffectiveHamiltonian((4, 4, 4))
    rng = np.random.default_rng(seed)
    modes = rng.standard_normal((4, 4, 4, 3))
    assert abs(ham.energy(-modes) - ham.energy(modes)) < 1e-9 * (
        1 + abs(ham.energy(modes))
    )


@settings(max_examples=50, deadline=None)
@given(
    flops=st.floats(1.0, 1e16),
    byts=st.floats(1.0, 1e13),
    itemsize=st.sampled_from([4, 8]),
)
def test_roofline_monotone_and_bounded(flops, byts, itemsize):
    """Kernel time never drops when work grows; GPU never slower than
    its own roofline bounds."""
    m = KernelCostModel(A100)
    t = m.kernel_time(flops, byts, itemsize=itemsize)
    assert t >= flops / A100.peak_flops(itemsize) - 1e-15
    assert t >= byts / A100.mem_bandwidth - 1e-15
    assert m.kernel_time(2 * flops, byts, itemsize=itemsize) >= t
    assert m.kernel_time(flops, 2 * byts, itemsize=itemsize) >= t


@settings(max_examples=30, deadline=None)
@given(flops=st.floats(1e3, 1e15), byts=st.floats(1e3, 1e12))
def test_gpu_roofline_beats_cpu_core(flops, byts):
    gpu = KernelCostModel(A100)
    cpu = KernelCostModel(EPYC_7543_CORE)
    assert gpu.kernel_time(flops, byts) <= cpu.kernel_time(flops, byts)
