"""Property-based invariants of the full QD propagator (Eq. 6).

The split-operator propagator is a product of exactly unitary factors
(pair rotations, diagonal phases), so orbital norms must be conserved to
round-off for *any* admissible dt/grid/order/kernel-variant -- that is
the invariant that lets the paper run thousands of QD sub-steps per MD
step without renormalizing.  A constant shift of the local potential
commutes with everything and contributes only a global phase, and a CAP
can only ever remove norm.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import HBAR
from repro.grids import Grid3D
from repro.lfd import PropagatorConfig, QDPropagator, WaveFunctionSet
from repro.lfd.cap import cos2_absorber

KIN_VARIANTS = ("baseline", "interchange", "blocked", "collapsed")


def make_state(norb, seed, n=6, h=0.5, vscale=0.3):
    grid = Grid3D.cubic(n, h)
    wf = WaveFunctionSet.random(grid, norb, np.random.default_rng(seed))
    vloc = vscale * np.random.default_rng(seed + 1).standard_normal(grid.shape)
    return grid, wf, vloc


@settings(max_examples=30, deadline=None)
@given(
    norb=st.integers(1, 4),
    seed=st.integers(0, 1000),
    dt=st.floats(0.005, 0.1),
    order=st.sampled_from((2, 4)),
    variant=st.sampled_from(KIN_VARIANTS),
    n=st.sampled_from((6, 8, 10)),  # pair splitting needs even grids
)
def test_unitarity_norm_drift(norb, seed, dt, order, variant, n):
    """Norm drift below 1e-12 per step for any dt/grid/order/variant."""
    _, wf, vloc = make_state(norb, seed, n=n)
    norms0 = wf.norms()
    nsteps = 5
    prop = QDPropagator(
        wf, vloc,
        PropagatorConfig(dt=dt, order=order, kin_variant=variant),
    )
    prop.run(nsteps)
    drift = np.max(np.abs(wf.norms() - norms0))
    assert drift < 1e-12 * nsteps


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    shift=st.floats(-5.0, 5.0),
    order=st.sampled_from((2, 4)),
)
def test_constant_potential_shift_is_global_phase(seed, shift, order):
    """v -> v + c only multiplies the state by exp(-i c t / hbar).

    The shift commutes with every factor of the split, so the shifted
    and unshifted trajectories must agree point-by-point up to that
    global phase -- for both the Strang and the Suzuki composition.
    """
    _, wf, vloc = make_state(2, seed)
    wf_shift = wf.copy()
    dt, nsteps = 0.04, 3
    QDPropagator(wf, vloc, PropagatorConfig(dt=dt, order=order)).run(nsteps)
    QDPropagator(
        wf_shift, vloc + shift, PropagatorConfig(dt=dt, order=order)
    ).run(nsteps)
    phase = np.exp(-1j * shift * dt * nsteps / HBAR)
    assert np.allclose(wf_shift.psi, wf.psi * phase, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    strength=st.floats(0.1, 3.0),
    width=st.integers(1, 2),
)
def test_cap_norm_decay_is_monotone(seed, strength, width):
    """With a CAP the per-orbital norms only ever decrease."""
    grid, wf, vloc = make_state(2, seed, n=8)
    cap = cos2_absorber(grid, width_points=width, strength=strength)
    prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.05), cap=cap)
    norms = [wf.norms().copy()]
    for _ in range(4):
        prop.step()
        norms.append(wf.norms().copy())
    for before, after in zip(norms, norms[1:]):
        assert np.all(after <= before + 1e-13)
    # A random state has support in the absorber, so norm is truly lost.
    assert np.all(norms[-1] < norms[0])


@settings(max_examples=10, deadline=None)
@given(
    norb=st.integers(1, 3),
    seed=st.integers(0, 1000),
    dt=st.floats(0.005, 0.1),
    order=st.sampled_from((2, 4)),
)
def test_unitarity_holds_on_every_backend(xp_backend, norb, seed, dt, order):
    """Norm conservation is substrate-independent.

    On the strict member this doubles as the no-silent-round-trip gate:
    the strict namespace raises ``TypeError`` on any ``np.*`` touch of
    its arrays, so a propagator that survives N steps under it provably
    never left the declared namespace between the asarray/to_numpy
    boundaries.
    """
    _, wf, vloc = make_state(norb, seed, n=6)
    norms0 = wf.norms()
    nsteps = 3
    prop = QDPropagator(
        wf, vloc,
        PropagatorConfig(dt=dt, order=order, backend=xp_backend),
    )
    prop.run(nsteps)
    drift = np.max(np.abs(wf.norms() - norms0))
    assert drift < 1e-12 * nsteps


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1000),
    strength=st.floats(0.1, 3.0),
)
def test_cap_decay_monotone_on_every_backend(xp_backend, seed, strength):
    """The CAP split factor only removes norm on any substrate."""
    grid, wf, vloc = make_state(2, seed, n=8)
    cap = cos2_absorber(grid, width_points=1, strength=strength,
                        backend=xp_backend)
    prop = QDPropagator(
        wf, vloc, PropagatorConfig(dt=0.05, backend=xp_backend), cap=cap
    )
    norms = [wf.norms().copy()]
    for _ in range(3):
        prop.step()
        norms.append(wf.norms().copy())
    for before, after in zip(norms, norms[1:]):
        assert np.all(after <= before + 1e-13)
    assert np.all(norms[-1] < norms[0])


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    dt=st.floats(0.01, 0.1),
    variant=st.sampled_from(KIN_VARIANTS),
)
def test_cross_backend_trajectories_agree(seed, dt, variant):
    """numpy and strict propagation of the same state agree to 1e-12.

    Every native kin variant is held against the one portable kernel --
    the variant axis is an execution schedule, never different physics.
    """
    _, wf, vloc = make_state(2, seed, n=6)
    wf_strict = wf.copy()
    nsteps = 3
    QDPropagator(
        wf, vloc, PropagatorConfig(dt=dt, kin_variant=variant,
                                   backend="numpy")
    ).run(nsteps)
    QDPropagator(
        wf_strict, vloc, PropagatorConfig(dt=dt, kin_variant=variant,
                                          backend="array_api_strict")
    ).run(nsteps)
    assert np.max(np.abs(wf_strict.psi - wf.psi)) <= 1e-12


class TestSplittingOrder:
    """Deterministic convergence-order check: Strang vs Suzuki."""

    @staticmethod
    def _final_state(order, dt, nsteps, seed=42):
        _, wf, vloc = make_state(2, seed)
        QDPropagator(wf, vloc, PropagatorConfig(dt=dt, order=order)).run(nsteps)
        return wf.psi

    def test_error_ratios(self):
        T = 0.4
        ref = self._final_state(4, T / 32, 32)
        err = {
            (order, dt): np.max(np.abs(
                self._final_state(order, dt, round(T / dt)) - ref
            ))
            for order in (2, 4)
            for dt in (0.1, 0.05)
        }
        # Halving dt cuts the global error by ~2^order.
        ratio2 = err[(2, 0.1)] / err[(2, 0.05)]
        ratio4 = err[(4, 0.1)] / err[(4, 0.05)]
        assert 3.0 < ratio2 < 5.5, (ratio2, err)
        assert ratio4 > 8.0, (ratio4, err)
        # At the same dt the 4th-order composition is far more accurate.
        assert err[(4, 0.1)] < err[(2, 0.1)] / 20.0, err
