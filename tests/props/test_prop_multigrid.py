"""Property-based tests of the multigrid solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.grids import Grid3D
from repro.multigrid import PoissonMultigrid, solve_poisson_fft
from repro.multigrid.smoothers import laplacian_periodic
from repro.multigrid.transfer import prolong_trilinear, restrict_full_weighting


densities = hnp.arrays(
    dtype=np.float64,
    shape=(8, 8, 8),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


@settings(max_examples=25, deadline=None)
@given(rho=densities)
def test_fft_solution_satisfies_discrete_poisson(rho):
    g = Grid3D.cubic(8, 0.5)
    v = solve_poisson_fft(rho, g)
    target = -4.0 * np.pi * (rho - rho.mean())
    assert np.abs(laplacian_periodic(v, g.spacing) - target).max() < 1e-8 * (
        1.0 + np.abs(target).max()
    )


@settings(max_examples=15, deadline=None)
@given(rho=densities)
def test_multigrid_matches_fft_for_any_density(rho):
    g = Grid3D.cubic(8, 0.5)
    mg = PoissonMultigrid(g)
    v, stats = mg.solve(rho, tol=1e-10, max_cycles=60)
    ref = solve_poisson_fft(rho, g)
    scale = np.abs(ref).max() + 1e-12
    assert np.abs(v - ref).max() < 1e-6 * scale + 1e-10


@settings(max_examples=25, deadline=None)
@given(f=densities)
def test_restrict_prolong_contract(f):
    """P(R(f)) preserves constants and never amplifies the range."""
    c = restrict_full_weighting(f)
    back = prolong_trilinear(c, f.shape)
    assert back.min() >= f.min() - 1e-12
    assert back.max() <= f.max() + 1e-12


@settings(max_examples=25, deadline=None)
@given(
    f=densities,
    a=st.floats(min_value=-3, max_value=3, allow_nan=False),
)
def test_transfer_linearity(f, a):
    assert np.allclose(
        restrict_full_weighting(a * f), a * restrict_full_weighting(f)
    )
