"""Property-based tests of the batched hopping kernels.

Three invariant families from the issue spec:

* EDC preserves the amplitude norm to 1e-12 and decays every non-active,
  non-degenerate coherence monotonically;
* frustrated-hop policies never create kinetic energy out of nothing;
* hop probabilities live in [0, 1] and, with the stay-probability,
  partition unity (until the per-channel clip saturates).

Plus the load-bearing contract of the whole ensemble engine: every
kernel's row ``t`` is bit-identical between a batched call and the
single-row call.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import to_numpy
from repro.qxmd.sh_kernels import (
    HopPolicy,
    apply_edc_batch,
    apply_edc_batch_xp,
    batched_norm,
    batched_norm_xp,
    hop_probabilities_batch,
    hop_probabilities_batch_xp,
    propagate_amplitudes_batch,
    propagate_amplitudes_batch_xp,
    resolve_hops,
    select_hops,
    stay_probabilities,
    stay_probabilities_xp,
)


def random_swarm(seed, ntraj, nstates):
    """Normalized stacked amplitudes + active states + a seeded rng."""
    rng = np.random.default_rng(seed)
    c = rng.standard_normal((ntraj, nstates)) \
        + 1j * rng.standard_normal((ntraj, nstates))
    c = c / batched_norm(c)[:, None]
    active = rng.integers(0, nstates, size=ntraj)
    return c, active, rng


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(1, 8),
    nstates=st.integers(2, 6),
    ekin=st.floats(1e-4, 10.0),
    cparam=st.floats(0.0, 1.0),
    dt=st.floats(0.01, 2.0),
)
def test_edc_norm_and_monotone_decay(seed, ntraj, nstates, ekin, cparam, dt):
    c, active, rng = random_swarm(seed, ntraj, nstates)
    energies = np.sort(rng.standard_normal(nstates))
    kinetic = np.full(ntraj, ekin)
    before = np.abs(c) ** 2
    out = apply_edc_batch(c.copy(), active, energies, dt, kinetic, cparam)
    # Norm restored to unity within 1e-12 on every row.
    assert np.all(np.abs(batched_norm(out) - 1.0) <= 1e-12)
    after = np.abs(out) ** 2
    rows = np.arange(ntraj)
    gap = np.abs(energies[None, :] - energies[active][:, None])
    decaying = gap >= 1e-12
    decaying[rows, active] = False
    # Every non-active, non-degenerate population decays monotonically;
    # the active population absorbs what they release.
    assert np.all(after[decaying] <= before[decaying] + 1e-12)
    assert np.all(after[rows, active] >= before[rows, active] - 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 10),
    rescale=st.sampled_from(["energy", "augment", "none"]),
    reject=st.sampled_from(["keep", "reverse"]),
)
def test_hops_never_create_energy(seed, n, rescale, reject):
    """ke * scale^2 never exceeds the energy budget ke + max(-de, 0)."""
    rng = np.random.default_rng(seed)
    de = rng.uniform(-2.0, 2.0, size=n)
    kinetic = rng.uniform(1e-3, 1.0, size=n)
    policy = HopPolicy(hop_rescale=rescale, hop_reject=reject)
    accepted, scale = resolve_hops(de, kinetic, policy)
    ke_after = kinetic * scale**2
    budget = kinetic + np.maximum(-de, 0.0)
    assert np.all(ke_after <= budget * (1.0 + 1e-12) + 1e-15)
    if rescale == "energy":
        # Accepted hops conserve total energy exactly; frustrated ones
        # leave the kinetic energy untouched (|scale| == 1).
        assert np.all(accepted == (de <= kinetic))
        assert np.allclose((ke_after + de)[accepted], kinetic[accepted],
                           atol=1e-12)
        expected = 1.0 if reject == "keep" else -1.0
        assert np.all(scale[~accepted] == expected)
    elif rescale == "augment":
        assert np.all(accepted)
        assert np.allclose(ke_after, np.maximum(kinetic - de, 0.0),
                           atol=1e-12)
    else:
        assert np.all(accepted)
        assert np.all(scale == 1.0)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(1, 8),
    nstates=st.integers(2, 6),
    dt=st.floats(0.01, 1.0),
    nac_scale=st.floats(0.01, 3.0),
)
def test_hop_probabilities_partition_unity(seed, ntraj, nstates, dt,
                                           nac_scale):
    c, active, rng = random_swarm(seed, ntraj, nstates)
    m = nac_scale * (rng.standard_normal((nstates, nstates))
                     + 1j * rng.standard_normal((nstates, nstates)))
    nac = 0.5 * (m - m.conj().T)
    g = hop_probabilities_batch(c, active, nac, dt)
    rows = np.arange(ntraj)
    assert np.all(g >= 0.0) and np.all(g <= 1.0)
    assert np.all(g[rows, active] == 0.0)
    stay = stay_probabilities(g)
    total = g.sum(axis=1)
    assert np.all(stay >= 0.0) and np.all(stay <= 1.0)
    # Partition of unity until the per-channel clip saturates the sum.
    unsat = total <= 1.0
    assert np.all(np.abs((total + stay)[unsat] - 1.0) <= 1e-12)
    assert np.all(stay[~unsat] == 0.0)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(1, 8),
    nstates=st.integers(2, 6),
)
def test_select_hops_targets_valid(seed, ntraj, nstates):
    c, active, rng = random_swarm(seed, ntraj, nstates)
    m = rng.standard_normal((nstates, nstates))
    nac = 0.5 * (m - m.T).astype(complex)
    g = hop_probabilities_batch(c, active, nac, dt=0.5)
    xi = rng.random(ntraj)
    target = select_hops(g, xi)
    rows = np.arange(ntraj)
    hopped = target >= 0
    assert np.all((target >= -1) & (target < nstates))
    # A selected target always carries positive probability (never the
    # active state, whose column is zeroed).
    assert np.all(g[rows[hopped], target[hopped]] > 0.0)
    assert np.all(target[hopped] != active[hopped])
    # xi at/above the total hop probability means no hop.
    total = g.sum(axis=1)
    assert np.all(~hopped[xi >= total])


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(1, 6),
    nstates=st.integers(2, 5),
    dt=st.floats(0.05, 1.0),
    cparam=st.floats(0.0, 0.5),
)
def test_xp_kernels_match_native_bitwise(xp_backend, seed, ntraj, nstates,
                                         dt, cparam):
    """Every portable FSSH kernel reproduces its native twin bit for bit.

    The xp formulations replace fancy-indexing gathers with ``take``/
    one-hot ``where`` -- pure re-spellings that pick or mask the same
    values, so the per-row floating-point operation sequences (the
    batch-size-invariance contract) are preserved exactly, on *both*
    namespaces.  Under the strict member this also proves the kernels
    never silently round-trip through NumPy.
    """
    c, active, rng = random_swarm(seed, ntraj, nstates)
    energies = np.sort(rng.standard_normal(nstates))
    m = rng.standard_normal((nstates, nstates))
    nac = 0.5 * (m - m.T).astype(complex)
    kinetic = rng.uniform(1e-3, 1.0, size=ntraj)

    b = xp_backend
    xp = b.xp
    cx, ex = b.asarray(c), b.asarray(energies)
    nacx, actx, kinx = b.asarray(nac), b.asarray(active), b.asarray(kinetic)

    assert np.array_equal(batched_norm(c), to_numpy(batched_norm_xp(xp, cx)))
    prop = propagate_amplitudes_batch(c, energies, nac, dt, substeps=4)
    prop_x = propagate_amplitudes_batch_xp(xp, cx, ex, nacx, dt, 4)
    assert np.array_equal(prop, to_numpy(prop_x))
    g = hop_probabilities_batch(prop, active, nac, dt)
    g_x = hop_probabilities_batch_xp(xp, prop_x, actx, nacx, dt)
    assert np.array_equal(g, to_numpy(g_x))
    assert np.array_equal(
        stay_probabilities(g), to_numpy(stay_probabilities_xp(xp, g_x))
    )
    edc = apply_edc_batch(prop.copy(), active, energies, dt, kinetic, cparam)
    edc_x = apply_edc_batch_xp(xp, prop_x, actx, ex, dt, kinx, cparam)
    assert np.array_equal(edc, to_numpy(edc_x))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(1, 6),
    nstates=st.integers(2, 5),
    dt=st.floats(0.01, 1.0),
)
def test_partition_of_unity_on_every_backend(xp_backend, seed, ntraj,
                                             nstates, dt):
    """Hop + stay probabilities partition unity on any substrate."""
    c, active, rng = random_swarm(seed, ntraj, nstates)
    m = rng.standard_normal((nstates, nstates)) \
        + 1j * rng.standard_normal((nstates, nstates))
    nac = 0.5 * (m - m.conj().T)
    b = xp_backend
    g = to_numpy(hop_probabilities_batch_xp(
        b.xp, b.asarray(c), b.asarray(active), b.asarray(nac), dt
    ))
    stay = to_numpy(stay_probabilities_xp(b.xp, b.asarray(g)))
    rows = np.arange(ntraj)
    assert np.all(g >= 0.0) and np.all(g <= 1.0)
    assert np.all(g[rows, active] == 0.0)
    total = g.sum(axis=1)
    unsat = total <= 1.0
    assert np.all(np.abs((total + stay)[unsat] - 1.0) <= 1e-12)
    assert np.all(stay[~unsat] == 0.0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ntraj=st.integers(2, 7),
    nstates=st.integers(2, 5),
    dt=st.floats(0.05, 1.0),
)
def test_batched_rows_bit_identical_to_single(seed, ntraj, nstates, dt):
    """The engine's foundation: kernels are batch-size invariant per row."""
    c, active, rng = random_swarm(seed, ntraj, nstates)
    energies = np.sort(rng.standard_normal(nstates))
    m = rng.standard_normal((nstates, nstates))
    nac = 0.5 * (m - m.T).astype(complex)
    kinetic = rng.uniform(1e-3, 1.0, size=ntraj)
    xi = rng.random(ntraj)

    prop = propagate_amplitudes_batch(c, energies, nac, dt, substeps=5)
    g = hop_probabilities_batch(prop, active, nac, dt)
    tgt = select_hops(g, xi)
    edc = apply_edc_batch(prop.copy(), active, energies, dt, kinetic, 0.1)
    for t in range(ntraj):
        row = slice(t, t + 1)
        assert np.array_equal(
            prop[t],
            propagate_amplitudes_batch(c[row], energies, nac, dt,
                                       substeps=5)[0],
        )
        assert np.array_equal(
            g[t],
            hop_probabilities_batch(prop[row], active[row], nac, dt)[0],
        )
        assert tgt[t] == select_hops(g[row], xi[row])[0]
        assert np.array_equal(
            edc[t],
            apply_edc_batch(prop[row].copy(), active[row], energies, dt,
                            kinetic[row], 0.1)[0],
        )
