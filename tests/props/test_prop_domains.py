"""Property-based tests of the DC domain decomposition."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids import Grid3D, DomainDecomposition


def make_decomposition(data):
    nd = data.draw(st.sampled_from([(1, 1, 1), (2, 1, 1), (2, 2, 1),
                                    (2, 2, 2), (3, 1, 1)]))
    base = data.draw(st.integers(2, 4))
    shape = tuple(n * base * 2 for n in nd)  # divisible, even cores
    grid = Grid3D(shape, (0.5, 0.5, 0.5))
    max_buffer = min(s // n for s, n in zip(shape, nd)) - 1
    buffer = data.draw(st.integers(0, min(3, max_buffer)))
    return grid, DomainDecomposition(grid, nd, buffer_width=buffer)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 10_000))
def test_gather_recombine_roundtrip(data, seed):
    """recombine(gather(f)) == f for every decomposition geometry."""
    grid, dec = make_decomposition(data)
    f = np.random.default_rng(seed).standard_normal(grid.shape)
    rebuilt = dec.recombine([dom.gather(f) for dom in dec])
    assert np.array_equal(rebuilt, f)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 10_000))
def test_core_sums_preserve_integrals(data, seed):
    """Summing per-domain core integrals equals the global integral."""
    grid, dec = make_decomposition(data)
    f = np.abs(np.random.default_rng(seed).standard_normal(grid.shape))
    total = f.sum()
    partial = 0.0
    for dom in dec:
        local = dom.gather(f)
        partial += local[dom.core_slices_local].sum()
    assert abs(partial - total) < 1e-9 * total


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 10_000), natoms=st.integers(1, 12))
def test_atom_assignment_is_partition(data, seed, natoms):
    grid, dec = make_decomposition(data)
    rng = np.random.default_rng(seed)
    # Positions may lie outside the box (wrapping must handle them).
    pos = rng.uniform(-10.0, 20.0, size=(natoms, 3))
    owners = dec.assign_atoms(pos)
    assigned = [i for lst in owners for i in lst]
    assert sorted(assigned) == list(range(natoms))
    for alpha, lst in enumerate(owners):
        for i in lst:
            assert dec[alpha].contains_position(pos[i])
