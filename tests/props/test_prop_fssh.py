"""Property-based tests of surface hopping and the KB projectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qxmd import FSSH, SurfaceHoppingState


def antihermitian(rng, n, scale):
    m = scale * (rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)))
    return 0.5 * (m - m.conj().T)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 8),
    dt=st.floats(0.01, 2.0),
    scale=st.floats(0.01, 0.5),
)
def test_amplitude_propagation_preserves_norm(seed, n, dt, scale):
    rng = np.random.default_rng(seed)
    fssh = FSSH(rng)
    state = SurfaceHoppingState(
        amplitudes=rng.standard_normal(n) + 1j * rng.standard_normal(n),
        active=int(rng.integers(0, n)),
    )
    energies = np.sort(rng.standard_normal(n))
    nac = antihermitian(rng, n, scale)
    fssh.propagate_amplitudes(state, energies, nac, dt)
    assert abs(np.linalg.norm(state.amplitudes) - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 8),
    dt=st.floats(0.01, 1.0),
)
def test_hop_probabilities_always_valid(seed, n, dt):
    rng = np.random.default_rng(seed)
    fssh = FSSH(rng)
    state = SurfaceHoppingState(
        amplitudes=rng.standard_normal(n) + 1j * rng.standard_normal(n),
        active=int(rng.integers(0, n)),
    )
    nac = antihermitian(rng, n, 2.0)
    g = fssh.hop_probabilities(state, nac, dt)
    assert np.all(g >= 0.0)
    assert np.all(g <= 1.0)
    assert g[state.active] == 0.0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 6),
    ekin=st.floats(1e-4, 10.0),
    c=st.floats(0.0, 1.0),
)
def test_decoherence_keeps_unit_norm_and_active_grows(seed, n, ekin, c):
    rng = np.random.default_rng(seed)
    fssh = FSSH(rng, decoherence_c=c)
    state = SurfaceHoppingState(
        amplitudes=rng.standard_normal(n) + 1j * rng.standard_normal(n),
        active=int(rng.integers(0, n)),
    )
    energies = np.sort(rng.standard_normal(n))
    p_active_before = state.populations[state.active]
    fssh.apply_decoherence(state, energies, dt=0.5, kinetic_energy=ekin)
    assert abs(np.linalg.norm(state.amplitudes) - 1.0) < 1e-9
    assert state.populations[state.active] >= p_active_before - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ekin=st.floats(1e-3, 100.0),
)
def test_energy_conservation_at_hops(seed, ekin):
    """Accepted hops conserve total (kinetic + electronic) energy via the
    velocity rescale factor."""
    rng = np.random.default_rng(seed)
    fssh = FSSH(rng)
    de = float(rng.uniform(-0.5 * ekin, 0.9 * ekin))
    energies = np.array([0.0, de])
    nac = np.array([[0.0, -50.0], [50.0, 0.0]], dtype=complex)  # certain hop
    state = SurfaceHoppingState(
        amplitudes=np.array([1.0, 1.0], dtype=complex), active=0
    )
    hopped, scale = fssh.attempt_hop(state, energies, nac, dt=1.0,
                                     kinetic_energy=ekin)
    if hopped:
        ekin_after = ekin * scale ** 2
        assert abs((ekin_after + de) - ekin) < 1e-9 * max(1.0, ekin)
