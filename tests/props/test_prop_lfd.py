"""Property-based tests of the LFD propagation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids import Grid3D
from repro.lfd import (
    WaveFunctionSet,
    kinetic_step,
    nonlocal_correction_blas,
    potential_phase_step,
    remap_occ,
)


def make_wf(norb, seed, n=6, h=0.5):
    g = Grid3D.cubic(n, h)
    return WaveFunctionSet.random(g, norb, np.random.default_rng(seed))


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    norb=st.integers(1, 6),
    dt=st.floats(1e-3, 0.3),
    theta=st.floats(-1.0, 1.0),
)
def test_kinetic_step_preserves_gram_matrix(seed, norb, dt, theta):
    """Unitarity preserves ALL inner products, not just norms."""
    wf = make_wf(norb, seed)
    s0 = wf.overlap_matrix()
    kinetic_step(wf, dt, theta=(theta, -theta, 0.3 * theta))
    s1 = wf.overlap_matrix()
    assert np.abs(s1 - s0).max() < 1e-11


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), dt=st.floats(1e-3, 1.0), v0=st.floats(-5, 5))
def test_potential_step_preserves_gram_matrix(seed, dt, v0):
    wf = make_wf(3, seed)
    v = np.full(wf.grid.shape, v0) + 0.3 * np.sin(
        np.arange(wf.grid.npoints).reshape(wf.grid.shape)
    )
    s0 = wf.overlap_matrix()
    potential_phase_step(wf, v, dt)
    assert np.abs(wf.overlap_matrix() - s0).max() < 1e-11


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    dsci=st.floats(-0.5, 0.5),
    dt=st.floats(1e-3, 0.2),
)
def test_nonlocal_correction_keeps_unit_norms(seed, dsci, dt):
    wf = make_wf(3, seed)
    ref = make_wf(2, seed + 1)
    nonlocal_correction_blas(wf, ref, dsci, dt, normalize=True)
    assert np.abs(wf.norms() - 1.0).max() < 1e-10


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), norb=st.integers(1, 5))
def test_remap_occ_never_negative_never_inflates(seed, norb):
    wf = make_wf(norb, seed)
    basis = make_wf(norb + 1, seed + 7)
    f = np.linspace(2.0, 0.0, norb)
    f_new = remap_occ(wf, basis, f)
    assert np.all(f_new >= -1e-12)
    assert f_new.sum() <= f.sum() + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), dt=st.floats(1e-3, 0.2))
def test_kinetic_variants_agree_for_random_inputs(seed, dt):
    wf_a = make_wf(4, seed, n=8)
    wf_b = wf_a.copy()
    kinetic_step(wf_a, dt, variant="interchange")
    kinetic_step(wf_b, dt, variant="collapsed")
    assert wf_a.max_abs_diff(wf_b) < 1e-13
