"""Property-based tests: SimComm collectives match NumPy reductions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.parallel import SimComm

world_sizes = st.integers(min_value=1, max_value=8)
payloads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 16),
    elements=st.floats(-100, 100, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(n=world_sizes, data=st.data())
def test_allreduce_equals_numpy_sum(n, data):
    comm = SimComm(n)
    shape = data.draw(st.integers(1, 8))
    vals = [
        data.draw(
            hnp.arrays(np.float64, shape, elements=st.floats(-50, 50,
                                                             allow_nan=False))
        )
        for _ in range(n)
    ]
    out = comm.allreduce(vals)
    expected = np.sum(np.stack(vals), axis=0)
    for v in out:
        assert np.allclose(v, expected)


@settings(max_examples=40, deadline=None)
@given(n=world_sizes, payload=payloads, root=st.integers(0, 7))
def test_bcast_delivers_identical_copies(n, payload, root):
    root = root % n
    comm = SimComm(n)
    out = comm.bcast(payload, root=root)
    assert len(out) == n
    for v in out:
        assert np.array_equal(v, payload)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), data=st.data())
def test_alltoall_is_transpose(n, data):
    comm = SimComm(n)
    matrix = [[data.draw(st.integers(-5, 5)) for _ in range(n)] for _ in range(n)]
    out = comm.alltoall(matrix)
    for src in range(n):
        for dst in range(n):
            assert out[dst][src] == matrix[src][dst]


@settings(max_examples=30, deadline=None)
@given(n=world_sizes, data=st.data())
def test_gather_scatter_roundtrip(n, data):
    comm = SimComm(n)
    vals = [data.draw(st.integers(-100, 100)) for _ in range(n)]
    gathered = comm.gather(vals, root=0)
    scattered = comm.scatter(gathered, root=0)
    assert scattered == vals
