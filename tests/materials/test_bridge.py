"""Mode-field <-> atomistic bridge tests (the Section V handoff)."""

import numpy as np
import pytest

from repro.materials import PBTIO3, build_supercell, flux_closure_modes, uniform_modes
from repro.materials.bridge import (
    modes_to_positions,
    positions_to_modes,
    roundtrip_alignment,
)


class TestModesToPositions:
    def test_uniform_mode_matches_builtin_polar_displacement(self):
        """A uniform +z mode reproduces build_supercell's polar pattern."""
        reps = (2, 2, 2)
        modes = uniform_modes(reps, 1.0, axis=2)
        pos_bridge, species, box = modes_to_positions(
            PBTIO3, reps, modes, amplitude=0.3
        )
        pos_ref, _, _ = build_supercell(PBTIO3, reps, polar_displacement=0.3)
        assert np.allclose(pos_bridge, pos_ref)

    def test_zero_modes_identity(self):
        reps = (2, 1, 1)
        pos, _, _ = modes_to_positions(PBTIO3, reps, np.zeros(reps + (3,)))
        ref, _, _ = build_supercell(PBTIO3, reps)
        assert np.array_equal(pos, ref)

    def test_pb_never_moves(self):
        reps = (2, 2, 2)
        modes = flux_closure_modes(reps + tuple(), 1.0) if False else \
            uniform_modes(reps, 1.0, axis=0)
        pos, species, _ = modes_to_positions(PBTIO3, reps, modes)
        ref, _, _ = build_supercell(PBTIO3, reps)
        for i, sp in enumerate(species):
            if sp.symbol == "Pb":
                assert np.array_equal(pos[i], ref[i])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            modes_to_positions(PBTIO3, (2, 2, 2), np.zeros((2, 2, 3)))


class TestRoundtrip:
    def test_uniform_texture_preserved(self):
        reps = (3, 3, 3)
        modes = uniform_modes(reps, 1.0, axis=2)
        assert roundtrip_alignment(modes, PBTIO3, reps) > 0.99

    def test_flux_closure_texture_preserved(self):
        """The Fig. 7 handoff: a flux closure displaced onto the lattice
        and read back via Born charges keeps its rotational texture."""
        reps = (6, 2, 6)
        modes = flux_closure_modes(reps, 1.0)
        assert roundtrip_alignment(modes, PBTIO3, reps, amplitude=0.2) > 0.95

    def test_recovered_winding_number(self):
        """The topological invariant survives the atomistic round trip."""
        from repro.materials import winding_number

        reps = (8, 2, 8)
        modes = flux_closure_modes(reps, 1.0)
        positions, species, _ = modes_to_positions(PBTIO3, reps, modes,
                                                   amplitude=0.2)
        symbols = [sp.symbol for sp in species]
        recovered = positions_to_modes(positions, PBTIO3, reps, symbols)
        assert winding_number(recovered) == pytest.approx(1.0, abs=0.05)

    def test_unpolarized_recovery_is_zero(self):
        reps = (2, 2, 2)
        pos, species, _ = build_supercell(PBTIO3, reps)
        symbols = [sp.symbol for sp in species]
        modes = positions_to_modes(pos, PBTIO3, reps, symbols)
        assert np.all(modes == 0.0)
