"""Landau-Devonshire effective Hamiltonian tests."""

import numpy as np
import pytest

from repro.materials import EffectiveHamiltonian, LandauParameters
from repro.materials.topology import flux_closure_modes, uniform_modes


@pytest.fixture
def ham() -> EffectiveHamiltonian:
    return EffectiveHamiltonian((6, 4, 6))


class TestParameters:
    def test_well_minimum(self):
        p = LandauParameters(a2=-1.0, a4=0.5)
        assert p.p_min == pytest.approx(1.0)

    def test_paraelectric_no_minimum(self):
        assert LandauParameters(a2=1.0).p_min == 0.0

    def test_switching_threshold(self):
        assert LandauParameters(exc_coupling=2.0).switching_threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LandauParameters(a4=-1.0)
        with pytest.raises(ValueError):
            LandauParameters(coupling=-0.1)


class TestEnergetics:
    def test_forces_match_numerical_gradient(self, ham, rng):
        modes = rng.standard_normal(ham.shape + (3,))
        f = ham.forces(modes, n_exc=0.15)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (3, 2, 4, 1), (5, 3, 5, 2)]:
            mp = modes.copy()
            mp[idx] += eps
            mm = modes.copy()
            mm[idx] -= eps
            num = -(ham.energy(mp, 0.15) - ham.energy(mm, 0.15)) / (2 * eps)
            assert f[idx] == pytest.approx(num, rel=1e-5, abs=1e-8)

    def test_uniform_polar_beats_paraelectric(self, ham):
        p0 = ham.params.p_min
        e_polar = ham.energy(uniform_modes(ham.shape, p0, axis=2))
        e_para = ham.energy(np.zeros(ham.shape + (3,)))
        assert e_polar < e_para

    def test_excitation_renormalizes_well(self, ham):
        p0 = ham.params.p_min
        modes = uniform_modes(ham.shape, p0, axis=2)
        e_ground = ham.energy(modes, n_exc=0.0)
        e_excited = ham.energy(modes, n_exc=0.6)  # above threshold
        # Above threshold the polar state costs energy relative to p = 0.
        e_para_exc = ham.energy(np.zeros_like(modes), n_exc=0.6)
        assert e_excited > e_para_exc
        assert e_ground < e_excited

    def test_external_field_tilts_well(self, ham):
        p0 = ham.params.p_min
        up = uniform_modes(ham.shape, p0, axis=2)
        down = -up
        e_field = np.array([0.0, 0.0, 0.1])
        assert ham.energy(up, e_field=e_field) < ham.energy(down, e_field=e_field)

    def test_negative_excitation_rejected(self, ham):
        with pytest.raises(ValueError):
            ham.effective_a2(-0.1)

    def test_shape_check(self, ham):
        with pytest.raises(ValueError):
            ham.energy(np.zeros((3, 3, 3, 3)))


class TestRelaxation:
    def test_energy_monotone(self, ham, rng):
        modes = 0.5 * rng.standard_normal(ham.shape + (3,))
        e0 = ham.energy(modes)
        relaxed, e1 = ham.relax(modes, nsteps=100)
        assert e1 <= e0

    def test_relaxed_amplitude_near_well(self, ham, rng):
        modes = 0.8 * rng.standard_normal(ham.shape + (3,))
        relaxed, _ = ham.relax(modes, nsteps=800)
        mags = np.linalg.norm(relaxed, axis=-1)
        # Most cells settle near a well bottom (anisotropy shifts |p|).
        assert 0.4 < np.median(mags) < 1.6

    def test_above_threshold_collapses_polarization(self, ham):
        p0 = ham.params.p_min
        fc = flux_closure_modes(ham.shape, p0)
        collapsed, _ = ham.relax(fc, nsteps=600, n_exc=0.8)
        assert np.linalg.norm(collapsed, axis=-1).mean() < 0.05 * p0


class TestDynamics:
    def test_damped_dynamics_loses_energy(self, ham, rng):
        modes = 0.5 * rng.standard_normal(ham.shape + (3,))
        vel = np.zeros_like(modes)
        e0 = ham.energy(modes)
        for _ in range(100):
            modes, vel = ham.dynamics_step(modes, vel, dt=0.05, damping=0.3)
        assert ham.energy(modes) < e0

    def test_validation(self, ham):
        modes = np.zeros(ham.shape + (3,))
        with pytest.raises(ValueError):
            ham.dynamics_step(modes, modes, dt=-1.0)


class TestStrainCoupling:
    def test_forces_consistent_with_strained_energy(self, rng):
        prm = LandauParameters(misfit_strain=-0.05)
        ham = EffectiveHamiltonian((4, 4, 4), prm)
        modes = rng.standard_normal((4, 4, 4, 3))
        f = ham.forces(modes)
        eps = 1e-6
        for idx in [(1, 2, 3, 0), (0, 0, 0, 2)]:
            mp = modes.copy(); mp[idx] += eps
            mm = modes.copy(); mm[idx] -= eps
            num = -(ham.energy(mp) - ham.energy(mm)) / (2 * eps)
            assert f[idx] == pytest.approx(num, rel=1e-5, abs=1e-8)

    def test_compressive_strain_favors_out_of_plane(self, rng):
        """eta < 0 (compressive substrate): relaxation selects P || z."""

        prm = LandauParameters(misfit_strain=-0.3, c_div=0.0, coupling=0.2)
        ham = EffectiveHamiltonian((6, 6, 6), prm)
        modes = 0.5 * rng.standard_normal((6, 6, 6, 3))
        relaxed, _ = ham.relax(modes, nsteps=1500)
        out_of_plane = np.abs(relaxed[..., 2]).mean()
        in_plane = np.abs(relaxed[..., :2]).mean()
        assert out_of_plane > 3 * in_plane

    def test_tensile_strain_favors_in_plane(self, rng):
        prm = LandauParameters(misfit_strain=+0.3, c_div=0.0, coupling=0.2)
        ham = EffectiveHamiltonian((6, 6, 6), prm)
        modes = 0.5 * rng.standard_normal((6, 6, 6, 3))
        relaxed, _ = ham.relax(modes, nsteps=1500)
        out_of_plane = np.abs(relaxed[..., 2]).mean()
        in_plane = np.abs(relaxed[..., :2]).mean()
        assert in_plane > 3 * out_of_plane

    def test_unstrained_unchanged(self, rng):
        """misfit_strain = 0 reproduces the original model exactly."""
        base = EffectiveHamiltonian((4, 4, 4))
        strained0 = EffectiveHamiltonian(
            (4, 4, 4), LandauParameters(misfit_strain=0.0)
        )
        modes = rng.standard_normal((4, 4, 4, 3))
        assert base.energy(modes) == strained0.energy(modes)
        assert np.array_equal(base.forces(modes), strained0.forces(modes))

    def test_validation(self):
        with pytest.raises(ValueError):
            LandauParameters(strain_coupling=-1.0)
