"""Neural-network force field tests."""

import numpy as np
import pytest

from repro.materials import (
    Descriptors,
    EffectiveHamiltonian,
    NeuralForceField,
    flux_closure_modes,
    train_nnff,
)


@pytest.fixture(scope="module")
def trained():
    ham = EffectiveHamiltonian((6, 2, 6))
    rng = np.random.default_rng(42)
    model, history = train_nnff(ham, rng, hidden=24, nconfigs=36, epochs=250)
    return ham, model, history


class TestDescriptors:
    def test_shape(self, rng):
        modes = rng.standard_normal((4, 4, 4, 3))
        feats = Descriptors.compute(modes)
        assert feats.shape == (64, Descriptors.NFEATURES)

    def test_translation_invariance(self, rng):
        """Rolling the lattice permutes descriptors but keeps their set."""
        modes = rng.standard_normal((4, 4, 4, 3))
        f1 = Descriptors.compute(modes)
        f2 = Descriptors.compute(np.roll(modes, 1, axis=0))
        assert np.allclose(np.sort(f1.ravel()), np.sort(f2.ravel()))

    def test_uniform_field_descriptors(self):
        modes = np.zeros((3, 3, 3, 3))
        modes[..., 2] = 0.7
        feats = Descriptors.compute(modes)
        # Own mode = neighbour mean for a uniform field; divergence zero.
        assert np.allclose(feats[:, :3], feats[:, 3:6])
        assert np.allclose(feats[:, 7], 0.0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            Descriptors.compute(np.zeros((4, 4, 3)))


class TestTraining:
    def test_loss_decreases(self, trained):
        _, _, history = trained
        assert history[-1] < 0.5 * history[0]

    def test_forces_correlate(self, trained):
        ham, model, _ = trained
        test = flux_closure_modes(ham.shape, max(ham.params.p_min, 0.5))
        pred = model.predict_forces(test)
        target = ham.forces(test)
        corr = np.corrcoef(pred.ravel(), target.ravel())[0, 1]
        assert corr > 0.7

    def test_prediction_shapes(self, trained):
        ham, model, _ = trained
        modes = np.zeros(ham.shape + (3,))
        f = model.predict_forces(modes)
        assert f.shape == modes.shape


class TestModel:
    def test_initialize_deterministic(self):
        a = NeuralForceField.initialize(hidden=8, rng=np.random.default_rng(3))
        b = NeuralForceField.initialize(hidden=8, rng=np.random.default_rng(3))
        assert np.array_equal(a.w1, b.w1)

    def test_gradients_match_numerical(self, rng):
        model = NeuralForceField.initialize(hidden=6, rng=rng)
        feats = rng.standard_normal((10, Descriptors.NFEATURES))
        targets = rng.standard_normal((10, 3))
        loss, grads = model.loss_and_grads(feats, targets)
        eps = 1e-6
        model.w2[2, 1] += eps
        loss_p, _ = model.loss_and_grads(feats, targets)
        model.w2[2, 1] -= 2 * eps
        loss_m, _ = model.loss_and_grads(feats, targets)
        num = (loss_p - loss_m) / (2 * eps)
        assert grads["w2"][2, 1] == pytest.approx(num, rel=1e-4)
