"""Born-charge polarization field tests."""

import numpy as np
import pytest

from repro.materials import PBTIO3, build_supercell, local_polarization, mean_polarization
from repro.materials.polarization import BORN_CHARGES, polarization_magnitude


class TestBornCharges:
    def test_acoustic_sum_rule(self):
        total = BORN_CHARGES["Pb"] + BORN_CHARGES["Ti"] + 3 * BORN_CHARGES["O"]
        assert total == pytest.approx(0.0, abs=1e-12)


class TestLocalPolarization:
    def test_undistorted_lattice_zero(self):
        pos, species, _ = build_supercell(PBTIO3, (2, 2, 2))
        syms = [sp.symbol for sp in species]
        p = local_polarization(pos, pos, syms, PBTIO3, (2, 2, 2))
        assert p.shape == (2, 2, 2, 3)
        assert np.abs(p).max() == 0.0

    def test_polar_distortion_gives_uniform_p(self):
        ideal, species, _ = build_supercell(PBTIO3, (2, 2, 2))
        disp, _, _ = build_supercell(PBTIO3, (2, 2, 2), polar_displacement=0.3)
        syms = [sp.symbol for sp in species]
        p = local_polarization(disp, ideal, syms, PBTIO3, (2, 2, 2))
        # All cells identical, along +z, positive (Ti moves +z).
        assert np.allclose(p[..., 2], p[0, 0, 0, 2])
        assert p[0, 0, 0, 2] > 0.0
        assert np.abs(p[..., :2]).max() < 1e-14

    def test_magnitude_scales_with_displacement(self):
        ideal, species, _ = build_supercell(PBTIO3, (1, 1, 1))
        syms = [sp.symbol for sp in species]
        ps = []
        for d in (0.1, 0.2):
            disp, _, _ = build_supercell(PBTIO3, (1, 1, 1), polar_displacement=d)
            p = local_polarization(disp, ideal, syms, PBTIO3, (1, 1, 1))
            ps.append(p[0, 0, 0, 2])
        assert ps[1] == pytest.approx(2 * ps[0], rel=1e-10)

    def test_wrapped_displacements(self):
        """Displacements across the periodic boundary are minimum-imaged."""
        ideal, species, box = build_supercell(PBTIO3, (1, 1, 1))
        syms = [sp.symbol for sp in species]
        moved = ideal.copy()
        moved[1, 2] += box[2] + 0.3  # full box + 0.3: same physical state
        ref, _, _ = build_supercell(PBTIO3, (1, 1, 1))
        ref[1, 2] += 0.3
        p_wrapped = local_polarization(moved, ideal, syms, PBTIO3, (1, 1, 1))
        p_direct = local_polarization(ref, ideal, syms, PBTIO3, (1, 1, 1))
        assert np.allclose(p_wrapped, p_direct)

    def test_shape_validation(self):
        pos, species, _ = build_supercell(PBTIO3, (1, 1, 1))
        syms = [sp.symbol for sp in species]
        with pytest.raises(ValueError):
            local_polarization(pos[:3], pos[:3], syms, PBTIO3, (1, 1, 1))


class TestAggregates:
    def test_mean_polarization(self):
        field = np.zeros((2, 2, 2, 3))
        field[..., 2] = 1.5
        assert np.allclose(mean_polarization(field), [0, 0, 1.5])

    def test_magnitude(self):
        field = np.zeros((1, 1, 1, 3))
        field[0, 0, 0] = [3.0, 4.0, 0.0]
        assert polarization_magnitude(field)[0, 0, 0] == pytest.approx(5.0)

    def test_mean_validation(self):
        with pytest.raises(ValueError):
            mean_polarization(np.zeros((2, 2, 3)))
