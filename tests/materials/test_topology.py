"""Polar-topology (flux closure) tests."""

import numpy as np
import pytest

from repro.materials import (
    domain_fraction,
    flux_closure_modes,
    uniform_modes,
    vorticity_field,
    winding_number,
)


SHAPE = (16, 2, 16)


class TestTextures:
    def test_uniform_modes(self):
        m = uniform_modes(SHAPE, 0.8, axis=1)
        assert m.shape == SHAPE + (3,)
        assert np.all(m[..., 1] == 0.8)
        assert np.all(m[..., 0] == 0.0)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_modes(SHAPE, -1.0)
        with pytest.raises(ValueError):
            uniform_modes(SHAPE, 1.0, axis=4)

    def test_flux_closure_amplitude(self):
        m = flux_closure_modes(SHAPE, 1.0)
        mags = np.linalg.norm(m, axis=-1)
        # Away from the core the amplitude approaches p0.
        assert mags.max() == pytest.approx(1.0, rel=0.05)
        # The core is depolarized.
        ic = (SHAPE[0] - 1) // 2
        assert mags[ic, 0, ic] < 0.5

    def test_flux_closure_in_plane(self):
        m = flux_closure_modes(SHAPE, 1.0, plane=(0, 2))
        assert np.abs(m[..., 1]).max() == 0.0

    def test_sense_flips_direction(self):
        ccw = flux_closure_modes(SHAPE, 1.0, sense=+1)
        cw = flux_closure_modes(SHAPE, 1.0, sense=-1)
        assert np.allclose(ccw, -cw)

    def test_validation(self):
        with pytest.raises(ValueError):
            flux_closure_modes(SHAPE, 1.0, sense=0)
        with pytest.raises(ValueError):
            flux_closure_modes(SHAPE, 1.0, plane=(1, 1))


class TestInvariants:
    def test_winding_of_flux_closure_is_one(self):
        assert winding_number(flux_closure_modes(SHAPE, 1.0)) == pytest.approx(1.0)

    def test_reversed_sense_keeps_winding(self):
        """Negating the polarization (sense flip) rotates every vector by
        pi but does NOT change the winding number."""
        m = flux_closure_modes(SHAPE, 1.0, sense=-1)
        assert winding_number(m) == pytest.approx(1.0)

    def test_antivortex_has_winding_minus_one(self):
        """Mirroring one in-plane component creates the w = -1 texture."""
        m = flux_closure_modes(SHAPE, 1.0)
        anti = m.copy()
        anti[..., 0], anti[..., 2] = m[..., 2].copy(), m[..., 0].copy()
        assert winding_number(anti) == pytest.approx(-1.0)

    def test_winding_of_uniform_is_zero(self):
        assert winding_number(uniform_modes(SHAPE, 1.0, axis=0)) == pytest.approx(0.0)

    def test_winding_robust_to_noise(self, rng):
        m = flux_closure_modes(SHAPE, 1.0)
        m += 0.1 * rng.standard_normal(m.shape)
        assert winding_number(m) == pytest.approx(1.0)

    def test_vorticity_sign(self):
        m = flux_closure_modes(SHAPE, 1.0, sense=+1)
        vort = vorticity_field(m)
        ic = (SHAPE[0] - 1) // 2
        assert vort[ic, 0, ic] > 0.0

    def test_vorticity_of_uniform_zero(self):
        vort = vorticity_field(uniform_modes(SHAPE, 1.0, axis=0))
        assert np.abs(vort).max() < 1e-14

    def test_winding_needs_room(self):
        with pytest.raises(ValueError):
            winding_number(flux_closure_modes((2, 2, 2), 1.0))


class TestDomainFraction:
    def test_uniform_domain(self):
        m = uniform_modes(SHAPE, 1.0, axis=2)
        assert domain_fraction(m, axis=2, sign=+1) == pytest.approx(1.0)
        assert domain_fraction(m, axis=2, sign=-1) == 0.0

    def test_flux_closure_four_domains(self):
        m = flux_closure_modes(SHAPE, 1.0)
        fractions = [
            domain_fraction(m, axis=a, sign=s)
            for a in (0, 2) for s in (+1, -1)
        ]
        # Four roughly equal quadrants.
        assert all(0.1 < f < 0.4 for f in fractions)

    def test_zero_field(self):
        assert domain_fraction(np.zeros(SHAPE + (3,)), axis=0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            domain_fraction(np.zeros(SHAPE + (3,)), axis=0, sign=2)
