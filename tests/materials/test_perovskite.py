"""PbTiO3 lattice builder tests."""

import numpy as np
import pytest

from repro.materials import PBTIO3, PerovskiteCell, build_supercell
from repro.materials.perovskite import cell_centers


class TestUnitCell:
    def test_five_atoms(self):
        assert PBTIO3.natoms == 5
        assert PBTIO3.symbols == ("Pb", "Ti", "O", "O", "O")

    def test_lattice_constant_bohr(self):
        # 3.97 A ~ 7.50 bohr.
        assert PBTIO3.a == pytest.approx(7.502, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerovskiteCell(a=-1.0)


class TestSupercell:
    def test_atom_count_40_atom_granule(self):
        """The paper's weak-scaling granule: 2x2x2 cells = 40 atoms."""
        pos, species, box = build_supercell(PBTIO3, (2, 2, 2))
        assert pos.shape == (40, 3)
        assert len(species) == 40
        assert box == pytest.approx((2 * PBTIO3.a,) * 3)

    def test_stoichiometry(self):
        _, species, _ = build_supercell(PBTIO3, (2, 1, 1))
        syms = [sp.symbol for sp in species]
        assert syms.count("Pb") == 2
        assert syms.count("Ti") == 2
        assert syms.count("O") == 6

    def test_charge_neutrality(self):
        _, species, _ = build_supercell(PBTIO3, (2, 2, 2))
        assert sum(sp.zval for sp in species) == pytest.approx(8 * 26.0)

    def test_polar_displacement_moves_ti(self):
        p0, _, _ = build_supercell(PBTIO3, (1, 1, 1))
        p1, _, _ = build_supercell(PBTIO3, (1, 1, 1), polar_displacement=0.3)
        # Atom order: Pb, Ti, O, O, O.
        assert p1[1, 2] - p0[1, 2] == pytest.approx(0.3)
        assert p1[2, 2] - p0[2, 2] == pytest.approx(-0.15)
        assert np.allclose(p1[0], p0[0])  # Pb untouched

    def test_polar_axis_selection(self):
        p0, _, _ = build_supercell(PBTIO3, (1, 1, 1))
        p1, _, _ = build_supercell(
            PBTIO3, (1, 1, 1), polar_displacement=0.2, polar_axis=0
        )
        assert p1[1, 0] - p0[1, 0] == pytest.approx(0.2)
        assert p1[1, 2] == p0[1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_supercell(PBTIO3, (0, 1, 1))
        with pytest.raises(ValueError):
            build_supercell(PBTIO3, (1, 1, 1), polar_axis=5)

    def test_positions_inside_box(self):
        pos, _, box = build_supercell(PBTIO3, (3, 2, 1))
        assert np.all(pos >= 0.0)
        assert np.all(pos < np.asarray(box))


def test_cell_centers():
    centers = cell_centers(PBTIO3, (2, 1, 1))
    assert centers.shape == (2, 3)
    assert centers[0] == pytest.approx([0.5 * PBTIO3.a] * 3)
    assert centers[1, 0] == pytest.approx(1.5 * PBTIO3.a)
