"""Imaginary-time propagation ground-state solver tests."""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.qxmd import KSHamiltonian, cg_eigensolve
from repro.qxmd.itp import imaginary_time_ground_state


@pytest.fixture
def well(rng):
    g = Grid3D.cubic(8, 0.6)
    c = 2.1
    xs, ys, zs = g.meshgrid()
    vloc = -2.5 * np.exp(-((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 1.5)
    return g, KSHamiltonian(g, vloc)


class TestITP:
    def test_matches_dense_spectrum(self, well, rng):
        g, ham = well
        wf = WaveFunctionSet.random(g, 3, rng)
        evals, steps = imaginary_time_ground_state(ham, wf, dtau=0.1,
                                                   nsteps=400, tol=1e-10)
        exact = np.linalg.eigvalsh(ham.dense_matrix())[:3]
        assert np.abs(evals - exact).max() < 2e-3

    def test_agrees_with_cg(self, well, rng):
        g, ham = well
        wf_itp = WaveFunctionSet.random(g, 2, np.random.default_rng(1))
        wf_cg = WaveFunctionSet.random(g, 2, np.random.default_rng(2))
        e_itp, _ = imaginary_time_ground_state(ham, wf_itp, dtau=0.1,
                                               nsteps=400, tol=1e-10)
        e_cg = cg_eigensolve(ham, wf_cg, ncg=30)
        assert np.abs(e_itp - e_cg).max() < 5e-3

    def test_orthonormal_output(self, well, rng):
        g, ham = well
        wf = WaveFunctionSet.random(g, 3, rng)
        imaginary_time_ground_state(ham, wf, dtau=0.1, nsteps=50)
        s = wf.overlap_matrix()
        assert np.abs(s - np.eye(3)).max() < 1e-10

    def test_early_stop(self, well, rng):
        g, ham = well
        wf = WaveFunctionSet.random(g, 2, rng)
        _, steps = imaginary_time_ground_state(ham, wf, dtau=0.1,
                                               nsteps=1000, tol=1e-9)
        assert steps < 1000  # converged before the cap

    def test_monotone_energy_filtering(self, well, rng):
        """Each ITP step lowers (or keeps) the band-energy sum."""
        g, ham = well
        wf = WaveFunctionSet.random(g, 2, rng)
        e_prev = float(np.sum(ham.expectation(wf)))
        for _ in range(5):
            imaginary_time_ground_state(ham, wf, dtau=0.1, nsteps=1, tol=0.0)
            e_now = float(np.sum(ham.expectation(wf)))
            assert e_now <= e_prev + 1e-10
            e_prev = e_now

    def test_validation(self, well, rng):
        g, ham = well
        wf = WaveFunctionSet.random(g, 2, rng)
        with pytest.raises(ValueError):
            imaginary_time_ground_state(ham, wf, dtau=0.0)
        with pytest.raises(ValueError):
            imaginary_time_ground_state(ham, wf, nsteps=0)
