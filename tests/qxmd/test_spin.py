"""LSDA functional and spin-polarized SCF tests."""

import numpy as np
import pytest

from repro.qxmd.xc import lda_exchange_correlation
from repro.qxmd.xc_spin import lsda_exchange_correlation
from repro.qxmd.scf_spin import scf_solve_spin, spin_occupations
from repro.qxmd.scf import SCFConfig


class TestLSDAFunctional:
    def test_unpolarized_limit_matches_lda(self, rng):
        """zeta = 0: LSDA potentials reduce to the restricted LDA."""
        rho = np.abs(rng.standard_normal((6, 6, 6))) + 0.01
        v_up, v_dn, e_spin = lsda_exchange_correlation(rho / 2, rho / 2)
        v_lda, e_lda = lda_exchange_correlation(rho)
        assert np.abs(v_up - v_dn).max() < 1e-14
        assert np.abs(v_up - v_lda).max() < 1e-10
        assert e_spin == pytest.approx(e_lda, rel=1e-10)

    def test_potentials_are_functional_derivatives(self):
        """v_sigma = d(rho eps_xc)/d rho_sigma by finite differences."""
        for ru, rd in ((0.3, 0.1), (0.05, 0.2), (0.4, 0.4), (0.7, 0.01)):
            up = np.array([[[ru]]])
            dn = np.array([[[rd]]])
            v_up, v_dn, _ = lsda_exchange_correlation(up, dn)
            eps = 1e-6
            for which, v in (("up", v_up), ("dn", v_dn)):
                du = eps if which == "up" else 0.0
                dd = eps if which == "dn" else 0.0
                _, _, ep = lsda_exchange_correlation(up + du, dn + dd)
                _, _, em = lsda_exchange_correlation(up - du, dn - dd)
                num = (ep - em) / (2 * eps)
                assert v[0, 0, 0] == pytest.approx(num, rel=1e-4), (ru, rd, which)

    def test_polarization_lowers_exchange_energy(self):
        """At fixed total density, full polarization lowers E_x (the
        2^(1/3) spin-scaling gain)."""
        rho = np.full((2, 2, 2), 0.4)
        _, _, e_unpol = lsda_exchange_correlation(rho / 2, rho / 2)
        _, _, e_pol = lsda_exchange_correlation(rho, np.zeros_like(rho))
        assert e_pol < e_unpol

    def test_spin_symmetry(self, rng):
        """Swapping the channels swaps the potentials."""
        a = np.abs(rng.standard_normal((4, 4, 4))) + 0.01
        b = np.abs(rng.standard_normal((4, 4, 4))) + 0.01
        vu1, vd1, e1 = lsda_exchange_correlation(a, b)
        vu2, vd2, e2 = lsda_exchange_correlation(b, a)
        assert np.allclose(vu1, vd2)
        assert np.allclose(vd1, vu2)
        assert e1 == pytest.approx(e2)

    def test_vacuum_zero(self):
        v_up, v_dn, e = lsda_exchange_correlation(
            np.zeros((2, 2, 2)), np.zeros((2, 2, 2))
        )
        assert np.all(v_up == 0.0) and np.all(v_dn == 0.0)
        assert e == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            lsda_exchange_correlation(np.zeros((2, 2, 2)), np.zeros((3, 3, 3)))


class TestSpinOccupations:
    def test_hydrogen_doublet(self):
        up, dn = spin_occupations(1.0, 3, magnetization=1.0)
        assert up.sum() == 1.0 and dn.sum() == 0.0

    def test_closed_shell(self):
        up, dn = spin_occupations(4.0, 3, magnetization=0.0)
        assert np.array_equal(up, dn)
        assert up.sum() == 2.0

    def test_one_electron_per_spin_orbital(self):
        up, _ = spin_occupations(3.0, 4, magnetization=3.0)
        assert up.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spin_occupations(1.0, 3, magnetization=3.0)
        with pytest.raises(ValueError):
            spin_occupations(10.0, 2, magnetization=0.0)


class TestSpinSCF:
    @pytest.fixture(scope="class")
    def h_atom(self):
        from repro.grids import Grid3D
        from repro.pseudo import get_species

        grid = Grid3D.cubic(14, 0.6)
        c = grid.lengths[0] / 2
        pos = np.array([[c, c, c]])
        return grid, pos, [get_species("H")]

    def test_hydrogen_polarized(self, h_atom):
        grid, pos, sp = h_atom
        res = scf_solve_spin(grid, pos, sp, norb=2, magnetization=1.0,
                             config=SCFConfig(nscf=3, ncg=4))
        assert res.total_magnetization(grid) == pytest.approx(1.0, rel=1e-6)
        # The occupied up level is bound.
        assert res.eigenvalues_up[0] < 0.0
        # Band energy settles.
        h = res.band_energy_history
        assert abs(h[-1] - h[-2]) < 0.5 * abs(h[1] - h[0]) + 1e-8

    def test_spin_channels_differ_for_open_shell(self, h_atom):
        grid, pos, sp = h_atom
        res = scf_solve_spin(grid, pos, sp, norb=2, magnetization=1.0,
                             config=SCFConfig(nscf=3, ncg=4))
        # The occupied (up) channel sees a deeper XC potential.
        assert res.eigenvalues_up[0] < res.eigenvalues_dn[0]

    def test_charge_accounting(self, h_atom):
        grid, pos, sp = h_atom
        res = scf_solve_spin(grid, pos, sp, norb=2, magnetization=1.0,
                             config=SCFConfig(nscf=2, ncg=3))
        n = res.rho.sum() * grid.dvol
        assert n == pytest.approx(1.0, rel=1e-9)


class TestSpinDynamics:
    def test_spin_resolved_propagation_conserves_magnetization(self):
        """Propagating up/down sets under their spin-resolved potentials
        (spin-diagonal dynamics) conserves the net magnetization."""
        from repro.grids import Grid3D
        from repro.lfd import PropagatorConfig, QDPropagator
        from repro.pseudo import get_species

        grid = Grid3D.cubic(12, 0.6)
        c = grid.lengths[0] / 2
        pos = np.array([[c, c, c]])
        res = scf_solve_spin(grid, pos, [get_species("H")], norb=2,
                             magnetization=1.0,
                             config=SCFConfig(nscf=2, ncg=3))
        m0 = res.total_magnetization(grid)
        prop_up = QDPropagator(res.wf_up, res.vloc_up,
                               PropagatorConfig(dt=0.05),
                               a_of_t=lambda t: (2.0 * np.sin(0.4 * t), 0, 0))
        prop_dn = QDPropagator(res.wf_dn, res.vloc_dn,
                               PropagatorConfig(dt=0.05),
                               a_of_t=lambda t: (2.0 * np.sin(0.4 * t), 0, 0))
        for _ in range(40):
            prop_up.step()
            prop_dn.step()
        from repro.lfd.observables import density

        m1 = float(
            (density(res.wf_up, res.occ_up)
             - density(res.wf_dn, res.occ_dn)).sum()
        ) * grid.dvol
        assert m1 == pytest.approx(m0, rel=1e-9)
