"""Hartree potential/energy wrapper tests."""

import numpy as np
import pytest

from repro.qxmd import hartree_energy, hartree_potential
from repro.multigrid import PoissonMultigrid


class TestPotential:
    def test_multigrid_matches_fft(self, grid16, rng):
        rho = rng.standard_normal(grid16.shape)
        v_mg = hartree_potential(rho, grid16, method="multigrid", tol=1e-10)
        v_fft = hartree_potential(rho, grid16, method="fft")
        assert np.abs(v_mg - v_fft).max() < 1e-6

    def test_solver_reuse(self, grid16, rng):
        solver = PoissonMultigrid(grid16)
        rho = rng.standard_normal(grid16.shape)
        v1 = hartree_potential(rho, grid16, solver=solver)
        v2 = hartree_potential(rho, grid16, solver=solver)
        assert np.allclose(v1, v2)

    def test_unknown_method(self, grid16):
        with pytest.raises(ValueError):
            hartree_potential(np.zeros(grid16.shape), grid16, method="direct")


class TestEnergy:
    def test_positive_for_self_interaction(self, grid16, rng):
        rho = np.abs(rng.standard_normal(grid16.shape))
        rho -= rho.mean()
        v = hartree_potential(rho, grid16, method="fft")
        assert hartree_energy(rho, v, grid16) > 0.0

    def test_scales_quadratically(self, grid16, rng):
        rho = rng.standard_normal(grid16.shape)
        v = hartree_potential(rho, grid16, method="fft")
        e1 = hartree_energy(rho, v, grid16)
        v2 = hartree_potential(2 * rho, grid16, method="fft")
        e2 = hartree_energy(2 * rho, v2, grid16)
        assert e2 == pytest.approx(4 * e1, rel=1e-10)

    def test_shape_check(self, grid16):
        with pytest.raises(ValueError):
            hartree_energy(np.zeros((2, 2, 2)), np.zeros((2, 2, 2)), grid16)
