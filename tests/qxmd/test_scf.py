"""Self-consistent-field solver tests."""

import numpy as np
import pytest

from repro.qxmd import SCFConfig, scf_solve
from repro.qxmd.scf import default_occupations


class TestOccupations:
    def test_aufbau(self):
        f = default_occupations(5.0, 4)
        assert list(f) == [2.0, 2.0, 1.0, 0.0]

    def test_overfull_raises(self):
        with pytest.raises(ValueError):
            default_occupations(10.0, 3)

    def test_zero_electrons(self):
        assert np.all(default_occupations(0.0, 3) == 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_occupations(-2.0, 3)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SCFConfig(nscf=0)
        with pytest.raises(ValueError):
            SCFConfig(mixing=0.0)
        with pytest.raises(ValueError):
            SCFConfig(mixing=1.5)


class TestSCF:
    @pytest.fixture(scope="class")
    def h2_result(self):
        from repro.grids import Grid3D
        from repro.pseudo import get_species

        g = Grid3D.cubic(16, 0.6)
        L = g.lengths[0]
        pos = np.array([[L / 2 - 0.7, L / 2, L / 2], [L / 2 + 0.7, L / 2, L / 2]])
        sp = [get_species("H"), get_species("H")]
        return scf_solve(g, pos, sp, norb=4, config=SCFConfig(nscf=4, ncg=4))

    def test_energy_history_stabilizes(self, h2_result):
        h = h2_result.history
        assert len(h) == 4
        # Later iterations change the energy much less than early ones.
        assert abs(h[-1] - h[-2]) < 0.2 * abs(h[1] - h[0]) + 1e-8

    def test_bound_ground_state(self, h2_result):
        assert h2_result.eigenvalues[0] < 0.0

    def test_occupations_sum_to_electrons(self, h2_result):
        assert h2_result.occupations.sum() == pytest.approx(2.0)

    def test_density_integrates_to_electrons(self, h2_result):
        g = h2_result.wf.grid
        assert h2_result.rho.sum() * g.dvol == pytest.approx(2.0, rel=1e-6)

    def test_gap_positive(self, h2_result):
        assert h2_result.gap > 0.0
        assert h2_result.homo_index == 0
        assert h2_result.lumo_index == 1

    def test_energy_breakdown_signs(self, h2_result):
        e = h2_result.energies
        assert e["kinetic"] > 0.0
        assert e["external"] < 0.0  # electron-ion attraction
        assert e["hartree"] > 0.0
        assert e["xc"] < 0.0
        assert e["total"] == pytest.approx(
            sum(v for k, v in e.items() if k != "total"), rel=1e-12
        )

    def test_occupation_shape_validation(self, h2_system):
        grid, pos, sp = h2_system
        with pytest.raises(ValueError):
            scf_solve(grid, pos, sp, norb=4, occupations=np.ones(3))
