"""Velocity-Verlet MD integrator tests."""

import numpy as np
import pytest

from repro.constants import KB_HA
from repro.qxmd import MDState, VelocityVerlet, kinetic_energy, temperature
from repro.qxmd.md import maxwell_boltzmann_velocities


def harmonic_forces(k=1.0, center=None):
    def f(x):
        c = center if center is not None else np.zeros_like(x)
        return -k * (x - c)

    return f


@pytest.fixture
def oscillator():
    state = MDState(
        positions=np.array([[1.0, 0.0, 0.0]]),
        velocities=np.zeros((1, 3)),
        masses=np.array([1.0]),
    )
    return state


class TestState:
    def test_validation(self):
        with pytest.raises(ValueError):
            MDState(np.zeros((2, 3)), np.zeros((3, 3)), np.ones(2))
        with pytest.raises(ValueError):
            MDState(np.zeros((2, 3)), np.zeros((2, 3)), np.array([1.0, -1.0]))

    def test_kinetic_energy_and_temperature(self):
        state = MDState(
            positions=np.zeros((2, 3)),
            velocities=np.array([[1.0, 0, 0], [0, 1.0, 0]]),
            masses=np.array([2.0, 4.0]),
        )
        assert kinetic_energy(state) == pytest.approx(3.0)
        assert temperature(state) == pytest.approx(2 * 3.0 / (6 * KB_HA))

    def test_copy_independent(self, oscillator):
        c = oscillator.copy()
        c.positions[0, 0] = 99.0
        assert oscillator.positions[0, 0] == 1.0


class TestIntegration:
    def test_harmonic_period(self, oscillator):
        """One period of a unit harmonic oscillator is 2 pi."""
        vv = VelocityVerlet(harmonic_forces(), dt=0.01)
        nsteps = int(round(2 * np.pi / 0.01))
        vv.run(oscillator, nsteps)
        assert oscillator.positions[0, 0] == pytest.approx(1.0, abs=1e-3)
        assert oscillator.velocities[0, 0] == pytest.approx(0.0, abs=1e-2)

    def test_energy_conservation(self, oscillator):
        vv = VelocityVerlet(harmonic_forces(), dt=0.01)
        e0 = kinetic_energy(oscillator) + 0.5 * 1.0
        vv.run(oscillator, 2000)
        e1 = (
            kinetic_energy(oscillator)
            + 0.5 * float(np.sum(oscillator.positions ** 2))
        )
        # Velocity Verlet conserves a shadow energy; the true energy
        # oscillates at O(dt^2) amplitude.
        assert e1 == pytest.approx(e0, rel=1e-4)

    def test_free_particle_drift(self):
        state = MDState(
            positions=np.zeros((1, 3)),
            velocities=np.array([[0.5, 0.0, 0.0]]),
            masses=np.array([3.0]),
        )
        vv = VelocityVerlet(lambda x: np.zeros_like(x), dt=0.1)
        vv.run(state, 10)
        assert state.positions[0, 0] == pytest.approx(0.5)

    def test_force_shape_validation(self, oscillator):
        vv = VelocityVerlet(lambda x: np.zeros((2, 3)), dt=0.1)
        with pytest.raises(ValueError):
            vv.step(oscillator)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            VelocityVerlet(harmonic_forces(), dt=0.0)

    def test_observer_called_each_step(self, oscillator):
        vv = VelocityVerlet(harmonic_forces(), dt=0.05)
        seen = []
        vv.run(oscillator, 5, observer=lambda i, s: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]


class TestThermostat:
    def test_berendsen_approaches_target(self, rng):
        n = 16
        masses = np.full(n, 100.0)
        state = MDState(
            positions=rng.standard_normal((n, 3)),
            velocities=maxwell_boltzmann_velocities(masses, 50.0, rng),
            masses=masses,
        )
        vv = VelocityVerlet(
            harmonic_forces(k=0.01), dt=0.5, thermostat_tau=10.0,
            target_temp=300.0,
        )
        vv.run(state, 400)
        assert temperature(state) == pytest.approx(300.0, rel=0.5)

    def test_velocity_rescale(self, oscillator):
        oscillator.velocities[0, 0] = 2.0
        vv = VelocityVerlet(harmonic_forces(), dt=0.1)
        vv.rescale_velocities(oscillator, 0.5)
        assert oscillator.velocities[0, 0] == 1.0
        with pytest.raises(ValueError):
            vv.rescale_velocities(oscillator, -1.0)


class TestMaxwellBoltzmann:
    def test_zero_net_momentum(self, rng):
        masses = np.array([1.0, 2.0, 5.0, 10.0])
        v = maxwell_boltzmann_velocities(masses, 300.0, rng)
        p = (masses[:, None] * v).sum(axis=0)
        assert np.abs(p).max() < 1e-12

    def test_temperature_statistics(self):
        rng = np.random.default_rng(0)
        masses = np.full(500, 1836.0)
        v = maxwell_boltzmann_velocities(masses, 300.0, rng)
        state = MDState(np.zeros((500, 3)), v, masses)
        assert temperature(state) == pytest.approx(300.0, rel=0.1)
