"""Global-local DC-DFT solver tests."""

import numpy as np
import pytest

from repro.grids import Grid3D, DomainDecomposition
from repro.pseudo import get_species
from repro.qxmd import GlobalDCSolver


@pytest.fixture(scope="module")
def dc_result():
    g = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
    dec = DomainDecomposition(g, (2, 1, 1), buffer_width=3)
    pos = np.array([[2.0, 4.8, 4.8], [7.0, 4.8, 4.8]])
    sp = [get_species("H"), get_species("H")]
    solver = GlobalDCSolver(g, dec, pos, sp, norb_extra=2, nscf=3, ncg=4)
    return solver, solver.solve()


class TestSetup:
    def test_atoms_assigned_to_their_domains(self, dc_result):
        solver, _ = dc_result
        assert solver.owners[0] == [0]
        assert solver.owners[1] == [1]

    def test_orbital_counts(self, dc_result):
        _, res = dc_result
        for st in res.states:
            # One H atom: 1 electron -> 1 occupied + 2 extra orbitals.
            assert st.wf.norb == 3
            assert st.occupations.sum() == pytest.approx(1.0)

    def test_species_count_validation(self):
        g = Grid3D((16, 16, 16), (0.6, 0.6, 0.6))
        dec = DomainDecomposition(g, (2, 1, 1), buffer_width=3)
        with pytest.raises(ValueError):
            GlobalDCSolver(g, dec, np.zeros((2, 3)), [get_species("H")])


class TestSolution:
    def test_band_energy_decreases(self, dc_result):
        _, res = dc_result
        h = res.energy_history
        assert h[-1] < h[0]

    def test_global_density_normalized(self, dc_result):
        solver, res = dc_result
        n = res.rho_global.sum() * solver.grid.dvol
        assert n == pytest.approx(2.0, rel=1e-9)

    def test_domain_orbitals_orthonormal(self, dc_result):
        _, res = dc_result
        for st in res.states:
            s = st.wf.overlap_matrix()
            assert np.abs(s - np.eye(st.wf.norb)).max() < 1e-8

    def test_bound_states_in_each_domain(self, dc_result):
        _, res = dc_result
        for st in res.states:
            assert st.eigenvalues[0] < 0.2  # near-bound in the LDC potential

    def test_symmetric_system_symmetric_domains(self, dc_result):
        """Two identical H atoms in mirrored domains: eigenvalues agree."""
        _, res = dc_result
        e0 = res.states[0].eigenvalues
        e1 = res.states[1].eigenvalues
        assert np.abs(e0 - e1).max() < 0.05

    def test_vloc_carries_ldc_boundary(self, dc_result):
        """The gathered domain potential equals the global potential on
        the buffer region (the density-adaptive boundary condition)."""
        solver, res = dc_result
        st = res.states[0]
        gathered = st.domain.gather(res.v_global)
        assert np.allclose(st.vloc, gathered)

    def test_band_sum_matches_states(self, dc_result):
        _, res = dc_result
        manual = sum(
            float(np.dot(st.occupations, st.eigenvalues)) for st in res.states
        )
        assert res.band_sum() == pytest.approx(manual)


class TestWarmStart:
    def test_warm_start_improves_or_matches_band_energy(self, dc_result):
        solver, res = dc_result
        warm = solver.solve(warm_wfs=[st.wf for st in res.states])
        assert warm.energy_history[-1] <= res.energy_history[0] + 1e-6

    def test_warm_start_count_validated(self, dc_result):
        solver, res = dc_result
        with pytest.raises(ValueError):
            solver.solve(warm_wfs=[res.states[0].wf])

    def test_none_entries_fall_back(self, dc_result):
        solver, res = dc_result
        out = solver.solve(warm_wfs=[None, res.states[1].wf])
        assert len(out.states) == 2
