"""Force calculator tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet
from repro.pseudo import get_species
from repro.qxmd import ForceCalculator


@pytest.fixture
def o2_forces_setup(o2_system, rng):
    grid, pos, species = o2_system
    wf = WaveFunctionSet.random(grid, 7, rng)
    occ = np.array([2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 0.0])
    calc = ForceCalculator(grid, species)
    return grid, pos, species, wf, occ, calc


class TestElectrostatic:
    def test_symmetric_dimer_forces_mirror(self, o2_forces_setup):
        grid, pos, species, wf, occ, calc = o2_forces_setup
        # Use a symmetric (uniform) electron density.
        rho = np.full(grid.shape, 12.0 / grid.volume)
        f = calc.electrostatic_forces(pos, rho)
        # Equal ions in a uniform sea: forces are opposite along the axis.
        assert f[0, 0] == pytest.approx(-f[1, 0], abs=1e-8)
        # and repulsive (ion-ion): atom 0 (left) pushed to -x.
        assert f[0, 0] < 0.0

    def test_zero_force_at_symmetric_point(self, grid16):
        """A single ion with its own symmetric density feels no force."""
        sp = [get_species("O")]
        pos = np.array([[4.8, 4.8, 4.8]])
        calc = ForceCalculator(grid16, sp)
        rho = np.full(grid16.shape, 6.0 / grid16.volume)
        f = calc.electrostatic_forces(pos, rho)
        assert np.abs(f).max() < 1e-8

    def test_electron_cloud_attracts_ion(self, grid16):
        """An ion is pulled toward an off-centre electron cloud."""
        sp = [get_species("O")]
        pos = np.array([[4.8, 4.8, 4.8]])
        calc = ForceCalculator(grid16, sp)
        xs, ys, zs = grid16.meshgrid()
        cloud = np.exp(-((xs - 6.5) ** 2 + (ys - 4.8) ** 2 + (zs - 4.8) ** 2))
        cloud *= 6.0 / (cloud.sum() * grid16.dvol)
        f = calc.electrostatic_forces(pos, cloud)
        assert f[0, 0] > 1e-3  # pulled toward +x


class TestNonlocal:
    def test_translationally_invariant_state_zero_force(self, o2_forces_setup):
        """A constant orbital gives zero net nonlocal force (the projector
        gradient integrates to zero against it)."""
        grid, pos, species, _, _, calc = o2_forces_setup
        wf = WaveFunctionSet(grid, 1)
        wf.psi[..., 0] = 1.0
        wf.normalize()
        f = calc.nonlocal_forces(pos, wf, np.array([2.0]))
        assert np.abs(f).max() < 1e-8

    def test_nonzero_for_localized_state(self, o2_forces_setup):
        grid, pos, species, _, _, calc = o2_forces_setup
        xs, ys, zs = grid16_mesh = grid.meshgrid()
        # Electron lump displaced from atom 0 -> finite projector force.
        lump = np.exp(
            -((xs - pos[0, 0] - 0.8) ** 2 + (ys - pos[0, 1]) ** 2
              + (zs - pos[0, 2]) ** 2)
        ).astype(complex)
        wf = WaveFunctionSet(grid, 1, data=lump[..., None])
        wf.normalize()
        f = calc.nonlocal_forces(pos, wf, np.array([2.0]))
        assert np.abs(f[0]).max() > 1e-6

    def test_no_projectors_zero(self, h2_system, rng):
        grid, pos, species = h2_system
        calc = ForceCalculator(grid, species)
        wf = WaveFunctionSet.random(grid, 2, rng)
        f = calc.nonlocal_forces(pos, wf, np.ones(2))
        assert np.all(f == 0.0)


class TestBreakdown:
    def test_compute_totals(self, o2_forces_setup):
        grid, pos, species, wf, occ, calc = o2_forces_setup
        bd = calc.compute(pos, wf, occ)
        assert bd.total.shape == (2, 3)
        assert np.allclose(
            bd.total, bd.electrostatic + bd.core_pair + bd.nonlocal_
        )

    def test_exclude_nonlocal(self, o2_forces_setup):
        grid, pos, species, wf, occ, calc = o2_forces_setup
        bd = calc.compute(pos, wf, occ, include_nonlocal=False)
        assert np.all(bd.nonlocal_ == 0.0)
