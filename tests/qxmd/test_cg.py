"""CG eigensolver tests against dense diagonalization."""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.lfd import WaveFunctionSet
from repro.qxmd import KSHamiltonian, cg_eigensolve, rayleigh_quotients
from repro.qxmd.cg import subspace_rotate


@pytest.fixture
def small_problem(rng):
    g = Grid3D.cubic(6, 0.7)
    vloc = -2.0 * np.exp(
        -sum((x - 2.1) ** 2 for x in g.meshgrid()) / 1.5
    )
    ham = KSHamiltonian(g, vloc)
    return g, ham


class TestConvergence:
    def test_approaches_dense_eigenvalues(self, small_problem, rng):
        g, ham = small_problem
        exact = np.linalg.eigvalsh(ham.dense_matrix())
        wf = WaveFunctionSet.random(g, 3, rng)
        evals = cg_eigensolve(ham, wf, ncg=25)
        assert np.abs(evals - exact[:3]).max() < 2e-2

    def test_eigenvalues_ascending(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 4, rng)
        evals = cg_eigensolve(ham, wf, ncg=5)
        assert np.all(np.diff(evals) >= -1e-10)

    def test_energy_decreases_with_iterations(self, small_problem, rng):
        g, ham = small_problem
        wf3 = WaveFunctionSet.random(g, 3, np.random.default_rng(11))
        wf10 = WaveFunctionSet.random(g, 3, np.random.default_rng(11))
        e3 = cg_eigensolve(ham, wf3, ncg=3).sum()
        e10 = cg_eigensolve(ham, wf10, ncg=10).sum()
        assert e10 <= e3 + 1e-10

    def test_orbitals_stay_orthonormal(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 4, rng)
        cg_eigensolve(ham, wf, ncg=6)
        s = wf.overlap_matrix()
        assert np.abs(s - np.eye(4)).max() < 1e-8

    def test_zero_iterations_is_rayleigh_ritz_only(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 3, rng)
        evals = cg_eigensolve(ham, wf, ncg=0)
        assert evals.shape == (3,)

    def test_negative_ncg_rejected(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 2, rng)
        with pytest.raises(ValueError):
            cg_eigensolve(ham, wf, ncg=-1)


class TestRayleighRitz:
    def test_rotation_diagonalizes_subspace(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 4, rng)
        subspace_rotate(ham, wf)
        h = ham.subspace_matrix(wf)
        off = h - np.diag(np.diag(h))
        assert np.abs(off).max() < 1e-10

    def test_rayleigh_quotients_match_expectations(self, small_problem, rng):
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 3, rng)
        r = rayleigh_quotients(ham, wf)
        assert np.allclose(r, ham.expectation(wf))

    def test_paper_configuration_3cg(self, small_problem, rng):
        """Three CG iterations (the paper's per-SCF budget) already
        remove most of the random-start energy."""
        g, ham = small_problem
        wf = WaveFunctionSet.random(g, 2, rng)
        e_start = rayleigh_quotients(ham, wf)[0]
        evals = cg_eigensolve(ham, wf, ncg=3)
        exact = np.linalg.eigvalsh(ham.dense_matrix())[0]
        # At least 80% of the distance to the exact ground state covered.
        assert (evals[0] - exact) < 0.2 * (e_start - exact)
