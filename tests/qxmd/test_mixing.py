"""Density/potential mixer tests."""

import numpy as np
import pytest

from repro.qxmd.mixing import LinearMixer, PulayMixer, make_mixer


def fixed_point_map(x, target, jacobian=0.6):
    """A linear contraction x -> target + J (x - target)."""
    return target + jacobian * (x - target)


def iterate(mixer, x0, target, n, jacobian=0.6):
    """Run n SCF-like iterations; returns per-iteration residual norms."""
    x = mixer.mix(x0)
    residuals = []
    for _ in range(n):
        x_out = fixed_point_map(x, target, jacobian)
        residuals.append(float(np.linalg.norm(x_out - x)))
        x = mixer.mix(x_out)
    return residuals


@pytest.fixture
def problem(rng):
    target = rng.standard_normal(50)
    x0 = rng.standard_normal(50)
    return x0, target


class TestLinear:
    def test_converges_contraction(self, problem):
        x0, target = problem
        res = iterate(LinearMixer(beta=0.5), x0, target, 80)
        assert res[-1] < 1e-6 * res[0]

    def test_first_call_passthrough(self, rng):
        m = LinearMixer()
        x = rng.standard_normal(5)
        assert np.array_equal(m.mix(x), x)

    def test_mixing_formula(self):
        m = LinearMixer(beta=0.25)
        m.mix(np.array([0.0]))
        out = m.mix(np.array([4.0]))
        assert out[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearMixer(beta=0.0)

    def test_reset(self, rng):
        m = LinearMixer()
        m.mix(rng.standard_normal(3))
        m.reset()
        x = rng.standard_normal(3)
        assert np.array_equal(m.mix(x), x)


class TestPulay:
    def test_converges_contraction(self, problem):
        x0, target = problem
        res = iterate(PulayMixer(beta=0.5), x0, target, 30)
        assert res[-1] < 1e-8 * res[0]

    def test_faster_than_linear(self, problem):
        """On a stiff linear problem DIIS needs far fewer iterations."""
        x0, target = problem
        n = 15
        res_lin = iterate(LinearMixer(beta=0.3), x0, target, n, jacobian=0.9)
        res_pulay = iterate(PulayMixer(beta=0.3), x0, target, n, jacobian=0.9)
        assert res_pulay[-1] < 0.1 * res_lin[-1]

    def test_linear_problem_solved_exactly_in_history(self, rng):
        """For an exactly linear map, DIIS converges once the history
        spans the residual space."""
        target = rng.standard_normal(4)
        x0 = rng.standard_normal(4)
        mixer = PulayMixer(beta=0.5, history=6)
        res = iterate(mixer, x0, target, 8, jacobian=0.95)
        assert res[-1] < 1e-10

    def test_history_bounded(self, rng):
        m = PulayMixer(history=3)
        x = m.mix(rng.standard_normal(4))
        for _ in range(10):
            x = m.mix(x + rng.standard_normal(4) * 0.1)
        assert m.depth <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PulayMixer(beta=1.5)
        with pytest.raises(ValueError):
            PulayMixer(history=1)

    def test_reset(self, rng):
        m = PulayMixer()
        m.mix(rng.standard_normal(3))
        m.mix(rng.standard_normal(3))
        m.reset()
        assert m.depth == 0


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_mixer("linear"), LinearMixer)
        assert isinstance(make_mixer("pulay"), PulayMixer)
        with pytest.raises(ValueError):
            make_mixer("broyden")


class TestSCFIntegration:
    def test_pulay_scf_runs_and_matches_linear_energy(self, h2_system):
        from repro.qxmd import SCFConfig, scf_solve

        grid, pos, sp = h2_system
        lin = scf_solve(grid, pos, sp, norb=3,
                        config=SCFConfig(nscf=4, ncg=3, mixer="linear"))
        pul = scf_solve(grid, pos, sp, norb=3,
                        config=SCFConfig(nscf=4, ncg=3, mixer="pulay"))
        assert pul.energies["total"] == pytest.approx(
            lin.energies["total"], abs=0.05
        )

    def test_bad_mixer_rejected(self):
        from repro.qxmd import SCFConfig

        with pytest.raises(ValueError):
            SCFConfig(mixer="anderson")
