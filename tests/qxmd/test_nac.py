"""Nonadiabatic coupling tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet
from repro.qxmd import align_phases, nonadiabatic_couplings


class TestPhaseAlignment:
    def test_alignment_fixes_sign_flip(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 3, rng)
        b = a.copy()
        b.psi[..., 1] *= -1.0  # eigensolver gauge flip
        align_phases(a, b)
        assert a.max_abs_diff(b) < 1e-12

    def test_alignment_fixes_complex_phase(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 2, rng)
        b = a.copy()
        b.psi[..., 0] *= np.exp(1j * 1.234)
        align_phases(a, b)
        assert a.max_abs_diff(b) < 1e-12

    def test_mismatched_norb(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 2, rng)
        b = WaveFunctionSet.random(grid8, 3, rng)
        with pytest.raises(ValueError):
            align_phases(a, b)


class TestCouplings:
    def test_anti_hermitian(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 4, rng)
        b = a.copy()
        b.psi += 0.05 * (
            rng.standard_normal(b.psi.shape) + 1j * rng.standard_normal(b.psi.shape)
        )
        b.orthonormalize()
        d = nonadiabatic_couplings(a, b, dt=0.5)
        assert np.abs(d + d.conj().T).max() < 1e-12

    def test_identical_sets_zero_coupling(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 3, rng)
        d = nonadiabatic_couplings(a, a.copy(), dt=1.0)
        assert np.abs(d).max() < 1e-12

    def test_scales_inversely_with_dt(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 3, rng)
        b = a.copy()
        b.psi += 0.02 * rng.standard_normal(b.psi.shape)
        b.orthonormalize()
        d1 = nonadiabatic_couplings(a, b.copy(), dt=1.0)
        d2 = nonadiabatic_couplings(a, b.copy(), dt=2.0)
        assert np.allclose(d1, 2.0 * d2, atol=1e-12)

    def test_known_rotation(self, grid8, rng):
        """A small rotation between orbitals 0 and 1 gives d_01 ~ angle/dt."""
        a = WaveFunctionSet.random(grid8, 2, rng)
        theta = 0.01
        b = a.copy()
        m = a.as_matrix()
        rot = m @ np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        b.psi[...] = rot.reshape(b.psi.shape)
        dt = 0.5
        d = nonadiabatic_couplings(a, b, dt=dt, align=False)
        # Column 0 rotates toward phi_1: <phi_0|phi_1'> = -sin(theta).
        assert np.real(d[0, 1]) == pytest.approx(-theta / dt, rel=1e-3)

    def test_bad_dt(self, grid8, rng):
        a = WaveFunctionSet.random(grid8, 2, rng)
        with pytest.raises(ValueError):
            nonadiabatic_couplings(a, a.copy(), dt=0.0)
