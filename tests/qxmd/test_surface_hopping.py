"""Fewest-switches surface hopping tests."""

import numpy as np
import pytest

from repro.qxmd import FSSH, HopPolicy, SurfaceHoppingState
from repro.qxmd.surface_hopping import occupations_from_states


def antihermitian_nac(rng, n, scale=0.1):
    m = scale * (rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)))
    return 0.5 * (m - m.conj().T)


class TestState:
    def test_on_state(self):
        s = SurfaceHoppingState.on_state(4, 2)
        assert s.active == 2
        assert s.populations[2] == pytest.approx(1.0)

    def test_normalization_enforced(self):
        s = SurfaceHoppingState(amplitudes=np.array([3.0, 4.0]), active=0)
        assert np.linalg.norm(s.amplitudes) == pytest.approx(1.0)

    def test_zero_amplitudes_rejected(self):
        with pytest.raises(ValueError):
            SurfaceHoppingState(amplitudes=np.zeros(3), active=0)

    def test_active_range(self):
        with pytest.raises(ValueError):
            SurfaceHoppingState(amplitudes=np.ones(3), active=3)

    def test_stacked_amplitudes_rejected(self):
        """Batches are SwarmState's job: a global normalize-on-construct
        here would silently bury zero-amplitude rows."""
        with pytest.raises(ValueError, match="SwarmState"):
            SurfaceHoppingState(amplitudes=np.ones((4, 3)), active=0)


class TestAmplitudePropagation:
    def test_norm_preserved(self, rng):
        fssh = FSSH(rng)
        state = SurfaceHoppingState.on_state(4, 1)
        e = np.array([0.0, 0.1, 0.25, 0.4])
        nac = antihermitian_nac(rng, 4)
        fssh.propagate_amplitudes(state, e, nac, dt=0.5)
        assert np.linalg.norm(state.amplitudes) == pytest.approx(1.0)

    def test_no_coupling_populations_static(self, rng):
        fssh = FSSH(rng)
        state = SurfaceHoppingState(
            amplitudes=np.array([0.6, 0.8], dtype=complex), active=0
        )
        e = np.array([0.0, 0.3])
        fssh.propagate_amplitudes(state, e, np.zeros((2, 2)), dt=1.0)
        assert state.populations == pytest.approx([0.36, 0.64])

    def test_coupling_transfers_population(self, rng):
        fssh = FSSH(rng, substeps=50)
        state = SurfaceHoppingState.on_state(2, 0)
        e = np.array([0.0, 0.0])  # degenerate: pure Rabi transfer
        nac = np.array([[0.0, 0.2], [-0.2, 0.0]], dtype=complex)
        fssh.propagate_amplitudes(state, e, nac, dt=2.0)
        # Rabi angle 0.2 * 2 = 0.4 rad -> P1 = sin^2(0.4).
        assert state.populations[1] == pytest.approx(np.sin(0.4) ** 2, rel=1e-3)

    def test_dimension_mismatch(self, rng):
        fssh = FSSH(rng)
        state = SurfaceHoppingState.on_state(3, 0)
        with pytest.raises(ValueError):
            fssh.propagate_amplitudes(state, np.zeros(2), np.zeros((2, 2)), 0.1)


class TestHops:
    def test_probabilities_in_range(self, rng):
        fssh = FSSH(rng)
        state = SurfaceHoppingState(
            amplitudes=(rng.standard_normal(4) + 1j * rng.standard_normal(4)),
            active=1,
        )
        g = fssh.hop_probabilities(state, antihermitian_nac(rng, 4, 1.0), dt=0.3)
        assert np.all(g >= 0.0) and np.all(g <= 1.0)
        assert g[1] == 0.0  # no self-hop

    def test_frustrated_hop_rejected(self, rng):
        """An upward hop with insufficient kinetic energy must not happen."""
        fssh = FSSH(np.random.default_rng(0))
        state = SurfaceHoppingState(
            amplitudes=np.array([1.0, 1.0], dtype=complex), active=0
        )
        e = np.array([0.0, 10.0])  # huge gap
        # Orientation chosen so g_{0 -> 1} saturates at 1 (certain attempt).
        nac = np.array([[0.0, -5.0], [5.0, 0.0]], dtype=complex)
        hopped, scale = fssh.attempt_hop(state, e, nac, dt=1.0, kinetic_energy=0.01)
        assert not hopped
        assert scale == 1.0
        assert state.active == 0
        assert any(not ev.accepted for ev in fssh.events)

    def test_downward_hop_speeds_nuclei(self, rng):
        """A downhill hop returns a rescale factor > 1 (energy to nuclei)."""
        found = False
        for seed in range(40):
            fssh = FSSH(np.random.default_rng(seed))
            state = SurfaceHoppingState(
                amplitudes=np.array([1.0, 1.0], dtype=complex), active=1
            )
            e = np.array([-0.5, 0.0])
            nac = np.array([[0.0, 2.0], [-2.0, 0.0]], dtype=complex)
            hopped, scale = fssh.attempt_hop(
                state, e, nac, dt=1.0, kinetic_energy=1.0
            )
            if hopped:
                assert state.active == 0
                assert scale > 1.0
                found = True
                break
        assert found, "no downward hop observed over 40 seeds"

    def test_hop_statistics_match_probability(self):
        """Monte-Carlo hop rate approximates g over many seeds."""
        e = np.array([0.0, 0.0])
        nac = np.array([[0.0, 0.3], [-0.3, 0.0]], dtype=complex)
        hops = 0
        trials = 400
        for seed in range(trials):
            fssh = FSSH(np.random.default_rng(seed))
            state = SurfaceHoppingState(
                amplitudes=np.array([1.0, 0.3], dtype=complex), active=0
            )
            g = fssh.hop_probabilities(state, nac, dt=0.5)
            hopped, _ = fssh.attempt_hop(state, e, nac, dt=0.5, kinetic_energy=10.0)
            hops += int(hopped)
        rate = hops / trials
        assert rate == pytest.approx(float(g.sum()), abs=0.07)


class TestOccupationLayering:
    def test_ground_carrier_no_change(self):
        base = np.array([2.0, 2.0, 0.0, 0.0])
        carriers = [SurfaceHoppingState.on_state(4, 1)]  # HOMO = index 1
        f = occupations_from_states(carriers, 4, base)
        assert np.allclose(f, base)

    def test_excited_carrier_moves_electron(self):
        base = np.array([2.0, 2.0, 0.0, 0.0])
        carriers = [SurfaceHoppingState.on_state(4, 2)]
        f = occupations_from_states(carriers, 4, base)
        assert np.allclose(f, [2.0, 1.0, 1.0, 0.0])

    def test_total_conserved(self):
        base = np.array([2.0, 2.0, 0.0, 0.0])
        carriers = [
            SurfaceHoppingState.on_state(4, 2),
            SurfaceHoppingState.on_state(4, 3),
        ]
        f = occupations_from_states(carriers, 4, base)
        assert f.sum() == pytest.approx(base.sum())

    def test_out_of_range_carrier(self):
        with pytest.raises(ValueError):
            occupations_from_states(
                [SurfaceHoppingState.on_state(5, 4)], 4, np.array([2.0, 0, 0, 0])
            )

    def test_multi_carrier_drains_valence_not_conduction(self):
        """Regression (single-carrier bias): three carriers drain the
        HOMO twice and HOMO-1 once -- the donor is recomputed per
        carrier among the *base* valence orbitals, never an orbital that
        only holds a previously promoted electron."""
        base = np.array([2.0, 2.0, 0.0, 0.0])
        carriers = [
            SurfaceHoppingState.on_state(4, 3),
            SurfaceHoppingState.on_state(4, 3),
            SurfaceHoppingState.on_state(4, 2),
        ]
        f = occupations_from_states(carriers, 4, base)
        assert np.allclose(f, [1.0, 0.0, 1.0, 2.0])
        assert f.sum() == pytest.approx(base.sum())

    def test_carriers_exhausting_valence_raise(self):
        base = np.array([1.0, 1.0, 0.0, 0.0])
        carriers = [SurfaceHoppingState.on_state(4, 3) for _ in range(3)]
        with pytest.raises(ValueError, match="no occupied orbital"):
            occupations_from_states(carriers, 4, base)

    def test_relaxed_carrier_on_homo_is_noop(self):
        """A carrier that relaxed back onto the donor level moves nothing."""
        base = np.array([2.0, 2.0, 0.0, 0.0])
        f = occupations_from_states(
            [SurfaceHoppingState.on_state(4, 3),
             SurfaceHoppingState.on_state(4, 1)], 4, base,
        )
        assert np.allclose(f, [2.0, 1.0, 0.0, 1.0])


class TestDecoherence:
    def test_off_by_default(self, rng):
        fssh = FSSH(rng)
        state = SurfaceHoppingState(
            amplitudes=np.array([0.6, 0.8], dtype=complex), active=0
        )
        before = state.amplitudes.copy()
        fssh.apply_decoherence(state, np.array([0.0, 0.5]), dt=1.0,
                               kinetic_energy=0.1)
        assert np.array_equal(state.amplitudes, before)

    def test_collapses_toward_active(self):
        fssh = FSSH(np.random.default_rng(0), decoherence_c=0.1)
        state = SurfaceHoppingState(
            amplitudes=np.array([0.6, 0.8], dtype=complex), active=0
        )
        p_other_before = state.populations[1]
        for _ in range(50):
            fssh.apply_decoherence(state, np.array([0.0, 0.5]), dt=1.0,
                                   kinetic_energy=0.1)
        assert state.populations[1] < 0.05 * p_other_before
        assert state.populations[0] > 0.95

    def test_norm_preserved(self):
        fssh = FSSH(np.random.default_rng(0), decoherence_c=0.1)
        state = SurfaceHoppingState(
            amplitudes=np.array([0.5, 0.5, 0.5, 0.5], dtype=complex), active=2
        )
        fssh.apply_decoherence(
            state, np.array([0.0, 0.2, 0.4, 0.9]), dt=0.5, kinetic_energy=0.2
        )
        assert np.linalg.norm(state.amplitudes) == pytest.approx(1.0)

    def test_degenerate_states_untouched(self):
        """States degenerate with the active one never decohere."""
        fssh = FSSH(np.random.default_rng(0), decoherence_c=0.1)
        state = SurfaceHoppingState(
            amplitudes=np.array([0.6, 0.8], dtype=complex), active=0
        )
        pops = state.populations.copy()
        fssh.apply_decoherence(state, np.array([0.3, 0.3]), dt=1.0,
                               kinetic_energy=0.1)
        assert np.allclose(state.populations, pops)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FSSH(rng, decoherence_c=-0.1)

    def test_policy_and_decoherence_c_mutually_exclusive(self, rng):
        with pytest.raises(ValueError, match="not both"):
            FSSH(rng, decoherence_c=0.1,
                 policy=HopPolicy(dec_correction="edc"))

    def test_decoherence_c_maps_to_edc_policy(self, rng):
        fssh = FSSH(rng, decoherence_c=0.25)
        assert fssh.policy.dec_correction == "edc"
        assert fssh.policy.edc_parameter == pytest.approx(0.25)
        assert fssh.decoherence_c == pytest.approx(0.25)
        assert FSSH(rng).decoherence_c is None

    def test_slower_nuclei_decohere_faster(self):
        """Smaller kinetic energy -> shorter coherence lifetime factor...
        actually the GP factor (1 + C/Ekin) grows at small Ekin, meaning
        a LONGER lifetime; verify the implemented direction."""
        def run(ekin):
            fssh = FSSH(np.random.default_rng(0), decoherence_c=0.1)
            state = SurfaceHoppingState(
                amplitudes=np.array([0.6, 0.8], dtype=complex), active=0
            )
            fssh.apply_decoherence(state, np.array([0.0, 0.5]), dt=1.0,
                                   kinetic_energy=ekin)
            return state.populations[1]

        assert run(10.0) < run(0.01)  # fast nuclei decohere more per step


class TestHopPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="hop_rescale"):
            HopPolicy(hop_rescale="bogus")
        with pytest.raises(ValueError, match="hop_reject"):
            HopPolicy(hop_reject="bogus")
        with pytest.raises(ValueError, match="dec_correction"):
            HopPolicy(dec_correction="sdm")
        with pytest.raises(ValueError, match="edc_parameter"):
            HopPolicy(edc_parameter=-0.1)

    def test_cpa_constructor(self):
        policy = HopPolicy.cpa()
        assert policy.hop_rescale == "none"
        assert policy.dec_correction is None
        edc = HopPolicy.cpa(dec_correction="edc", edc_parameter=0.2)
        assert edc.dec_correction == "edc"
        assert edc.edc_parameter == pytest.approx(0.2)

    def test_reverse_policy_flips_velocities_on_frustration(self):
        """Frustrated hop under hop_reject='reverse': not hopped, scale
        -1 (momentum reversal, kinetic energy unchanged)."""
        fssh = FSSH(np.random.default_rng(0),
                    policy=HopPolicy(hop_reject="reverse"))
        state = SurfaceHoppingState(
            amplitudes=np.array([1.0, 1.0], dtype=complex), active=0
        )
        e = np.array([0.0, 10.0])
        nac = np.array([[0.0, -5.0], [5.0, 0.0]], dtype=complex)
        hopped, scale = fssh.attempt_hop(state, e, nac, dt=1.0,
                                         kinetic_energy=0.01)
        assert not hopped
        assert scale == -1.0
        assert state.active == 0

    def test_augment_policy_accepts_frustrated_hop_draining_ke(self):
        """hop_rescale='augment' accepts the hop the energy policy would
        frustrate; the rescale factor floors at zero."""
        fssh = FSSH(np.random.default_rng(0),
                    policy=HopPolicy(hop_rescale="augment"))
        state = SurfaceHoppingState(
            amplitudes=np.array([1.0, 1.0], dtype=complex), active=0
        )
        e = np.array([0.0, 10.0])
        nac = np.array([[0.0, -5.0], [5.0, 0.0]], dtype=complex)
        hopped, scale = fssh.attempt_hop(state, e, nac, dt=1.0,
                                         kinetic_energy=0.01)
        assert hopped
        assert scale == 0.0
        assert state.active == 1

    def test_cpa_policy_never_rescales(self):
        fssh = FSSH(np.random.default_rng(0), policy=HopPolicy.cpa())
        state = SurfaceHoppingState(
            amplitudes=np.array([1.0, 1.0], dtype=complex), active=0
        )
        e = np.array([0.0, 10.0])
        nac = np.array([[0.0, -5.0], [5.0, 0.0]], dtype=complex)
        hopped, scale = fssh.attempt_hop(state, e, nac, dt=1.0,
                                         kinetic_energy=0.01)
        assert hopped
        assert scale == 1.0
        assert state.active == 1
