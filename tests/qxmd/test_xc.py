"""LDA exchange-correlation tests (Perdew-Zunger)."""

import numpy as np
import pytest

from repro.qxmd import lda_exchange_correlation, xc_energy_density


class TestExchange:
    def test_zero_density(self):
        v, e = lda_exchange_correlation(np.zeros((4, 4, 4)))
        assert np.all(v == 0.0)
        assert e == 0.0

    def test_negative_density_clamped(self):
        v, _ = lda_exchange_correlation(np.full((2, 2, 2), -1.0))
        assert np.all(np.isfinite(v))

    def test_potential_negative(self):
        rho = np.full((2, 2, 2), 0.5)
        v, _ = lda_exchange_correlation(rho)
        assert np.all(v < 0.0)

    def test_scaling_rho_to_third(self):
        """Slater exchange scales as rho^(1/3); check it dominates at
        high density."""
        v1, _ = lda_exchange_correlation(np.full((1, 1, 1), 1000.0))
        v2, _ = lda_exchange_correlation(np.full((1, 1, 1), 8000.0))
        assert v2[0, 0, 0] / v1[0, 0, 0] == pytest.approx(2.0, rel=0.02)


class TestCorrelation:
    def test_known_value_rs1(self):
        """At rs = 1 the PZ correlation energy is about -0.060 Ha."""
        rho = 3.0 / (4.0 * np.pi)  # rs = 1
        eps = xc_energy_density(np.full((1, 1, 1), rho))
        ex = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0) * rho ** (1.0 / 3.0)
        ec = eps[0, 0, 0] - ex
        assert ec == pytest.approx(-0.060, abs=0.005)

    def test_branch_continuity_at_rs1(self):
        """The PZ parametrization is continuous across rs = 1."""
        rho_hi = 3.0 / (4.0 * np.pi * 0.999 ** 3)
        rho_lo = 3.0 / (4.0 * np.pi * 1.001 ** 3)
        e_hi = xc_energy_density(np.full((1, 1, 1), rho_hi))[0, 0, 0]
        e_lo = xc_energy_density(np.full((1, 1, 1), rho_lo))[0, 0, 0]
        assert e_hi == pytest.approx(e_lo, rel=5e-3)

    def test_energy_integrand_negative(self, rng):
        rho = np.abs(rng.standard_normal((4, 4, 4)))
        _, e = lda_exchange_correlation(rho)
        assert e < 0.0


class TestVariationalConsistency:
    def test_potential_is_functional_derivative(self):
        """v_xc = d(rho eps_xc)/d rho, checked by finite differences."""
        rho0 = 0.37
        eps = 1e-6
        e_plus = float(xc_energy_density(np.array([[[rho0 + eps]]]))[0, 0, 0]) * (rho0 + eps)
        e_minus = float(xc_energy_density(np.array([[[rho0 - eps]]]))[0, 0, 0]) * (rho0 - eps)
        v_num = (e_plus - e_minus) / (2 * eps)
        v, _ = lda_exchange_correlation(np.array([[[rho0]]]))
        assert v[0, 0, 0] == pytest.approx(v_num, rel=1e-4)

    @pytest.mark.parametrize("rho0", [1e-3, 0.05, 0.8, 15.0])
    def test_derivative_across_densities(self, rho0):
        eps = rho0 * 1e-5
        e_plus = float(xc_energy_density(np.array([[[rho0 + eps]]]))[0, 0, 0]) * (rho0 + eps)
        e_minus = float(xc_energy_density(np.array([[[rho0 - eps]]]))[0, 0, 0]) * (rho0 - eps)
        v_num = (e_plus - e_minus) / (2 * eps)
        v, _ = lda_exchange_correlation(np.array([[[rho0]]]))
        assert v[0, 0, 0] == pytest.approx(v_num, rel=1e-3)
