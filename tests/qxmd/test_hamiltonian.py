"""KS Hamiltonian apply tests."""

import numpy as np
import pytest

from repro.lfd import WaveFunctionSet
from repro.pseudo import KBProjectorSet, get_species
from repro.qxmd import KSHamiltonian


@pytest.fixture
def ham(grid8, rng):
    vloc = 0.4 * rng.standard_normal(grid8.shape)
    return KSHamiltonian(grid8, vloc)


class TestApply:
    def test_hermitian(self, ham, grid8, rng):
        f = rng.standard_normal(grid8.shape) + 1j * rng.standard_normal(grid8.shape)
        g = rng.standard_normal(grid8.shape) + 1j * rng.standard_normal(grid8.shape)
        lhs = np.vdot(f, ham.apply(g)) * grid8.dvol
        rhs = np.vdot(ham.apply(f), g) * grid8.dvol
        assert lhs == pytest.approx(rhs)

    def test_soa_matches_per_orbital(self, ham, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 3, rng)
        soa = ham.apply_wf(wf)
        for s in range(3):
            single = ham.apply(wf.orbital(s).astype(complex))
            assert np.abs(soa[..., s] - single).max() < 1e-13

    def test_with_kb_projectors(self, grid16, rng):
        pos = np.array([[4.8, 4.8, 4.8]])
        kb = KBProjectorSet(grid16, pos, [get_species("Ti")])
        ham = KSHamiltonian(grid16, np.zeros(grid16.shape), kb=kb)
        wf = WaveFunctionSet.random(grid16, 2, rng)
        full = ham.apply_wf(wf)
        loc = ham.without_nonlocal().apply_wf(wf)
        assert np.abs(full - loc).max() > 1e-6

    def test_bad_rank(self, ham):
        with pytest.raises(ValueError):
            ham.apply(np.zeros((8, 8)))

    def test_vloc_shape_check(self, grid8):
        with pytest.raises(ValueError):
            KSHamiltonian(grid8, np.zeros((4, 4, 4)))


class TestExpectations:
    def test_expectation_real(self, ham, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 3, rng)
        e = ham.expectation(wf)
        assert e.shape == (3,)
        assert e.dtype == np.float64

    def test_subspace_matrix_hermitian(self, ham, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 4, rng)
        h = ham.subspace_matrix(wf)
        assert np.abs(h - h.conj().T).max() < 1e-12

    def test_expectation_is_subspace_diagonal(self, ham, grid8, rng):
        wf = WaveFunctionSet.random(grid8, 3, rng)
        e = ham.expectation(wf)
        h = ham.subspace_matrix(wf)
        assert np.allclose(e, np.real(np.diag(h)))


class TestDense:
    def test_dense_matches_apply(self, rng):
        from repro.grids import Grid3D

        g = Grid3D.cubic(4, 0.6)
        vloc = rng.standard_normal(g.shape)
        ham = KSHamiltonian(g, vloc)
        mat = ham.dense_matrix()
        assert np.abs(mat - mat.conj().T).max() < 1e-12
        f = rng.standard_normal(g.shape).astype(complex)
        assert np.allclose((mat @ f.ravel()).reshape(g.shape), ham.apply(f))

    def test_dense_refuses_large(self, grid16):
        ham = KSHamiltonian(grid16, np.zeros(grid16.shape))
        with pytest.raises(MemoryError):
            ham.dense_matrix()

    def test_ground_state_below_band_mean(self, rng):
        """The dense spectrum bottom is below any Rayleigh quotient."""
        from repro.grids import Grid3D

        g = Grid3D.cubic(4, 0.7)
        vloc = rng.standard_normal(g.shape)
        ham = KSHamiltonian(g, vloc)
        evals = np.linalg.eigvalsh(ham.dense_matrix())
        wf = WaveFunctionSet.random(g, 2, rng)
        assert np.all(ham.expectation(wf) >= evals[0] - 1e-10)
