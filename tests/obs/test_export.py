"""Phase aggregation and Chrome trace-event export tests."""

import json

import pytest

from repro.obs import (
    PHASES,
    SpanRecord,
    Tracer,
    aggregate_by_name,
    aggregate_by_phase,
    chrome_trace_events,
    load_chrome_trace,
    normalize_phase,
    phase_report,
    write_chrome_trace,
)


def rec(name, category, start, duration, depth=0, thread=1,
        self_time=None, flops=0.0, bytes_moved=0.0):
    return SpanRecord(
        name=name, category=category, start=start, duration=duration,
        depth=depth, thread=thread,
        self_time=duration if self_time is None else self_time,
        flops=flops, bytes_moved=bytes_moved,
    )


class TestPhases:
    def test_normalize_known_and_unknown(self):
        assert normalize_phase("kinetic") == "kinetic"
        assert normalize_phase("checkpoint") == "checkpoint"
        assert normalize_phase("mystery") == "other"

    def test_taxonomy_covers_paper_kernels(self):
        for phase in ("kinetic", "potential", "nonlocal", "hartree",
                      "scf", "comm", "checkpoint"):
            assert phase in PHASES

    def test_aggregate_by_phase(self):
        records = [
            rec("kin_prop", "kinetic", 0.0, 2.0, flops=100.0,
                bytes_moved=50.0),
            rec("kin_prop", "kinetic", 2.0, 2.0, flops=100.0,
                bytes_moved=50.0),
            rec("bcast", "comm", 4.0, 1.0),
            rec("weird", "unknown-layer", 5.0, 1.0),
        ]
        stats = aggregate_by_phase(records)
        assert stats["kinetic"].calls == 2
        assert stats["kinetic"].total_s == pytest.approx(4.0)
        assert stats["kinetic"].flops == 200.0
        assert stats["kinetic"].names == {"kin_prop": 2}
        assert stats["kinetic"].arithmetic_intensity == pytest.approx(2.0)
        assert stats["comm"].arithmetic_intensity == float("inf")
        assert stats["other"].calls == 1

    def test_self_time_vs_inclusive(self):
        """Nested same-phase spans double in total_s but not in self_s."""
        records = [
            rec("inner", "hartree", 0.0, 3.0, depth=1),
            rec("outer", "hartree", 0.0, 4.0, self_time=1.0),
        ]
        stats = aggregate_by_phase(records)
        assert stats["hartree"].total_s == pytest.approx(7.0)
        assert stats["hartree"].self_s == pytest.approx(4.0)

    def test_aggregate_by_name(self):
        records = [
            rec("a", "scf", 0.0, 1.0),
            rec("a", "scf", 1.0, 2.0),
            rec("b", "scf", 3.0, 4.0),
        ]
        stats = aggregate_by_name(records)
        assert stats["a"].calls == 2
        assert stats["a"].total_s == pytest.approx(3.0)
        assert stats["b"].total_s == pytest.approx(4.0)

    def test_phase_report_text(self):
        text = phase_report([rec("kin", "kinetic", 0.0, 1.0,
                                 flops=2e9, bytes_moved=1e9)])
        assert "kinetic" in text
        assert "2.000" in text  # GFLOP column
        assert phase_report([]) == "(no spans recorded)"


class TestChromeExport:
    def test_events_structure(self):
        events = chrome_trace_events([
            rec("kin", "kinetic", 0.5, 0.25, thread=12345,
                flops=10.0, bytes_moved=4.0),
        ])
        meta, ev = events
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "repro-mesh"}
        assert ev["ph"] == "X"
        assert ev["name"] == "kin"
        assert ev["cat"] == "kinetic"
        assert ev["ts"] == pytest.approx(0.5e6)   # microseconds
        assert ev["dur"] == pytest.approx(0.25e6)
        assert ev["args"]["flops"] == 10.0
        assert ev["args"]["bytes"] == 4.0

    def test_thread_renumbering(self):
        events = chrome_trace_events([
            rec("a", "comm", 0.0, 1.0, thread=999888777),
            rec("b", "comm", 1.0, 1.0, thread=111222333),
            rec("c", "comm", 2.0, 1.0, thread=999888777),
        ])
        tids = [e["tid"] for e in events[1:]]
        assert tids == [1, 2, 1]

    def test_write_and_load_roundtrip(self, tmp_path):
        tr = Tracer()
        with tr.span("outer", "md"):
            with tr.span("inner", "kinetic"):
                pass
        path = write_chrome_trace(tmp_path / "sub" / "trace.json", tr)
        assert path.exists()
        doc = load_chrome_trace(path)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["inner", "outer"]
        assert doc["displayTimeUnit"] == "ms"

    def test_write_accepts_record_iterable(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "t.json", [rec("a", "comm", 0.0, 1.0)]
        )
        doc = load_chrome_trace(path)
        assert len(doc["traceEvents"]) == 2

    def test_load_rejects_non_trace(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_chrome_trace(p)

    def test_load_rejects_malformed_event(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        with pytest.raises(ValueError):
            load_chrome_trace(p)

    def test_load_rejects_complete_event_without_dur(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(
            {"traceEvents": [{"ph": "X", "pid": 1, "ts": 0.0}]}
        ))
        with pytest.raises(ValueError):
            load_chrome_trace(p)
