"""End-to-end tests of the instrumented hot paths.

Each test installs a real tracer via :func:`repro.obs.tracing`, drives
the actual simulation code, and checks that the expected spans appear
with the right paper-taxonomy categories and flop/byte charges.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.grids import Grid3D
from repro.lfd import (
    NonlocalCorrector,
    PropagatorConfig,
    QDPropagator,
    WaveFunctionSet,
    kinetic_step,
    potential_phase_step,
)
from repro.obs import aggregate_by_phase, load_chrome_trace, tracing
from repro.parallel import SimComm


def small_wf(norb=3, n=6, seed=0):
    grid = Grid3D.cubic(n, 0.5)
    wf = WaveFunctionSet.random(grid, norb, np.random.default_rng(seed))
    vloc = 0.2 * np.random.default_rng(seed + 1).standard_normal(grid.shape)
    return grid, wf, vloc


class TestKernelSpans:
    def test_kinetic_step_span(self):
        _, wf, _ = small_wf()
        with tracing() as tr:
            kinetic_step(wf, 0.02)
        (r,) = tr.records
        assert r.name == "kin_prop"
        assert r.category == "kinetic"
        # 9 passes x 14 flops x points x orbitals.
        pts = wf.grid.npoints * wf.norb
        assert r.flops == pytest.approx(9 * 14 * pts)
        assert r.bytes_moved == pytest.approx(9 * 3 * wf.psi.itemsize * pts)

    def test_potential_step_span(self):
        _, wf, vloc = small_wf()
        with tracing() as tr:
            potential_phase_step(wf, vloc, 0.01)
        (r,) = tr.records
        assert r.name == "pot_prop"
        assert r.category == "potential"
        assert r.flops > 0

    def test_nonlocal_span_matches_cost_model(self):
        grid, wf, _ = small_wf()
        ref = WaveFunctionSet.random(grid, 2, np.random.default_rng(5))
        corr = NonlocalCorrector(ref, 0.12)
        with tracing() as tr:
            corr.apply(wf, 0.02)
        (r,) = tr.records
        assert r.name == "nonlocal_corr"
        assert r.category == "nonlocal"
        assert r.flops == pytest.approx(
            corr.flop_count(wf.norb, grid.npoints)
        )
        assert r.bytes_moved == pytest.approx(
            corr.byte_count(wf.norb, grid.npoints, wf.psi.itemsize)
        )

    def test_propagator_step_hierarchy(self):
        _, wf, vloc = small_wf()
        prop = QDPropagator(wf, vloc, PropagatorConfig(dt=0.02))
        with tracing() as tr:
            prop.run(2)
        names = [r.name for r in tr.records]
        assert names.count("qd.step") == 2
        assert names.count("qd.run") == 1
        assert names.count("kin_prop") == 2
        # Kernels nest under qd.step, which nests under qd.run.
        kin = [r for r in tr.records if r.name == "kin_prop"][0]
        step = [r for r in tr.records if r.name == "qd.step"][0]
        run = [r for r in tr.records if r.name == "qd.run"][0]
        assert run.depth == 0 and step.depth == 1 and kin.depth == 2
        # The run span's duration contains everything beneath it.
        assert run.duration >= step.duration >= kin.duration

    def test_comm_spans(self):
        comm = SimComm(nranks=4)
        with tracing() as tr:
            comm.bcast(np.ones(8), root=0)
            comm.allreduce([np.ones(8) for _ in range(4)])
            comm.barrier()
        names = [r.name for r in tr.records]
        assert names == ["comm.bcast", "comm.allreduce", "comm.barrier"]
        assert all(r.category == "comm" for r in tr.records)
        assert all(r.args == {"nranks": 4} for r in tr.records)


class TestCliTrace:
    def test_run_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(["run", "--grid", "12", "--steps", "1", "--n-qd", "3",
                     "--trace-out", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "per-phase trace breakdown" in out

        doc = load_chrome_trace(trace)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events, "trace must contain complete events"
        cats = {e["cat"] for e in events}
        # The coupled run exercises the whole taxonomy stack.
        for phase in ("kinetic", "potential", "hartree", "scf", "md",
                      "forces", "lfd"):
            assert phase in cats, f"missing phase {phase}"
        # Events are well-formed for chrome://tracing.
        for e in events:
            assert e["dur"] >= 0.0
            assert isinstance(e["tid"], int)

    def test_trace_off_leaves_no_file(self, tmp_path, capsys):
        code = main(["run", "--grid", "12", "--steps", "1", "--n-qd", "3"])
        assert code == 0
        assert "per-phase" not in capsys.readouterr().out

    def test_supervised_run_records_checkpoint_spans(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main([
            "run", "--grid", "12", "--steps", "2", "--n-qd", "3",
            "--checkpoint-every", "1",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--trace-out", str(trace),
        ])
        assert code == 0
        doc = load_chrome_trace(trace)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert "checkpoint.write" in names
        assert "supervisor.segment" in names

    def test_phase_self_times_partition_wall_time(self):
        """Per-phase self times sum to the root spans' wall time exactly."""
        with tracing() as tr:
            main(["run", "--grid", "12", "--steps", "1", "--n-qd", "3"])
        stats = aggregate_by_phase(tr.records)
        total_self = sum(s.self_s for s in stats.values())
        total_root = sum(r.duration for r in tr.records if r.depth == 0)
        assert total_self == pytest.approx(total_root, rel=1e-9)
