"""BENCH_*.json telemetry schema and regression-gate tests."""

import json

import pytest

from benchmarks.bench_common import (
    BENCH_SCHEMA,
    bench_json_path,
    load_bench_json,
    write_bench_json,
)
from benchmarks.regression import compare_bench, main, render_verdicts


def kernels(**overrides):
    base = {
        "kin": {"time_s": 1.0, "kind": "measured"},
        "nl": {"time_s": 0.5, "kind": "measured"},
        "gpu": {"time_s": 0.001, "kind": "modeled"},
    }
    base.update(overrides)
    return base


def write_doc(tmp_path, name, ks):
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "kernels": ks,
        "total_s": sum(e["time_s"] for e in ks.values()),
    }
    p = tmp_path / f"BENCH_{name}.json"
    p.write_text(json.dumps(doc))
    return p


class TestBenchJson:
    def test_roundtrip_and_total_is_sum(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "benchmarks.bench_common.REPORT_DIR", tmp_path
        )
        path = write_bench_json(
            "demo", kernels(), workload={"ngrid": 1000},
            extra={"note": "x"},
        )
        assert path == tmp_path / "BENCH_demo.json"
        doc = load_bench_json(path)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["workload"] == {"ngrid": 1000}
        assert doc["extra"] == {"note": "x"}
        assert doc["total_s"] == pytest.approx(
            sum(e["time_s"] for e in doc["kernels"].values())
        )

    def test_paper_ratio_filled_in(self, tmp_path, monkeypatch):
        monkeypatch.setattr("benchmarks.bench_common.REPORT_DIR", tmp_path)
        path = write_bench_json("demo", {
            "kin": {"time_s": 2.0, "kind": "measured", "paper_time_s": 8.0},
        })
        doc = load_bench_json(path)
        assert doc["kernels"]["kin"]["vs_paper"] == pytest.approx(0.25)

    def test_rejects_missing_fields(self, tmp_path, monkeypatch):
        monkeypatch.setattr("benchmarks.bench_common.REPORT_DIR", tmp_path)
        with pytest.raises(ValueError):
            write_bench_json("bad", {"k": {"time_s": 1.0}})
        with pytest.raises(ValueError):
            write_bench_json("bad", {"k": {"time_s": 1.0, "kind": "guess"}})

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError):
            load_bench_json(p)
        p.write_text(json.dumps(
            {"schema": BENCH_SCHEMA, "name": "x", "total_s": 0.0,
             "kernels": {"k": {"time_s": 1.0, "kind": "nonsense"}}}
        ))
        with pytest.raises(ValueError):
            load_bench_json(p)

    def test_bench_json_path_naming(self):
        assert bench_json_path("t1").name == "BENCH_t1.json"


class TestCompareBench:
    def test_self_comparison_passes(self, tmp_path):
        p = write_doc(tmp_path, "a", kernels())
        verdicts = compare_bench(p, p)
        assert not any(v.failed for v in verdicts)

    def test_2x_measured_slowdown_fails(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        slow = write_doc(tmp_path, "slow", kernels(
            kin={"time_s": 2.0, "kind": "measured"},
        ))
        verdicts = compare_bench(base, slow)
        bad = [v for v in verdicts if v.failed]
        assert [v.kernel for v in bad] == ["kin"]
        assert "2.00x" in bad[0].detail

    def test_speedup_never_fails(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        fast = write_doc(tmp_path, "fast", kernels(
            kin={"time_s": 0.01, "kind": "measured"},
        ))
        assert not any(v.failed for v in compare_bench(base, fast))

    def test_modeled_drift_fails_tightly(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        drift = write_doc(tmp_path, "drift", kernels(
            gpu={"time_s": 0.0010001, "kind": "modeled"},
        ))
        verdicts = compare_bench(base, drift)
        bad = [v for v in verdicts if v.failed]
        assert [v.kernel for v in bad] == ["gpu"]
        # The same drift on a measured kernel would pass (1.0001x < 1.5x).

    def test_noise_floor_skips_tiny_measured(self, tmp_path):
        base = write_doc(tmp_path, "base", {
            "tiny": {"time_s": 1e-6, "kind": "measured"},
        })
        cur = write_doc(tmp_path, "cur", {
            "tiny": {"time_s": 5e-5, "kind": "measured"},  # 50x but tiny
        })
        (v,) = compare_bench(base, cur)
        assert v.status == "skipped"

    def test_missing_kernel_fails_unless_allowed(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        cur = write_doc(tmp_path, "cur", {
            "kin": {"time_s": 1.0, "kind": "measured"},
        })
        assert any(v.failed for v in compare_bench(base, cur))
        assert not any(
            v.failed for v in compare_bench(base, cur, allow_missing=True)
        )

    def test_new_kernel_reported_but_passes(self, tmp_path):
        base = write_doc(tmp_path, "base", {
            "kin": {"time_s": 1.0, "kind": "measured"},
        })
        cur = write_doc(tmp_path, "cur", kernels())
        verdicts = compare_bench(base, cur)
        assert not any(v.failed for v in verdicts)
        assert {v.status for v in verdicts} >= {"ok", "new"}

    def test_custom_ratio(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        slow = write_doc(tmp_path, "slow", kernels(
            kin={"time_s": 2.0, "kind": "measured"},
        ))
        assert not any(
            v.failed for v in compare_bench(base, slow, max_ratio=3.0)
        )

    def test_render_mentions_failures(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        slow = write_doc(tmp_path, "slow", kernels(
            kin={"time_s": 2.0, "kind": "measured"},
        ))
        text = render_verdicts(compare_bench(base, slow))
        assert "FAIL" in text and "kin" in text
        assert render_verdicts([]) == "(no kernels compared)"


class TestGateEdgeCases:
    def test_document_without_kernels_mapping_raises(self, tmp_path):
        good = write_doc(tmp_path, "good", kernels())
        with pytest.raises(ValueError, match="kernels"):
            compare_bench({"schema": BENCH_SCHEMA, "name": "x"}, good)
        with pytest.raises(ValueError, match="kernels"):
            compare_bench(good, {"kernels": "not-a-dict"})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_baseline_fails_loudly(self, tmp_path, bad):
        base = write_doc(tmp_path, "base", kernels())
        base_doc = json.loads(base.read_text())
        base_doc["kernels"]["kin"]["time_s"] = bad
        (v,) = [x for x in compare_bench(base_doc, base) if x.kernel == "kin"]
        assert v.status == "regressed"
        assert "corrupt" in v.detail

    def test_nonfinite_current_fails_loudly(self, tmp_path):
        base = write_doc(tmp_path, "base", kernels())
        cur_doc = json.loads(base.read_text())
        cur_doc["kernels"]["gpu"]["time_s"] = float("nan")
        (v,) = [x for x in compare_bench(base, cur_doc) if x.kernel == "gpu"]
        # NaN on a modeled kernel must not sail past the drift check.
        assert v.status == "regressed"

    def test_zero_baseline_with_slower_current_regresses(self, tmp_path):
        base = write_doc(tmp_path, "base", {
            "k": {"time_s": 0.0, "kind": "measured"},
        })
        cur = write_doc(tmp_path, "cur", {
            "k": {"time_s": 1.0, "kind": "measured"},
        })
        (v,) = compare_bench(base, cur)
        assert v.status == "regressed"

    def test_zero_baseline_zero_current_below_noise_floor(self, tmp_path):
        base = write_doc(tmp_path, "base", {
            "k": {"time_s": 0.0, "kind": "measured"},
        })
        (v,) = compare_bench(base, base)
        assert v.status == "skipped"

    def test_kind_falls_back_to_baseline_entry(self, tmp_path):
        # Current entry omits "kind": the baseline's "modeled" applies,
        # so a 10% drift fails the tight modeled gate even though it
        # would pass the 1.5x measured ratio.
        base = write_doc(tmp_path, "base", {
            "gpu": {"time_s": 1.0, "kind": "modeled"},
        })
        cur_doc = json.loads(base.read_text())
        del cur_doc["kernels"]["gpu"]["kind"]
        cur_doc["kernels"]["gpu"]["time_s"] = 1.1
        (v,) = compare_bench(base, cur_doc)
        assert v.kind == "modeled"
        assert v.status == "regressed"

    def test_measured_uses_ratio_not_modeled_rtol(self, tmp_path):
        # The same 10% drift on a measured kernel is fine (< 1.5x).
        base = write_doc(tmp_path, "base", {
            "kin": {"time_s": 1.0, "kind": "measured"},
        })
        cur = write_doc(tmp_path, "cur", {
            "kin": {"time_s": 1.1, "kind": "measured"},
        })
        (v,) = compare_bench(base, cur)
        assert v.status == "ok"


class TestCliGate:
    def test_exit_codes(self, tmp_path, capsys):
        base = write_doc(tmp_path, "base", kernels())
        slow = write_doc(tmp_path, "slow", kernels(
            kin={"time_s": 2.0, "kind": "measured"},
        ))
        assert main([str(base), str(base)]) == 0
        assert "within tolerance" in capsys.readouterr().out
        assert main([str(base), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main([str(base), str(slow), "--max-ratio", "3"]) == 0
