"""Tracing/observability tests."""
