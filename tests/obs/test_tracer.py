"""Tracer core tests: nesting, self-time, charging, thread safety."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    trace_charge,
    trace_span,
    tracing,
)


class FakeClock:
    """Deterministic clock advancing only when told to."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestSpans:
    def test_single_span_duration(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("work", "kinetic"):
            clock.advance(2.0)
        (r,) = tr.records
        assert r.name == "work"
        assert r.category == "kinetic"
        assert r.duration == pytest.approx(2.0)
        assert r.self_time == pytest.approx(2.0)
        assert r.depth == 0
        assert r.start == pytest.approx(0.0)

    def test_nested_self_time_partitions(self):
        """Parent self-time excludes child time; totals partition exactly."""
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            clock.advance(1.0)
            with tr.span("inner"):
                clock.advance(3.0)
            clock.advance(0.5)
        by_name = {r.name: r for r in tr.records}
        assert by_name["inner"].duration == pytest.approx(3.0)
        assert by_name["inner"].depth == 1
        assert by_name["outer"].duration == pytest.approx(4.5)
        assert by_name["outer"].self_time == pytest.approx(1.5)
        assert sum(r.self_time for r in tr.records) == pytest.approx(4.5)

    def test_sibling_children_both_subtracted(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            with tr.span("a"):
                clock.advance(1.0)
            with tr.span("b"):
                clock.advance(2.0)
        outer = [r for r in tr.records if r.name == "outer"][0]
        assert outer.self_time == pytest.approx(0.0)
        assert outer.duration == pytest.approx(3.0)

    def test_children_recorded_before_parent(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [r.name for r in tr.records] == ["inner", "outer"]

    def test_exception_still_records_and_unwinds(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    clock.advance(1.0)
                    raise RuntimeError("kernel blew up")
        assert [r.name for r in tr.records] == ["inner", "outer"]
        assert tr.depth == 0
        # A fresh span after the raise nests at depth 0 again.
        with tr.span("after"):
            pass
        assert tr.records[-1].depth == 0

    def test_total_and_calls(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(3):
            with tr.span("k"):
                clock.advance(0.5)
        assert tr.calls("k") == 3
        assert tr.total("k") == pytest.approx(1.5)
        assert tr.calls("absent") == 0
        assert tr.total("absent") == 0.0

    def test_span_args_recorded(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("scf.cycle", "scf", cycle=3):
            pass
        assert tr.records[0].args == {"cycle": 3}


class TestCharging:
    def test_charge_inside_span(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("kin", "kinetic"):
            tr.charge(100.0, 40.0)
            tr.charge(50.0, 10.0)
        (r,) = tr.records
        assert r.flops == 150.0
        assert r.bytes_moved == 50.0
        assert tr.counters.flops["kin"] == 150.0
        assert tr.counters.arithmetic_intensity("kin") == pytest.approx(3.0)

    def test_charge_goes_to_innermost(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer"):
            with tr.span("inner"):
                tr.charge(7.0, 3.0)
        by_name = {r.name: r for r in tr.records}
        assert by_name["inner"].flops == 7.0
        assert by_name["outer"].flops == 0.0

    def test_charge_outside_any_span(self):
        tr = Tracer(clock=FakeClock())
        tr.charge(5.0, 2.0)
        assert tr.counters.flops == {"untraced": 5.0}
        assert tr.records == []


class TestThreads:
    def test_threads_keep_separate_stacks(self):
        tr = Tracer()
        errors = []

        def worker(name):
            try:
                with tr.span(name, "comm"):
                    with tr.span(f"{name}.child", "comm"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        with tr.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(tr.records) == 9
        # Each worker's child nests under its own root, not under "main".
        for i in range(4):
            child = [r for r in tr.records if r.name == f"t{i}.child"][0]
            root = [r for r in tr.records if r.name == f"t{i}"][0]
            assert child.depth == 1
            assert root.depth == 0
            assert child.thread == root.thread


class TestGlobalTracer:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer() is NULL_TRACER

    def test_null_span_is_shared_noop(self):
        s1 = NULL_TRACER.span("a")
        s2 = NULL_TRACER.span("b", "kinetic", arg=1)
        assert s1 is s2
        with s1:
            pass
        NULL_TRACER.charge(1e9, 1e9)
        assert NULL_TRACER.enabled is False

    def test_set_and_restore(self):
        tr = Tracer()
        assert set_tracer(tr) is tr
        try:
            assert get_tracer() is tr
            with trace_span("x", "kinetic"):
                trace_charge(2.0, 1.0)
            assert tr.calls("x") == 1
            assert tr.counters.flops["x"] == 2.0
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_trace_span_noop_when_disabled(self):
        with trace_span("ignored", "kinetic"):
            trace_charge(1.0, 1.0)
        assert get_tracer() is NULL_TRACER

    def test_tracing_context_restores_previous(self):
        outer = Tracer()
        set_tracer(outer)
        try:
            with tracing() as inner:
                assert get_tracer() is inner
                assert inner is not outer
                with trace_span("in"):
                    pass
            assert get_tracer() is outer
            assert inner.calls("in") == 1
            assert outer.calls("in") == 0
        finally:
            set_tracer(None)

    def test_tracing_restores_on_exception(self):
        with pytest.raises(ValueError):
            with tracing():
                raise ValueError
        assert get_tracer() is NULL_TRACER
