"""1-D vector-potential FDTD tests."""

import numpy as np
import pytest

from repro.constants import C_LIGHT
from repro.maxwell import GaussianPulse, VectorPotentialFDTD


def gaussian_initial(solver, center, width):
    z = np.arange(solver.nz)
    solver.a[:] = np.exp(-((z - center) ** 2) / (2 * width ** 2))
    solver.a_prev[:] = solver.a


class TestStability:
    def test_cfl_enforced(self):
        with pytest.raises(ValueError):
            VectorPotentialFDTD(nz=100, dz=1.0, dt=1.0)  # c dt >> dz

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorPotentialFDTD(nz=2, dz=1.0, dt=1e-4)
        with pytest.raises(ValueError):
            VectorPotentialFDTD(nz=100, dz=10.0, dt=0.05, polarization_axis=3)


class TestPropagation:
    def test_pulse_splits_and_propagates(self):
        """A static initial hump splits into left/right movers at speed c."""
        solver = VectorPotentialFDTD(nz=400, dz=10.0, dt=0.05)
        gaussian_initial(solver, 200, 8.0)
        nsteps = 100
        for _ in range(nsteps):
            solver.step()
        # Expect peaks displaced by ~ c t / dz mesh points either way.
        shift = C_LIGHT * nsteps * 0.05 / 10.0
        peaks = np.argsort(solver.a)[-2:]
        expected = {(200 - shift) % 400, (200 + shift) % 400}
        for e in expected:
            assert min(abs(p - e) for p in peaks) < 4.0
        # Each mover carries roughly half the initial amplitude.
        assert solver.a.max() == pytest.approx(0.5, abs=0.1)

    def test_energy_approximately_conserved(self):
        solver = VectorPotentialFDTD(nz=200, dz=10.0, dt=0.05)
        gaussian_initial(solver, 100, 6.0)
        for _ in range(10):
            solver.step()
        e0 = solver.energy()
        for _ in range(300):
            solver.step()
        assert solver.energy() == pytest.approx(e0, rel=0.1)

    def test_current_source_creates_field(self):
        solver = VectorPotentialFDTD(nz=100, dz=10.0, dt=0.05)
        j = np.zeros(100)
        j[50] = 1.0
        for _ in range(20):
            solver.step(current=j)
        assert np.abs(solver.a).max() > 0.0
        assert np.abs(solver.a[50]) == pytest.approx(np.abs(solver.a).max())

    def test_boundary_source_injects(self):
        pulse = GaussianPulse(e0=0.01, omega=0.5, t0=5.0, sigma=2.0)
        solver = VectorPotentialFDTD(nz=100, dz=10.0, dt=0.05, source=pulse)
        for _ in range(100):
            solver.step()
        assert np.abs(solver.a).max() > 0.0

    def test_current_shape_check(self):
        solver = VectorPotentialFDTD(nz=100, dz=10.0, dt=0.05)
        with pytest.raises(ValueError):
            solver.step(current=np.zeros(50))


class TestSampling:
    def test_sample_interpolates(self):
        solver = VectorPotentialFDTD(nz=10, dz=1.0, dt=1e-3)
        solver.a[:] = np.arange(10, dtype=float)
        assert solver.sample(3.5) == pytest.approx(3.5)

    def test_sample_periodic(self):
        solver = VectorPotentialFDTD(nz=10, dz=1.0, dt=1e-3)
        solver.a[:] = np.arange(10, dtype=float)
        assert solver.sample(10.0) == pytest.approx(solver.a[0])

    def test_sample_vector_axis(self):
        solver = VectorPotentialFDTD(nz=10, dz=1.0, dt=1e-3, polarization_axis=1)
        solver.a[:] = 2.0
        v = solver.sample_vector(0.0)
        assert v[1] == 2.0 and v[0] == 0.0 and v[2] == 0.0


class TestPlasmaResponse:
    def test_free_carrier_current_gives_bounded_oscillation(self):
        """j = -omega_p^2/(4 pi c) A yields a stable plasma oscillation."""
        solver = VectorPotentialFDTD(nz=64, dz=10.0, dt=0.05)
        solver.a[:] = 1.0
        solver.a_prev[:] = 1.0
        omega_p2 = 4.0
        amps = []
        for _ in range(2000):
            j = -omega_p2 / (4.0 * np.pi * C_LIGHT) * solver.a
            solver.step(current=j)
            amps.append(np.abs(solver.a).max())
        a_trace = np.array(amps)
        # Bounded (no anti-damping blow-up)...
        assert a_trace.max() < 1.5
        # ...and genuinely oscillating (amplitude passes through near-zero).
        assert a_trace.min() < 0.2
