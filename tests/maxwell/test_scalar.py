"""Scalar-potential auxiliary-PDE solver tests."""

import numpy as np
import pytest

from repro.grids import Grid3D
from repro.maxwell import ScalarPotentialSolver
from repro.multigrid import solve_poisson_fft


@pytest.fixture
def grid() -> Grid3D:
    return Grid3D.cubic(12, 0.5)


class TestValidation:
    def test_cfl(self, grid):
        with pytest.raises(ValueError):
            ScalarPotentialSolver(grid, cs=1.0, dt=10.0)

    def test_bad_cs(self, grid):
        with pytest.raises(ValueError):
            ScalarPotentialSolver(grid, cs=0.0)

    def test_density_shape(self, grid):
        s = ScalarPotentialSolver(grid)
        with pytest.raises(ValueError):
            s.step(np.zeros((4, 4, 4)))


class TestRelaxation:
    def test_relaxes_to_poisson_solution(self, grid, rng):
        rho = rng.standard_normal(grid.shape)
        rho -= rho.mean()
        solver = ScalarPotentialSolver(grid)
        steps = solver.relax(rho, tol=1e-6)
        ref = solve_poisson_fft(rho, grid)
        assert np.abs(solver.phi - ref).max() < 1e-4 * np.abs(ref).max()
        assert steps > 0

    def test_residual_decreases(self, grid, rng):
        rho = rng.standard_normal(grid.shape)
        solver = ScalarPotentialSolver(grid)
        r0 = solver.residual_norm(rho)
        for _ in range(200):
            solver.step(rho)
        assert solver.residual_norm(rho) < r0

    def test_mean_free_solution(self, grid, rng):
        rho = rng.standard_normal(grid.shape)
        solver = ScalarPotentialSolver(grid)
        for _ in range(50):
            solver.step(rho)
        assert abs(solver.phi.mean()) < 1e-12

    def test_zero_density_stays_zero(self, grid):
        solver = ScalarPotentialSolver(grid)
        for _ in range(10):
            solver.step(np.zeros(grid.shape))
        assert np.all(solver.phi == 0.0)

    def test_relax_raises_on_no_convergence(self, grid, rng):
        rho = rng.standard_normal(grid.shape)
        solver = ScalarPotentialSolver(grid, gamma=0.0)  # undamped: never settles
        with pytest.raises(RuntimeError):
            solver.relax(rho, tol=1e-14, max_steps=50)
