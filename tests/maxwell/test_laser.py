"""Laser pulse tests."""

import numpy as np
import pytest

from repro.constants import C_LIGHT
from repro.maxwell import Cos2Pulse, CWField, GaussianPulse
from repro.maxwell.laser import DeltaKick


class TestGaussianPulse:
    def test_peak_vector_potential(self):
        p = GaussianPulse(e0=0.01, omega=0.5, t0=0.0, sigma=10.0)
        assert p.a0 == pytest.approx(C_LIGHT * 0.01 / 0.5)
        a = p.vector_potential(0.0)
        assert a[0] == pytest.approx(p.a0)

    def test_envelope_decays(self):
        p = GaussianPulse(e0=0.01, omega=0.5, t0=50.0, sigma=5.0)
        assert p.envelope(50.0) == 1.0
        assert p.envelope(80.0) < 1e-7

    def test_polarization_normalized(self):
        p = GaussianPulse(e0=0.01, omega=0.5, polarization=(3.0, 4.0, 0.0))
        assert np.allclose(p.polarization, (0.6, 0.8, 0.0))

    def test_electric_field_amplitude(self):
        """Near the envelope peak, |E| ~ e0 at field maxima."""
        p = GaussianPulse(e0=0.02, omega=1.0, t0=100.0, sigma=50.0)
        ts = np.linspace(90, 110, 500)
        emax = max(abs(p.electric_field(t)[0]) for t in ts)
        assert emax == pytest.approx(0.02, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianPulse(e0=0.01, omega=0.0)
        with pytest.raises(ValueError):
            GaussianPulse(e0=0.01, omega=0.5, sigma=-1.0)
        with pytest.raises(ValueError):
            GaussianPulse(e0=0.01, omega=0.5, polarization=(0, 0, 0))


class TestCos2Pulse:
    def test_compact_support(self):
        p = Cos2Pulse(e0=0.01, omega=0.5, duration=100.0)
        assert p.envelope(-1.0) == 0.0
        assert p.envelope(101.0) == 0.0
        assert p.envelope(50.0) == pytest.approx(1.0)

    def test_fluence_scales_with_e0_squared(self):
        p1 = Cos2Pulse(e0=0.01, omega=1.0, duration=50.0)
        p2 = Cos2Pulse(e0=0.02, omega=1.0, duration=50.0)
        assert p2.fluence(50.0) == pytest.approx(4 * p1.fluence(50.0), rel=1e-6)


class TestCWField:
    def test_constant_envelope(self):
        p = CWField(e0=0.01, omega=0.3)
        assert p.envelope(0.0) == p.envelope(1000.0) == 1.0


class TestDeltaKick:
    def test_step_in_vector_potential(self):
        k = DeltaKick(k0=0.001)
        assert np.all(k.vector_potential(-0.1) == 0.0)
        assert k.vector_potential(0.0)[0] == pytest.approx(-C_LIGHT * 0.001)

    def test_polarization_validation(self):
        with pytest.raises(ValueError):
            DeltaKick(k0=0.001, polarization=(0, 0, 0))
