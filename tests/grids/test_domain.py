"""DC domain decomposition tests: tiling, gather/scatter, atom assignment."""

import numpy as np
import pytest

from repro.grids import Grid3D, DomainDecomposition


@pytest.fixture
def grid() -> Grid3D:
    return Grid3D((12, 12, 12), (0.5, 0.5, 0.5))


@pytest.fixture
def decomp(grid) -> DomainDecomposition:
    return DomainDecomposition(grid, (2, 2, 1), buffer_width=2)


class TestConstruction:
    def test_domain_count(self, decomp):
        assert len(decomp) == 4
        assert decomp.core_shape == (6, 6, 12)

    def test_local_grid_shape(self, decomp):
        for dom in decomp:
            assert dom.local_shape == (10, 10, 16)

    def test_indivisible_raises(self, grid):
        with pytest.raises(ValueError):
            DomainDecomposition(grid, (5, 1, 1))

    def test_buffer_too_large_raises(self, grid):
        with pytest.raises(ValueError):
            DomainDecomposition(grid, (2, 2, 1), buffer_width=6)

    def test_negative_buffer_raises(self, grid):
        with pytest.raises(ValueError):
            DomainDecomposition(grid, (2, 2, 1), buffer_width=-1)

    def test_even_local_grids_check(self, grid):
        assert DomainDecomposition(grid, (2, 2, 1), buffer_width=2).check_local_grids_even()
        # An odd core (12/4 = 3) makes the local grids odd for any buffer.
        assert not DomainDecomposition(grid, (4, 2, 1), buffer_width=1).check_local_grids_even()


class TestGatherScatter:
    def test_gather_core_matches_global(self, decomp, grid, rng):
        f = rng.standard_normal(grid.shape)
        dom = decomp[0]
        local = dom.gather(f)
        core = local[dom.core_slices_local]
        sl = tuple(slice(s, s + c) for s, c in zip(dom.core_start, dom.core_shape))
        assert np.array_equal(core, f[sl])

    def test_gather_periodic_wrap(self, grid, rng):
        decomp = DomainDecomposition(grid, (2, 2, 1), buffer_width=2)
        f = rng.standard_normal(grid.shape)
        dom = decomp[0]  # core starts at 0 -> buffer wraps to the far side
        local = dom.gather(f)
        assert local[0, 2, 2] == f[-2, 0, 0]

    def test_gather_shape_mismatch(self, decomp):
        with pytest.raises(ValueError):
            decomp[0].gather(np.zeros((4, 4, 4)))

    def test_recombine_partition_of_unity(self, decomp, grid, rng):
        f = rng.standard_normal(grid.shape)
        locals_ = [dom.gather(f) for dom in decomp]
        rebuilt = decomp.recombine(locals_)
        assert np.allclose(rebuilt, f)

    def test_recombine_wrong_count(self, decomp, grid):
        with pytest.raises(ValueError):
            decomp.recombine([grid.zeros()])

    def test_scatter_core_writes_only_core(self, decomp, grid):
        dom = decomp[1]
        out = grid.zeros()
        local = np.ones(dom.local_shape)
        dom.scatter_core(local, out)
        assert out.sum() == pytest.approx(np.prod(dom.core_shape))

    def test_add_core_accumulates(self, decomp, grid):
        dom = decomp[0]
        out = grid.zeros()
        local = np.ones(dom.local_shape)
        dom.add_core(local, out)
        dom.add_core(local, out)
        sl = tuple(slice(s, s + c) for s, c in zip(dom.core_start, dom.core_shape))
        assert np.all(out[sl] == 2.0)


class TestAtoms:
    def test_every_atom_assigned_once(self, decomp, rng):
        pos = rng.uniform(0.0, 6.0, size=(20, 3))
        owners = decomp.assign_atoms(pos)
        counts = sum(len(o) for o in owners)
        assert counts == 20

    def test_assignment_matches_containment(self, decomp, rng):
        pos = rng.uniform(0.0, 6.0, size=(10, 3))
        owners = decomp.assign_atoms(pos)
        for alpha, idx_list in enumerate(owners):
            for i in idx_list:
                assert decomp[alpha].contains_position(pos[i])

    def test_wrapped_atom_assignment(self, decomp):
        owners = decomp.assign_atoms(np.array([[-0.1, 0.1, 0.1]]))
        # x = -0.1 wraps to 5.9 -> second x-slab (ix = 1 -> alphas 2 and 3).
        assert len(owners[2]) + len(owners[3]) == 1

    def test_bad_positions_shape(self, decomp):
        with pytest.raises(ValueError):
            decomp.assign_atoms(np.zeros((3, 2)))


class TestGeometry:
    def test_core_center(self, decomp):
        dom = decomp[0]
        assert np.allclose(dom.core_center(), [1.5, 1.5, 3.0])

    def test_local_grid_origin_offset(self, decomp, grid):
        dom = decomp[0]
        # Buffer of 2 points shifts the origin by -2 h.
        assert dom.local_grid.origin[0] == pytest.approx(-1.0)

    def test_domains_list_copy(self, decomp):
        lst = decomp.domains
        lst.clear()
        assert len(decomp) == 4
