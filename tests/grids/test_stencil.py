"""Kinetic-stencil and pair-splitting tests: unitarity, accuracy, Peierls."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.grids.stencil import (
    PairSplitCoefficients,
    kinetic_diagonal,
    kinetic_matrix_1d,
    kinetic_offdiagonal,
    pair_split_coefficients,
    pair_split_matrix,
    strang_passes,
)


class TestKineticMatrix:
    def test_diagonal_offdiagonal_relation(self):
        assert kinetic_offdiagonal(0.5) == pytest.approx(-0.5 * kinetic_diagonal(0.5))
        with pytest.raises(ValueError):
            kinetic_diagonal(0.0)

    def test_matrix_hermitian(self):
        t = kinetic_matrix_1d(8, 0.5, theta=0.37)
        assert np.allclose(t, t.conj().T)

    def test_plane_wave_eigenvalue(self):
        """exp(ikx) diagonalizes the periodic stencil with 2(1-cos k)/2h^2."""
        n, h = 16, 0.4
        t = kinetic_matrix_1d(n, h)
        k = 2.0 * np.pi * 3 / n  # mode index 3
        psi = np.exp(1j * k * np.arange(n))
        lam = (1.0 - np.cos(k)) / (h * h)
        assert np.allclose(t @ psi, lam * psi)

    def test_matrix_small_n_raises(self):
        with pytest.raises(ValueError):
            kinetic_matrix_1d(1, 0.5)


class TestPairSplit:
    @pytest.mark.parametrize("parity", [0, 1])
    @pytest.mark.parametrize("theta", [0.0, 0.41, -1.3])
    def test_pass_exactly_unitary(self, parity, theta):
        c = pair_split_coefficients(10, 0.5, 0.03, parity, theta=theta)
        m = pair_split_matrix(c)
        assert np.abs(m @ m.conj().T - np.eye(10)).max() < 1e-14

    def test_one_neighbor_per_point(self):
        c = pair_split_coefficients(8, 0.5, 0.02, parity=0)
        nonzero = (np.abs(c.bl) > 0).astype(int) + (np.abs(c.bu) > 0).astype(int)
        assert np.all(nonzero == 1)

    def test_even_odd_complementary(self):
        even = pair_split_coefficients(8, 0.5, 0.02, parity=0)
        odd = pair_split_coefficients(8, 0.5, 0.02, parity=1)
        # A point reading "up" in the even pass reads "down" in the odd pass.
        assert np.all((np.abs(even.bu) > 0) == (np.abs(odd.bl) > 0))

    def test_odd_grid_size_rejected(self):
        with pytest.raises(ValueError):
            pair_split_coefficients(7, 0.5, 0.02, parity=0)

    def test_bad_parity_rejected(self):
        with pytest.raises(ValueError):
            pair_split_coefficients(8, 0.5, 0.02, parity=2)

    def test_sum_of_blocks_is_kinetic(self):
        """The generators of the two passes sum to the kinetic matrix."""
        n, h, theta = 8, 0.5, 0.3
        dt = 1e-6  # linearize exp(-i dt B) ~ 1 - i dt B
        even = pair_split_matrix(pair_split_coefficients(n, h, dt, 0, theta))
        odd = pair_split_matrix(pair_split_coefficients(n, h, dt, 1, theta))
        gen = (np.eye(n) - even) / (1j * dt) + (np.eye(n) - odd) / (1j * dt)
        assert np.abs(gen - kinetic_matrix_1d(n, h, theta=theta)).max() < 1e-4


class TestStrang:
    def test_second_order_accuracy(self):
        """Strang error should scale as O(dt^3) per step (local error)."""
        n, h = 8, 0.5
        t = kinetic_matrix_1d(n, h)
        errs = []
        for dt in (0.04, 0.02, 0.01):
            u_exact = sla.expm(-1j * dt * t)
            a, b, c = strang_passes(n, h, dt)
            u = pair_split_matrix(a) @ pair_split_matrix(b) @ pair_split_matrix(c)
            errs.append(np.abs(u - u_exact).max())
        # halving dt should reduce the error by ~8x
        assert errs[0] / errs[1] == pytest.approx(8.0, rel=0.25)
        assert errs[1] / errs[2] == pytest.approx(8.0, rel=0.25)

    def test_strang_with_peierls_phase(self):
        n, h, theta = 10, 0.4, 0.8
        t = kinetic_matrix_1d(n, h, theta=theta)
        dt = 0.01
        u_exact = sla.expm(-1j * dt * t)
        a, b, c = strang_passes(n, h, dt, theta=theta)
        u = pair_split_matrix(a) @ pair_split_matrix(b) @ pair_split_matrix(c)
        assert np.abs(u - u_exact).max() < 1e-5

    def test_strang_product_unitary(self):
        a, b, c = strang_passes(12, 0.5, 0.1, theta=0.2)
        u = pair_split_matrix(a) @ pair_split_matrix(b) @ pair_split_matrix(c)
        assert np.abs(u @ u.conj().T - np.eye(12)).max() < 1e-13

    def test_mass_dependence(self):
        """Heavier mass -> slower dynamics -> propagator closer to identity."""
        light = strang_passes(8, 0.5, 0.05, mass=1.0)
        heavy = strang_passes(8, 0.5, 0.05, mass=100.0)
        u_l = pair_split_matrix(light[0])
        u_h = pair_split_matrix(heavy[0])
        assert np.abs(u_h - np.eye(8)).max() < np.abs(u_l - np.eye(8)).max()


def test_coefficients_dataclass_fields():
    c = pair_split_coefficients(8, 0.5, 0.02, parity=1, theta=0.1)
    assert isinstance(c, PairSplitCoefficients)
    assert c.n == 8
    assert c.parity == 1
    assert c.dt == 0.02
