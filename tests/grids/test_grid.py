"""Grid3D unit tests."""

import numpy as np
import pytest

from repro.grids import Grid3D


class TestConstruction:
    def test_cubic(self):
        g = Grid3D.cubic(8, 0.5)
        assert g.shape == (8, 8, 8)
        assert g.spacing == (0.5, 0.5, 0.5)
        assert g.npoints == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid3D((0, 8, 8), (0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            Grid3D((8, 8, 8), (0.5, -0.5, 0.5))
        with pytest.raises(ValueError):
            Grid3D((8, 8), (0.5, 0.5))

    def test_lengths_volume(self, aniso_grid):
        assert aniso_grid.lengths == pytest.approx((4.0, 4.5, 4.8))
        assert aniso_grid.volume == pytest.approx(4.0 * 4.5 * 4.8)
        assert aniso_grid.dvol == pytest.approx(0.5 * 0.45 * 0.4)


class TestCoordinates:
    def test_axis_coords(self, grid8):
        x = grid8.axis_coords(0)
        assert x[0] == 0.0
        assert x[-1] == pytest.approx(3.5)
        with pytest.raises(ValueError):
            grid8.axis_coords(3)

    def test_meshgrid_shapes(self, aniso_grid):
        xs, ys, zs = aniso_grid.meshgrid()
        assert xs.shape == aniso_grid.shape
        assert ys[0, 1, 0] - ys[0, 0, 0] == pytest.approx(0.45)

    def test_origin_offset(self):
        g = Grid3D((4, 4, 4), (1.0, 1.0, 1.0), origin=(10.0, 0.0, 0.0))
        assert g.axis_coords(0)[0] == 10.0


class TestIntegration:
    def test_integrate_constant(self, grid8):
        f = np.ones(grid8.shape)
        assert grid8.integrate(f) == pytest.approx(grid8.volume)

    def test_inner_product_hermitian(self, grid8, rng):
        f = rng.standard_normal(grid8.shape) + 1j * rng.standard_normal(grid8.shape)
        g = rng.standard_normal(grid8.shape) + 1j * rng.standard_normal(grid8.shape)
        assert grid8.inner(f, g) == pytest.approx(np.conj(grid8.inner(g, f)))

    def test_norm_matches_inner(self, grid8, rng):
        f = rng.standard_normal(grid8.shape)
        assert grid8.norm(f) ** 2 == pytest.approx(np.real(grid8.inner(f, f)))

    def test_shape_mismatch_raises(self, grid8):
        with pytest.raises(ValueError):
            grid8.integrate(np.ones((4, 4, 4)))


class TestPeriodicity:
    def test_wrap_index(self, grid8):
        assert grid8.wrap_index((-1, 8, 9)) == (7, 0, 1)

    def test_wrap_position(self, grid8):
        r = grid8.wrap_position([4.1, -0.2, 0.0])
        assert 0.0 <= r[0] < 4.0
        assert r[1] == pytest.approx(3.8)

    def test_minimum_image(self, grid8):
        dr = grid8.minimum_image(np.array([3.9, 0.0, 0.0]))
        assert dr[0] == pytest.approx(-0.1)

    def test_nearest_index(self, grid8):
        assert grid8.nearest_index([0.24, 0.26, 3.99]) == (0, 1, 0)


class TestHierarchy:
    def test_coarsen(self, grid8):
        c = grid8.coarsen()
        assert c.shape == (4, 4, 4)
        assert c.spacing == (1.0, 1.0, 1.0)
        assert c.volume == pytest.approx(grid8.volume)

    def test_coarsen_odd_raises(self):
        g = Grid3D((6, 7, 8), (0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            g.coarsen()

    def test_compatible(self, grid8):
        assert grid8.compatible(Grid3D.cubic(8, 0.5))
        assert not grid8.compatible(grid8.coarsen())


def test_iter_points_count():
    g = Grid3D.cubic(2, 1.0)
    pts = list(g.iter_points())
    assert len(pts) == 8
    assert pts[0] == ((0, 0, 0), (0.0, 0.0, 0.0))
    assert pts[-1][1] == (1.0, 1.0, 1.0)


def test_zeros_dtype(grid8):
    z = grid8.zeros(dtype=np.complex64)
    assert z.shape == grid8.shape
    assert z.dtype == np.complex64
