"""Documentation coverage: every public item carries a docstring.

Walks the whole ``repro`` package and asserts that every public module,
class, function and method defined in the package is documented -- the
documentation deliverable, enforced mechanically.
"""

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", "") != module.__name__:
            continue  # re-exports are documented at their definition site
        yield name, obj


def test_every_module_documented():
    undocumented = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_documented():
    missing = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                if not inspect.getdoc(member):
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
