"""Report formats: text, JSON, and SARIF 2.1.0 structural validity."""

from __future__ import annotations

import json

import pytest

from repro.statlint import Baseline, LintConfig, lint_paths, lint_source
from repro.statlint.baseline import apply_baseline
from repro.statlint.engine import LintResult
from repro.statlint.output import render_json, render_sarif, render_text
from repro.statlint.rules import all_rules

BAD = (
    "import numpy as np\n"
    "def f(x):\n"
    "    for _ in range(3):\n"
    "        t = np.zeros(3)\n"
    "    return t\n"
)
CFG = LintConfig(select=("DCL001",))


def make_result(baselined=False):
    findings = lint_source(BAD, "src/repro/lfd/mod.py", CFG)
    result = LintResult(findings=list(findings), new_findings=list(findings))
    baseline = None
    if baselined:
        baseline = Baseline.from_findings(findings)
        baseline.entries[0].justification = "kept: reference path"
        apply_baseline(result, baseline)
    return result, baseline


def test_text_report_contains_location_and_summary():
    result, _ = make_result()
    text = render_text(result)
    assert "src/repro/lfd/mod.py:4:" in text
    assert "DCL001" in text
    assert "1 new error(s)" in text


def test_text_report_shows_justifications():
    result, baseline = make_result(baselined=True)
    text = render_text(result, baseline)
    assert "baselined finding(s) suppressed" in text
    assert "kept: reference path" in text
    assert "0 new error(s)" in text


def test_json_report_round_trips():
    result, _ = make_result()
    doc = json.loads(render_json(result))
    assert doc["tool"] == "dclint"
    assert doc["exit_code"] == 1
    (finding,) = doc["new_findings"]
    assert finding["rule"] == "DCL001"
    assert finding["line"] == 4


# A structural subset of the OASIS sarif-2.1.0 schema: the fields GitHub
# code scanning requires for ingestion.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id",
                                                "shortDescription",
                                            ],
                                        },
                                    }
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "level": {
                                    "enum": ["error", "warning", "note"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def test_sarif_is_schema_valid():
    jsonschema = pytest.importorskip("jsonschema")
    result, _ = make_result()
    doc = json.loads(render_sarif(result))
    jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)


def test_sarif_carries_full_rule_metadata():
    result, _ = make_result()
    doc = json.loads(render_sarif(result))
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == [r.code for r in all_rules()]
    assert {"DCL012", "DCL013", "DCL014", "DCL015"} <= {r["id"] for r in rules}
    for r in rules:
        assert r["shortDescription"]["text"]
        assert r["properties"]["paperRef"]


def make_project_result(tmp_path):
    """A LintResult holding one finding per project-wide rule."""
    from tests.statlint.test_rules import FIXTURES, PROJECT_CASES
    import shutil

    for code, (stem, relpath, _) in PROJECT_CASES.items():
        dst = tmp_path / relpath.replace("fixture.py", f"{stem}.py")
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / f"{stem}_bad.py", dst)
    config = LintConfig(select=tuple(PROJECT_CASES))
    result = lint_paths([str(tmp_path)], config, root=tmp_path)
    result.new_findings = list(result.findings)
    return result


def test_sarif_project_findings_schema_valid(tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    result = make_project_result(tmp_path)
    doc = json.loads(render_sarif(result))
    jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
    rule_ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert rule_ids == {"DCL012", "DCL013", "DCL014", "DCL015"}


def test_sarif_project_results_carry_locations_and_fingerprints(tmp_path):
    result = make_project_result(tmp_path)
    doc = json.loads(render_sarif(result))
    for res in doc["runs"][0]["results"]:
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith(".py")
        assert loc["region"]["startLine"] >= 1
        assert res["partialFingerprints"]["dclint/v1"]


def test_sarif_baseline_states():
    result, baseline = make_result(baselined=True)
    doc = json.loads(render_sarif(result, baseline))
    results = doc["runs"][0]["results"]
    assert {r["baselineState"] for r in results} == {"unchanged"}
    invocation = doc["runs"][0]["invocations"][0]
    assert invocation["exitCode"] == 0
    assert invocation["executionSuccessful"] is True


def test_sarif_new_result_location():
    result, _ = make_result()
    doc = json.loads(render_sarif(result))
    (res,) = doc["runs"][0]["results"]
    assert res["baselineState"] == "new"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/lfd/mod.py"
    assert loc["region"]["startLine"] == 4
    assert res["partialFingerprints"]["dclint/v1"]
