"""Every DCL rule: known-bad fixtures flag, known-good fixtures stay clean."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.statlint import LintConfig, lint_paths, lint_source
from repro.statlint.rules import ALL_RULES, all_rules, get_rule, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"

#: rule -> (fixture stem, synthetic relpath that puts it in the rule's scope,
#:          expected number of findings in the bad fixture)
CASES = {
    "DCL001": ("dcl001", "src/repro/lfd/fixture.py", 4),
    "DCL002": ("dcl002", "src/repro/lfd/fixture.py", 4),
    "DCL003": ("dcl003", "src/repro/resilience/fixture.py", 4),
    "DCL004": ("dcl004", "src/repro/qxmd/fixture.py", 3),
    "DCL005": ("dcl005", "src/repro/core/fixture.py", 4),
    "DCL006": ("dcl006", "src/repro/lfd/kin_prop.py", 2),
    "DCL007": ("dcl007", "src/repro/device/fixture.py", 3),
    "DCL008": ("dcl008", "src/repro/qxmd/fixture.py", 2),
    "DCL009": ("dcl009", "src/repro/qxmd/dftsolver.py", 3),
    "DCL010": ("dcl010", "src/repro/core/fixture.py", 3),
    "DCL011": ("dcl011", "src/repro/parallel/backends/fixture.py", 5),
    "DCL016": ("dcl016", "src/repro/lfd/fixture.py", 4),
    "DCL017": ("dcl017", "src/repro/serve/fixture.py", 5),
}

#: The project-wide rules lint through lint_paths (they need the
#: cross-module index), so their cases carry the same metadata but run
#: against a temp tree holding the fixture at an in-scope relpath.
PROJECT_CASES = {
    "DCL012": ("dcl012", "src/repro/core/fixture.py", 3),
    "DCL013": ("dcl013", "src/repro/parallel/fixture.py", 3),
    "DCL014": ("dcl014", "src/repro/lfd/fixture.py", 3),
    "DCL015": ("dcl015", "src/repro/lfd/fixture.py", 4),
}


def lint_fixture(name: str, relpath: str, code: str):
    source = (FIXTURES / f"{name}.py").read_text()
    config = LintConfig(select=(code,))
    return lint_source(source, relpath, config)


def lint_project_fixture(tmp_path: Path, name: str, relpath: str, code: str):
    dst = tmp_path / relpath
    dst.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / f"{name}.py", dst)
    result = lint_paths(
        [str(tmp_path)], LintConfig(select=(code,)), root=tmp_path
    )
    assert not result.errors, result.errors
    return result.findings


@pytest.mark.parametrize("code", sorted(CASES))
def test_bad_fixture_flags(code):
    stem, relpath, expected = CASES[code]
    findings = lint_fixture(f"{stem}_bad", relpath, code)
    assert len(findings) == expected, [f.to_dict() for f in findings]
    assert {f.rule for f in findings} == {code}
    for f in findings:
        assert f.severity == "error"
        assert f.line >= 1
        assert f.snippet
        assert f.message


@pytest.mark.parametrize("code", sorted(CASES))
def test_good_fixture_clean(code):
    stem, relpath, _ = CASES[code]
    findings = lint_fixture(f"{stem}_good", relpath, code)
    assert findings == [], [f.to_dict() for f in findings]


@pytest.mark.parametrize("code", sorted(CASES))
def test_scoped_rules_skip_out_of_scope_paths(code):
    """Path-scoped rules don't fire outside their layer."""
    rule = get_rule(code)
    if rule.scope_attr is None:
        pytest.skip("rule applies everywhere")
    stem, _, _ = CASES[code]
    findings = lint_fixture(f"{stem}_bad", "scripts/tooling/helper.py", code)
    assert findings == []


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_project_bad_fixture_flags(code, tmp_path):
    stem, relpath, expected = PROJECT_CASES[code]
    findings = lint_project_fixture(tmp_path, f"{stem}_bad", relpath, code)
    assert len(findings) == expected, [f.to_dict() for f in findings]
    assert {f.rule for f in findings} == {code}
    for f in findings:
        assert f.severity == "error"
        assert f.line >= 1
        assert f.snippet
        assert f.message


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_project_good_fixture_clean(code, tmp_path):
    stem, relpath, _ = PROJECT_CASES[code]
    findings = lint_project_fixture(tmp_path, f"{stem}_good", relpath, code)
    assert findings == [], [f.to_dict() for f in findings]


@pytest.mark.parametrize("code", sorted(PROJECT_CASES))
def test_project_scoped_rules_skip_out_of_scope_paths(code, tmp_path):
    rule = get_rule(code)
    if rule.scope_attr is None:
        pytest.skip("rule applies everywhere")
    stem, _, _ = PROJECT_CASES[code]
    findings = lint_project_fixture(
        tmp_path, f"{stem}_bad", "scripts/tooling/helper.py", code
    )
    assert findings == []


def test_rule_registry_complete():
    assert rule_codes() == tuple(
        f"DCL{i:03d}" for i in range(1, 18)
    )
    assert tuple(r.code for r in ALL_RULES) == tuple(
        f"DCL{i:03d}" for i in range(1, 12)
    ) + ("DCL016", "DCL017")
    for rule in all_rules():
        assert rule.summary
        assert rule.paper_ref
        assert rule.__doc__


def test_project_rules_marked():
    for rule in all_rules():
        expected = rule.code in PROJECT_CASES
        assert bool(getattr(rule, "project", False)) is expected, rule.code


def test_get_rule_unknown():
    with pytest.raises(KeyError):
        get_rule("DCL999")


def test_all_rules_together_on_bad_fixture():
    """Running the full rule set (no select) still finds DCL001 hits."""
    source = (FIXTURES / "dcl001_bad.py").read_text()
    findings = lint_source(source, "src/repro/lfd/fixture.py")
    assert {f.rule for f in findings} >= {"DCL001"}


def test_dcl001_astype_copy_false_exempt():
    src = (
        "import numpy as np\n"
        "def f(psi):\n"
        "    for _ in range(3):\n"
        "        q = psi.astype(np.complex128, copy=False)\n"
        "    return q\n"
    )
    assert lint_source(src, "src/repro/lfd/x.py", LintConfig(select=("DCL001",))) == []


def test_dcl004_reraise_exempt():
    src = (
        "def f(step):\n"
        "    try:\n"
        "        return step()\n"
        "    except Exception:\n"
        "        raise RuntimeError('wrapped')\n"
    )
    assert lint_source(src, "anywhere.py", LintConfig(select=("DCL004",))) == []


def test_dcl007_distinct_out_ok():
    src = (
        "import numpy as np\n"
        "def f(a, b, w):\n"
        "    np.matmul(a, b, out=w)\n"
        "    return w\n"
    )
    assert lint_source(src, "anywhere.py", LintConfig(select=("DCL007",))) == []


def test_dcl010_none_and_variable_exempt():
    src = (
        "def f(step, wf, bs):\n"
        "    step(wf, block_size=None)\n"   # None = profile resolution
        "    step(wf, block_size=bs)\n"     # flows from the caller
        "    step(wf, orb_block=bs)\n"
    )
    cfg = LintConfig(select=("DCL010",))
    assert lint_source(src, "src/repro/lfd/x.py", cfg) == []


def test_dcl010_out_of_scope_sweeps_allowed():
    """Benchmark ablation sweeps enumerate literals by design."""
    src = "def f(step, wf):\n    step(wf, block_size=8)\n"
    cfg = LintConfig(select=("DCL010",))
    assert lint_source(src, "benchmarks/bench_ablations.py", cfg) == []
    assert len(lint_source(src, "src/repro/lfd/x.py", cfg)) == 1


def test_dcl003_numpy_random_submodule_import():
    src = "import numpy.random\ndef f():\n    return numpy.random.rand(3)\n"
    findings = lint_source(src, "anywhere.py", LintConfig(select=("DCL003",)))
    assert len(findings) == 1
