"""Baseline round-trip, matching, justification preservation, staleness."""

from __future__ import annotations

import json

import pytest

from repro.statlint import Baseline, LintConfig, lint_source
from repro.statlint.baseline import apply_baseline
from repro.statlint.engine import LintResult

BAD = (
    "import numpy as np\n"
    "def f(x):\n"
    "    for _ in range(3):\n"
    "        t = np.zeros(3)\n"
    "    return t\n"
)
LFD = "src/repro/lfd/mod.py"
CFG = LintConfig(select=("DCL001",))


def findings_of(src=BAD):
    return lint_source(src, LFD, CFG)


def test_round_trip(tmp_path):
    findings = findings_of()
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert len(loaded.entries) == 1
    assert loaded.entries[0].to_dict() == baseline.entries[0].to_dict()
    assert findings[0] in loaded


def test_baselined_findings_do_not_fail():
    findings = findings_of()
    baseline = Baseline.from_findings(findings)
    result = apply_baseline(LintResult(findings=list(findings)), baseline)
    assert result.new_findings == []
    assert result.baselined == findings
    assert result.exit_code == 0


def test_new_finding_fails_despite_baseline():
    baseline = Baseline.from_findings(findings_of())
    two = BAD + BAD.replace("def f", "def g")
    result = apply_baseline(
        LintResult(findings=findings_of(two)), baseline
    )
    assert len(result.new_findings) == 1
    assert result.new_findings[0].context == "g"
    assert result.exit_code == 1


def test_stale_entries_detected():
    baseline = Baseline.from_findings(findings_of())
    result = apply_baseline(LintResult(findings=[]), baseline)
    assert result.stale_baseline == [baseline.entries[0].fingerprint]
    assert result.exit_code == 0


def test_baseline_survives_line_drift():
    baseline = Baseline.from_findings(findings_of())
    drifted = findings_of("# moved down\n\n\n" + BAD)
    result = apply_baseline(LintResult(findings=drifted), baseline)
    assert result.new_findings == []


def test_justification_preserved_on_rebaseline(tmp_path):
    findings = findings_of()
    baseline = Baseline.from_findings(findings)
    baseline.entries[0].justification = "intentional: reference path"
    rebaselined = Baseline.from_findings(findings, previous=baseline)
    assert rebaselined.entries[0].justification == "intentional: reference path"
    assert rebaselined.justification_for(findings[0]) == (
        "intentional: reference path"
    )


def test_selective_rebaseline_preserves_uncovered_rules(tmp_path):
    """The new-rule adoption path: ``--select DCL012 --write-baseline``
    must not drop the DCL001-011 entries the selective run never ran."""
    findings = findings_of()
    previous = Baseline.from_findings(findings)
    previous.entries[0].justification = "legacy hot-loop allocation"

    # A selective run covering only DCL012 sees zero findings; the
    # DCL001 entry (with its justification) must survive verbatim.
    rebaselined = Baseline.from_findings(
        [], previous=previous, covered_rules={"DCL012"}
    )
    assert len(rebaselined.entries) == 1
    assert rebaselined.entries[0].rule == "DCL001"
    assert rebaselined.entries[0].justification == "legacy hot-loop allocation"

    # Round-trip through disk keeps the preserved entry intact.
    path = tmp_path / "bl.json"
    rebaselined.save(path)
    assert Baseline.load(path).entries[0].to_dict() == (
        rebaselined.entries[0].to_dict()
    )

    # A later full rebaseline (all rules covered, finding still present)
    # folds the entry back through the exact-key path.
    full = Baseline.from_findings(
        findings, previous=rebaselined, covered_rules={"DCL001", "DCL012"}
    )
    assert len(full.entries) == 1
    assert full.entries[0].justification == "legacy hot-loop allocation"


def test_covered_rebaseline_drops_fixed_findings():
    """A covered rule's vanished findings ARE pruned (that is the point
    of re-baselining); only uncovered rules are carried."""
    previous = Baseline.from_findings(findings_of())
    rebaselined = Baseline.from_findings(
        [], previous=previous, covered_rules={"DCL001"}
    )
    assert rebaselined.entries == []


def test_justification_fuzzy_fallback_on_context_rename():
    """Renaming the enclosing function changes the fingerprint; the
    (rule, path, snippet) fallback still carries the justification."""
    previous = Baseline.from_findings(findings_of())
    previous.entries[0].justification = "kept: reference implementation"
    renamed = findings_of(BAD.replace("def f", "def h"))
    assert renamed[0].fingerprint != previous.entries[0].fingerprint
    rebaselined = Baseline.from_findings(renamed, previous=previous)
    assert rebaselined.entries[0].justification == (
        "kept: reference implementation"
    )


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_saved_document_shape(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings_of()).save(path)
    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    assert doc["tool"] == "dclint"
    entry = doc["findings"][0]
    assert set(entry) == {
        "fingerprint",
        "rule",
        "path",
        "context",
        "snippet",
        "occurrence",
        "line",
        "justification",
    }
