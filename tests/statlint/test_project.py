"""Project-wide analysis layer: index, dataflow, and cross-module rules.

The adversarial cases in here are the reason the project pass exists:
each one is *clean* when its modules are linted per-module (the hazard
lives in the composition) and flagged only when the whole tree is
analyzed together.
"""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent
from typing import Dict

from repro.statlint import LintConfig, lint_paths, lint_source
from repro.statlint.engine import ModuleContext
from repro.statlint.project import (
    ProjectContext,
    build_project,
    module_name_for,
)

PROJECT_CODES = ("DCL012", "DCL013", "DCL014", "DCL015")


def write_tree(tmp_path: Path, files: Dict[str, str]) -> Path:
    for relpath, source in files.items():
        dst = tmp_path / relpath
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(dedent(source))
    return tmp_path


def lint_tree(tmp_path: Path, files: Dict[str, str], select=PROJECT_CODES):
    root = write_tree(tmp_path, files)
    result = lint_paths([str(root)], LintConfig(select=select), root=root)
    assert not result.errors, result.errors
    return result.findings


def build(tmp_path: Path, files: Dict[str, str]) -> ProjectContext:
    root = write_tree(tmp_path, files)
    config = LintConfig()
    contexts = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        contexts.append(ModuleContext(relpath, path.read_text(), config))
    return build_project(contexts, config)


# --------------------------------------------------------------------- #
# symbol index
# --------------------------------------------------------------------- #
def test_module_name_for_strips_src_and_init():
    assert module_name_for("src/repro/lfd/kin_prop.py") == "repro.lfd.kin_prop"
    assert module_name_for("src/repro/lfd/__init__.py") == "repro.lfd"
    assert module_name_for("benchmarks/bench_x.py") == "benchmarks.bench_x"


def test_index_resolves_import_aliases_and_reexports(tmp_path):
    pctx = build(tmp_path, {
        "src/pkg/core.py": """
            def task(x):
                return x
        """,
        "src/pkg/api.py": """
            from pkg.core import task as exported_task
        """,
        "src/pkg/use.py": """
            from pkg.api import exported_task

            def drive(executor, items):
                return list(executor.map(exported_task, items))
        """,
    })
    info = pctx.index.modules["pkg.use"]
    fq = pctx.index.resolve_name(info, "exported_task")
    rec = pctx.index.lookup_function(fq)
    assert rec is not None and rec.fq == "pkg.core.task"


def test_call_graph_reachability(tmp_path):
    pctx = build(tmp_path, {
        "src/pkg/a.py": """
            from pkg.b import middle

            def entry():
                return middle()
        """,
        "src/pkg/b.py": """
            from pkg.c import leaf

            def middle():
                return leaf()
        """,
        "src/pkg/c.py": """
            def leaf():
                return 1

            def unrelated():
                return 2
        """,
    })
    reachable = pctx.index.reachable_from(["pkg.a.entry"])
    assert "pkg.b.middle" in reachable
    assert "pkg.c.leaf" in reachable
    assert "pkg.c.unrelated" not in reachable


def test_cross_module_return_dtype_summary(tmp_path):
    pctx = build(tmp_path, {
        "src/pkg/maker.py": """
            import numpy as np

            def phase(n):
                return np.exp(1j * np.linspace(0.0, 1.0, n))
        """,
        "src/pkg/user.py": """
            from pkg.maker import phase
        """,
    })
    rec = pctx.index.lookup_function("pkg.maker.phase")
    assert rec is not None
    assert pctx.return_dtype(rec) == "complex128"


# --------------------------------------------------------------------- #
# adversarial: project pass flags, per-module pass is blind
# --------------------------------------------------------------------- #
ADVERSARIAL_FACTORY = {
    # The closure factory lives far from the dispatch site; each module
    # alone is innocent.
    "src/repro/parallel/taskfactory.py": """
        def make_scaled_task(scale):
            def scaled(x):
                return x * scale
            return scaled
    """,
    "src/repro/core/driver.py": """
        from repro.parallel.taskfactory import make_scaled_task

        def drive(executor, items):
            task = make_scaled_task(2.0)
            return list(executor.map(task, items))
    """,
}

ADVERSARIAL_DTYPE = {
    # complex128 is produced in one module, truncated in another.
    "src/repro/core/signal.py": """
        import numpy as np

        def carrier(n):
            return np.exp(1j * np.linspace(0.0, 1.0, n))
    """,
    "src/repro/lfd/consume.py": """
        import numpy as np

        from repro.core.signal import carrier

        def envelope(n):
            z = carrier(n)
            return z.astype(np.float64)
    """,
}


def test_adversarial_factory_closure_flagged_project_wide(tmp_path):
    findings = lint_tree(tmp_path, ADVERSARIAL_FACTORY)
    assert [f.rule for f in findings] == ["DCL012"]
    assert "closure" in findings[0].message
    # the finding points at the *definition* inside the factory module
    assert findings[0].path.endswith("taskfactory.py")


def test_adversarial_factory_invisible_per_module():
    for relpath, source in ADVERSARIAL_FACTORY.items():
        findings = lint_source(
            dedent(source), relpath, LintConfig(select=PROJECT_CODES)
        )
        assert findings == [], [f.to_dict() for f in findings]


def test_adversarial_cross_module_truncation_flagged_project_wide(tmp_path):
    findings = lint_tree(tmp_path, ADVERSARIAL_DTYPE)
    assert [f.rule for f in findings] == ["DCL014"]
    assert findings[0].path.endswith("consume.py")


def test_adversarial_cross_module_truncation_invisible_per_module():
    for relpath, source in ADVERSARIAL_DTYPE.items():
        findings = lint_source(
            dedent(source), relpath, LintConfig(select=PROJECT_CODES)
        )
        assert findings == [], [f.to_dict() for f in findings]


def test_entropy_rng_passed_into_scope_path_flagged(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/parallel/chunks.py": """
            def run_chunk(items, rng):
                return [rng.random() for _ in items]
        """,
        "src/repro/analysis/outside.py": """
            import numpy as np

            from repro.parallel.chunks import run_chunk

            def launch(items):
                rng = np.random.default_rng()
                return run_chunk(items, rng)
        """,
    })
    assert [f.rule for f in findings] == ["DCL013"]
    assert findings[0].path.endswith("outside.py")


def test_seeded_rng_passed_into_scope_path_clean(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/parallel/chunks.py": """
            def run_chunk(items, rng):
                return [rng.random() for _ in items]
        """,
        "src/repro/analysis/outside.py": """
            import numpy as np

            from repro.parallel.chunks import run_chunk

            def launch(items, seed):
                rng = np.random.default_rng(seed)
                return run_chunk(items, rng)
        """,
    })
    assert findings == [], [f.to_dict() for f in findings]


def test_task_dispatched_by_parameter_traced_to_caller(tmp_path):
    # run() receives the task as a parameter; the offending lambda sits
    # at the *caller*, two modules away from any executor.
    findings = lint_tree(tmp_path, {
        "src/repro/core/runner.py": """
            def run(executor, task, items):
                return list(executor.map(task, items))
        """,
        "src/repro/analysis/caller.py": """
            from repro.core.runner import run

            def launch(executor, items):
                return run(executor, lambda x: x + 1, items)
        """,
    })
    assert [f.rule for f in findings] == ["DCL012"]
    assert findings[0].path.endswith("caller.py")


def test_inline_suppression_silences_project_finding(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/core/driver.py": """
            def drive(executor, items):
                return list(executor.map(lambda x: x, items))  # dclint: disable=DCL012
        """,
    })
    assert findings == [], [f.to_dict() for f in findings]


def test_transitive_rng_through_helper_module(tmp_path):
    # The entropy RNG hides in a helper called (transitively) from a
    # dispatched task; neither the task module nor the helper module is
    # under repro/parallel/.
    findings = lint_tree(tmp_path, {
        "src/repro/core/tasks.py": """
            from repro.analysis.noise import noisy

            def worker_task(item):
                return noisy(item)

            def drive(executor, items):
                return list(executor.map(worker_task, items))
        """,
        "src/repro/analysis/noise.py": """
            import numpy as np

            def noisy(item):
                rng = np.random.default_rng()
                return item + rng.random()
        """,
    })
    assert [f.rule for f in findings] == ["DCL013"]
    assert findings[0].path.endswith("noise.py")
