"""Configuration precedence: CLI flags > [tool.statlint] > built-in defaults.

Discovery anchors on the linted tree (the first path argument), so each
test builds a self-contained temp project with its own pyproject.toml.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.statlint.cli import main
from repro.statlint.config import (
    config_from_settings,
    find_pyproject,
    load_pyproject_settings,
)

BAD = (
    "import numpy as np\n"
    "def f(x):\n"
    "    for _ in range(3):\n"
    "        t = np.zeros(3)\n"
    "    return t\n"
)


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "lfd"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(BAD)
    old = Path.cwd()
    os.chdir(tmp_path)
    try:
        yield tmp_path
    finally:
        os.chdir(old)


def write_pyproject(tree: Path, body: str) -> None:
    (tree / "pyproject.toml").write_text(body)


def test_pyproject_select_applies(tree, capsys):
    # DCL001 fires on the tree by default; selecting only DCL002 in
    # pyproject must silence it.
    write_pyproject(tree, "[tool.statlint]\nselect = [\"DCL002\"]\n")
    assert main(["src"]) == 0


def test_cli_select_overrides_pyproject(tree, capsys):
    write_pyproject(tree, "[tool.statlint]\nselect = [\"DCL002\"]\n")
    assert main(["src", "--select", "DCL001"]) == 1
    assert "DCL001" in capsys.readouterr().out


def test_pyproject_severity_downgrades_exit(tree, capsys):
    write_pyproject(
        tree, "[tool.statlint]\n[tool.statlint.severity]\nDCL001 = \"note\"\n"
    )
    assert main(["src"]) == 0
    assert "note" in capsys.readouterr().out


def test_cli_severity_wins_per_code(tree, capsys):
    write_pyproject(
        tree, "[tool.statlint]\n[tool.statlint.severity]\nDCL001 = \"note\"\n"
    )
    assert main(["src", "--severity", "DCL001=error"]) == 1


def test_invalid_pyproject_severity_is_a_usage_error(tree):
    write_pyproject(
        tree, "[tool.statlint]\n[tool.statlint.severity]\nDCL001 = \"loud\"\n"
    )
    with pytest.raises(SystemExit) as exc:
        main(["src"])
    assert exc.value.code == 2


def test_pyproject_baseline_default_applies(tree, capsys):
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    write_pyproject(tree, "[tool.statlint]\nbaseline = \"bl.json\"\n")
    assert main(["src"]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_baseline_overrides_pyproject(tree, capsys):
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    write_pyproject(tree, "[tool.statlint]\nbaseline = \"missing.json\"\n")
    assert main(["src", "--baseline", "bl.json"]) == 0


def test_pyproject_cache_and_no_cache(tree, capsys):
    write_pyproject(tree, "[tool.statlint]\ncache = \"lint-cache.json\"\n")
    assert main(["src"]) == 1
    assert (tree / "lint-cache.json").exists()
    doc = json.loads((tree / "lint-cache.json").read_text())
    assert doc["files"]
    (tree / "lint-cache.json").unlink()
    assert main(["src", "--no-cache"]) == 1
    assert not (tree / "lint-cache.json").exists()


def test_pyproject_jobs_applies_and_cli_wins(tree, capsys):
    write_pyproject(tree, "[tool.statlint]\njobs = 2\n")
    assert main(["src"]) == 1          # parallel run, same findings
    assert main(["src", "--jobs", "1"]) == 1


def test_defaults_without_pyproject(tree, capsys):
    assert find_pyproject(["src"]) is None
    assert main(["src"]) == 1          # all rules, no baseline, no cache


def test_malformed_pyproject_degrades_to_defaults(tree, capsys):
    write_pyproject(tree, "not [valid toml")
    assert main(["src"]) == 1


def test_config_from_settings_roundtrip():
    out = config_from_settings(
        {
            "select": ["dcl001", "DCL014"],
            "ignore": "DCL002, dcl003",
            "severity": {"DCL001": "WARNING"},
            "jobs": 4,
            "cache": " .lint-cache.json ",
            "baseline": "bl.json",
            "unknown_future_key": object(),
        }
    )
    assert out["select"] == ("DCL001", "DCL014")
    assert out["ignore"] == ("DCL002", "DCL003")
    assert out["severities"] == {"DCL001": "warning"}
    assert out["jobs"] == 4
    assert out["cache"] == ".lint-cache.json"
    assert out["baseline"] == "bl.json"
    assert "unknown_future_key" not in out


def test_load_pyproject_settings_reads_table(tmp_path):
    py = tmp_path / "pyproject.toml"
    py.write_text("[tool.statlint]\nselect = [\"DCL001\"]\njobs = 3\n")
    assert load_pyproject_settings(py) == {"select": ["DCL001"], "jobs": 3}
