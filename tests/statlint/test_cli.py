"""CLI behaviour: exit codes, formats, baseline workflow, module entry."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.statlint.cli import main

BAD = (
    "import numpy as np\n"
    "def f(x):\n"
    "    for _ in range(3):\n"
    "        t = np.zeros(3)\n"
    "    return t\n"
)


@pytest.fixture()
def bad_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "lfd"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(BAD)
    old = Path.cwd()
    os.chdir(tmp_path)
    try:
        yield tmp_path
    finally:
        os.chdir(old)


def test_exit_1_on_findings(bad_tree, capsys):
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "DCL001" in out


def test_exit_0_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("X = 1\n")
    assert main([str(tmp_path)]) == 0


def test_exit_0_with_baseline(bad_tree, capsys):
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    assert main(["src", "--baseline", "bl.json"]) == 0
    out = capsys.readouterr().out
    assert "0 new error(s)" in out


def test_exit_1_when_new_finding_beyond_baseline(bad_tree, capsys):
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    mod = bad_tree / "src" / "repro" / "lfd" / "mod.py"
    mod.write_text(BAD + BAD.replace("def f", "def g"))
    assert main(["src", "--baseline", "bl.json"]) == 1


def test_exit_2_on_corrupt_baseline(bad_tree, capsys):
    (bad_tree / "bl.json").write_text("{not json")
    assert main(["src", "--baseline", "bl.json"]) == 2


def test_exit_2_on_missing_path(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main([str(tmp_path / "nope")])
    assert exc.value.code == 2


def test_unknown_rule_code_rejected(bad_tree):
    with pytest.raises(SystemExit) as exc:
        main(["src", "--select", "DCL999"])
    assert exc.value.code == 2


def test_severity_override_downgrades_exit(bad_tree, capsys):
    assert main(["src", "--severity", "DCL001=warning"]) == 0
    assert "warning" in capsys.readouterr().out


def test_ignore_rule(bad_tree, capsys):
    assert main(["src", "--ignore", "DCL001"]) == 0


def test_sarif_output_file(bad_tree, capsys):
    assert main(["src", "--format", "sarif", "--output", "out.sarif"]) == 1
    doc = json.loads((bad_tree / "out.sarif").read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


def test_json_format(bad_tree, capsys):
    assert main(["src", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["new_findings"]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DCL001", "DCL008"):
        assert code in out


def test_write_baseline_preserves_justifications(bad_tree, capsys):
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    doc = json.loads((bad_tree / "bl.json").read_text())
    doc["findings"][0]["justification"] = "kept on purpose"
    (bad_tree / "bl.json").write_text(json.dumps(doc))
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    doc2 = json.loads((bad_tree / "bl.json").read_text())
    assert doc2["findings"][0]["justification"] == "kept on purpose"


def test_selective_write_baseline_keeps_other_rules(bad_tree, capsys):
    """New-rule adoption: rebaselining with --select must not drop the
    entries of rules the selective run never executed."""
    assert main(["src", "--write-baseline", "bl.json"]) == 0
    doc = json.loads((bad_tree / "bl.json").read_text())
    doc["findings"][0]["justification"] = "legacy, kept"
    (bad_tree / "bl.json").write_text(json.dumps(doc))
    assert main(
        ["src", "--select", "DCL012", "--write-baseline", "bl.json"]
    ) == 0
    doc2 = json.loads((bad_tree / "bl.json").read_text())
    assert [e["rule"] for e in doc2["findings"]] == ["DCL001"]
    assert doc2["findings"][0]["justification"] == "legacy, kept"


def test_jobs_and_cache_flags(bad_tree, capsys):
    assert main(["src", "--jobs", "2", "--cache", "c.json"]) == 1
    first = capsys.readouterr().out
    assert main(["src", "--jobs", "1", "--cache", "c.json"]) == 1
    second = capsys.readouterr().out
    assert second == first          # warm cache, serial: identical report
    assert (bad_tree / "c.json").exists()


def test_python_m_entry_point(bad_tree):
    """``python -m repro.statlint`` works and propagates the exit code."""
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.statlint", "src"],
        capture_output=True,
        text=True,
        env=env,
        cwd=bad_tree,
    )
    assert proc.returncode == 1, proc.stderr
    assert "DCL001" in proc.stdout
