"""Engine mechanics: suppressions, fingerprints, contexts, file walking."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.statlint import LintConfig, lint_paths, lint_source
from repro.statlint.engine import ModuleContext, iter_python_files

BAD_LOOP = (
    "import numpy as np\n"
    "def f(x):\n"
    "    for _ in range(3):\n"
    "        t = np.zeros(3)\n"
    "    return t\n"
)
LFD = "src/repro/lfd/mod.py"


def only_dcl001():
    return LintConfig(select=("DCL001",))


def test_same_line_suppression():
    src = BAD_LOOP.replace(
        "t = np.zeros(3)", "t = np.zeros(3)  # dclint: disable=DCL001"
    )
    assert lint_source(src, LFD, only_dcl001()) == []


def test_previous_line_suppression():
    src = BAD_LOOP.replace(
        "        t = np.zeros(3)",
        "        # dclint: disable=DCL001\n        t = np.zeros(3)",
    )
    assert lint_source(src, LFD, only_dcl001()) == []


def test_file_level_suppression():
    src = "# dclint: disable-file=DCL001\n" + BAD_LOOP
    assert lint_source(src, LFD, only_dcl001()) == []


def test_suppression_of_other_code_does_not_hide():
    src = BAD_LOOP.replace(
        "t = np.zeros(3)", "t = np.zeros(3)  # dclint: disable=DCL003"
    )
    assert len(lint_source(src, LFD, only_dcl001())) == 1


def test_multi_code_suppression():
    src = BAD_LOOP.replace(
        "t = np.zeros(3)", "t = np.zeros(3)  # dclint: disable=DCL003, DCL001"
    )
    assert lint_source(src, LFD, only_dcl001()) == []


def test_fingerprint_stable_under_line_drift():
    base = lint_source(BAD_LOOP, LFD, only_dcl001())
    shifted = lint_source("# leading comment\n\n" + BAD_LOOP, LFD, only_dcl001())
    assert len(base) == len(shifted) == 1
    assert base[0].fingerprint == shifted[0].fingerprint
    assert base[0].line != shifted[0].line


def test_fingerprint_distinguishes_functions():
    two = BAD_LOOP + BAD_LOOP.replace("def f", "def g")
    findings = lint_source(two, LFD, only_dcl001())
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint
    assert {f.context for f in findings} == {"f", "g"}


def test_occurrence_disambiguates_identical_lines():
    src = (
        "import numpy as np\n"
        "def f(x):\n"
        "    for _ in range(3):\n"
        "        t = np.zeros(3)\n"
        "        t = np.zeros(3)\n"
        "    return t\n"
    )
    findings = lint_source(src, LFD, only_dcl001())
    assert len(findings) == 2
    assert findings[0].fingerprint == findings[1].fingerprint
    assert sorted(f.occurrence for f in findings) == [0, 1]


def test_context_is_method_qualname():
    src = (
        "import numpy as np\n"
        "class K:\n"
        "    def m(self, x):\n"
        "        for _ in range(2):\n"
        "            t = np.zeros(2)\n"
        "        return t\n"
    )
    (finding,) = lint_source(src, LFD, only_dcl001())
    assert finding.context == "K.m"


def test_severity_override():
    config = LintConfig(select=("DCL001",), severities={"DCL001": "warning"})
    (finding,) = lint_source(BAD_LOOP, LFD, config)
    assert finding.severity == "warning"


def test_parse_severity_overrides_rejects_garbage():
    with pytest.raises(ValueError):
        LintConfig.parse_severity_overrides(["DCL001"])
    with pytest.raises(ValueError):
        LintConfig.parse_severity_overrides(["DCL001=fatal"])
    assert LintConfig.parse_severity_overrides(["DCL001=warning"]) == {
        "DCL001": "warning"
    }


def test_numpy_alias_resolution():
    src = (
        "import numpy\n"
        "import numpy as np\n"
        "import numpy.random as nr\n"
        "from numpy import zeros as zz\n"
        "from numpy.random import rand\n"
    )
    ctx = ModuleContext("m.py", src, LintConfig())
    import ast

    def call_name(expr):
        return ctx.numpy_call_name(ast.parse(expr, mode="eval").body.func)

    assert call_name("np.zeros(3)") == "zeros"
    assert call_name("numpy.zeros(3)") == "zeros"
    assert call_name("zz(3)") == "zeros"
    assert call_name("np.random.rand(3)") == "random.rand"
    assert call_name("nr.rand(3)") == "random.rand"
    assert call_name("rand(3)") == "random.rand"
    assert call_name("other.zeros(3)") is None


def test_lint_paths_walks_and_reports_relative(tmp_path):
    pkg = tmp_path / "src" / "repro" / "lfd"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(BAD_LOOP)
    (pkg / "clean.py").write_text("X = 1\n")
    result = lint_paths([str(tmp_path / "src")], only_dcl001(), root=tmp_path)
    assert len(result.findings) == 1
    assert result.findings[0].path == "src/repro/lfd/mod.py"
    assert result.exit_code == 1


def test_lint_paths_syntax_error_is_reported(tmp_path):
    bad = tmp_path / "src" / "repro" / "lfd"
    bad.mkdir(parents=True)
    (bad / "broken.py").write_text("def f(:\n")
    result = lint_paths([str(tmp_path / "src")], only_dcl001(), root=tmp_path)
    assert result.errors and "syntax error" in result.errors[0]
    assert result.exit_code == 2


def test_iter_python_files_dedups(tmp_path):
    f = tmp_path / "a.py"
    f.write_text("X = 1\n")
    files = list(iter_python_files([str(tmp_path), str(f)]))
    assert files == [Path(tmp_path / "a.py")]
