"""Hot-loop allocation violations (linted as if under repro/lfd/)."""
import numpy as np


def hot_sweep(psi, coeffs):
    acc = None
    for c in coeffs:
        work = np.zeros(psi.shape)            # DCL001: constructor in loop
        promoted = psi.astype(np.complex128)  # DCL001: astype copy in loop
        saved = psi.copy()                    # DCL001: .copy() in loop
        acc = work + promoted + saved * c
    return acc


def nested_while(psi):
    i = 0
    while i < 4:
        tmp = np.empty_like(psi)              # DCL001: constructor in loop
        psi = psi + tmp
        i += 1
    return psi
