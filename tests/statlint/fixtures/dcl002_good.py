"""Kernel dtype contract respected: only widening / same-width casts."""
import numpy as np


def keep_wide(psi, field):
    a = psi.astype(np.complex128)
    b = field.astype(np.float64)
    c = np.asarray(field, dtype=np.complex128)
    d = np.zeros(field.shape, dtype=np.float64)
    return a, b, c, d
