"""DCL017 good: async bodies delegate blocking work; sync code is free."""

import asyncio
import time


async def handle_request(reader, writer):
    line = await reader.readline()
    await asyncio.sleep(0.01)
    writer.write(line)
    await writer.drain()
    return line


async def load_config(loop, path):
    # The sanctioned carrier: a nested plain def runs on the worker
    # thread, so its blocking file I/O never touches the event loop.
    def _read():
        with open(path) as fh:
            return fh.read()

    return await loop.run_in_executor(None, _read)


def wait_for_socket(path, budget_s):
    deadline = time.monotonic() + budget_s
    while not path.exists():
        if time.monotonic() > deadline:
            raise TimeoutError(str(path))
        time.sleep(0.005)
