"""Known-good fixture for DCL009: per-domain work dispatched via executor."""

from repro.lfd.propagator import PropagatorConfig, QDPropagator
from repro.qxmd.dftsolver import DomainSolver


def _refine_task(args):
    """Module-level task: solver construction at loop depth zero is fine."""
    domain, wf, vloc, kb, ncg, seed = args
    solver = DomainSolver(domain, wf.norb, seed=seed)
    return solver.refine(wf, vloc, kb, ncg)


def _lfd_task(args):
    """Module-level task: propagator construction outside any loop."""
    wf, vloc, dt_qd, n_qd = args
    prop = QDPropagator(wf, vloc, PropagatorConfig(dt=dt_qd))
    prop.run(n_qd)
    return prop.wf


def run_all(executor, states, v_global, ncg, seed):
    """The loop only assembles task payloads; dispatch goes via map()."""
    items = [
        (st.domain, st.wf, st.domain.gather(v_global), st.kb, ncg, seed)
        for st in states
    ]
    return executor.map(_refine_task, items, label="scf.domains")
