"""DCL012 good: module-level picklable tasks (directly and via partial)."""

from functools import partial


def module_task(x, scale=1):
    return x * scale


def run_direct(executor, items):
    return list(executor.map(module_task, items))


def run_partial(executor, items):
    return list(executor.map(partial(module_task, scale=2), items))


def run_indirect(executor, items):
    task = module_task
    return list(executor.map(task, items))
