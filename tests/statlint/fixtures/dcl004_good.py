"""Typed or re-raising handlers: guards propagate."""


def typed(step):
    try:
        return step()
    except (ValueError, FloatingPointError):
        return None


def reraising(step, log):
    try:
        return step()
    except Exception as exc:
        log.append(str(exc))
        raise
