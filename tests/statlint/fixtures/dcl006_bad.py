"""Phase-module kernels that never open a tracer span."""
import numpy as np


def untraced_kernel(psi, coeff):   # DCL006: public, loops, no span
    for axis in range(3):
        psi = psi + coeff * np.roll(psi, 1, axis=axis)
    return psi


def untraced_blas(psi, phi):       # DCL006: numpy-heavy, no loop, no span
    overlaps = phi.conj().T @ psi
    correction = phi @ overlaps
    out = psi + correction
    norm = np.sqrt(np.abs(out) ** 2)
    return out / norm
