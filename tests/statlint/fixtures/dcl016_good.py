"""Known-good fixture for DCL016: xp-first kernels stay on the namespace."""

import numpy as np


def smooth_xp(xp, u, f, h2, omega):
    """Every array op routes through the namespace handle."""
    r = xp.add(f, u)
    total = xp.sum(r * r)
    return u + omega * h2 * r / total


def phase_xp(xp, psi, v, dt):
    """Complex exponential on the namespace, scalar math on Python."""
    return xp.exp(xp.asarray(-1j * dt) * v) * psi


def boundary_xp(xp, host):
    """The sanctioned crossings: asarray in, dtype constants as metadata."""
    arr = xp.asarray(np.asarray(host), dtype=np.complex128)
    return xp.real(arr)


def host_side(field):
    """No leading xp parameter: plain host-NumPy code is out of scope."""
    return np.fft.fftn(field)
