"""Known-bad fixture for DCL016: np.* calls inside xp-first kernels."""

import numpy as np
from numpy import exp as np_exp


def smooth_xp(xp, u, f, h2, omega):
    """Host ufuncs and reductions pin the kernel to NumPy."""
    r = np.add(f, u)  # finding 1
    total = np.sum(r * r)  # finding 2
    return u + omega * h2 * r / total


def phase_xp(xp, psi, v, dt):
    """A from-numpy import is still a bare numpy call."""
    return np_exp(-1j * dt * v) * psi  # finding 3


def spectrum_xp(xp, field):
    """Submodule calls (np.fft.*) round-trip through the host too."""
    return np.fft.fftn(field)  # finding 4
