"""DCL015 good: None defaults resolved through the active TuningProfile."""

from repro.tuning.profile import get_active_profile


def resolved(data, block_size=None):
    if block_size is None:
        block_size = int(
            get_active_profile().params_for("lfd.kin_prop")["block_size"]
        )
    return data[:block_size]


def guarded_forward(data, block_size=None):
    if block_size is None:
        block_size = int(
            get_active_profile().params_for("lfd.kin_prop")["block_size"]
        )
    return resolved(data, block_size)
