"""out= discipline: distinct buffers, or elementwise ops (alias-safe)."""
import numpy as np


def good_gemm(a, b, work):
    np.matmul(a, b, out=work)
    return work


def elementwise_alias_ok(a, b):
    np.multiply(a, b, out=a)   # ufunc: aliasing is well-defined
    np.add(a, 1.0, out=a)
    return a
