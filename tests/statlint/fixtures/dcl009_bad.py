"""Known-bad fixture for DCL009: per-domain solvers built inside loops."""

import numpy as np

from repro.lfd.propagator import PropagatorConfig, QDPropagator
from repro.qxmd.dftsolver import DomainSolver


def rank_loop_refine(states, v_global, ncg, seed):
    """Old-style inline rank loop: DomainSolver constructed per domain."""
    for st in states:
        vloc = st.domain.gather(v_global)
        solver = DomainSolver(st.domain, st.wf.norb, seed=seed)  # finding 1
        st.eigenvalues = solver.refine(st.wf, vloc, st.kb, ncg)


def lfd_loop(states, dt_qd, n_qd):
    """Old-style inline LFD loop: QDPropagator constructed per domain."""
    out = []
    for st in states:
        prop = QDPropagator(  # finding 2
            st.wf.copy(), st.vloc, PropagatorConfig(dt=dt_qd)
        )
        prop.run(n_qd)
        out.append(prop)
    return out


def nested_while(states, budget):
    """Solver construction anywhere under a loop still counts."""
    i = 0
    while i < budget:
        if states:
            DomainSolver(states[i].domain, 4)  # finding 3
        i += 1
    return np.zeros(3)
