"""DCL015 bad: tunables bypassing or never reaching TuningProfile resolution."""


def hard_default(data, block_size=32):
    return data[:block_size]


def unresolved_range(data, block_size=None):
    for i in range(block_size):
        data[i] += 1.0
    return data


def literal_fallback(data, block_size=None):
    if block_size is None:
        block_size = 16
    return data[:block_size]


def _helper(data, block_size):
    return data[:block_size]


def forwards_unresolved(data, block_size=None):
    return _helper(data, block_size)
