"""out= aliasing an input of a non-elementwise op."""
import numpy as np


def bad_gemm(a, b):
    np.matmul(a, b, out=a)                  # DCL007
    return a


def bad_einsum(a, b):
    np.einsum("ij,jk->ik", a, b, out=b)     # DCL007
    return b


def bad_dot_nested(a, b, c):
    np.dot(a + c, b, out=c)                 # DCL007 (aliased inside expr)
    return c
