"""Broad exception handlers that swallow numerical health guards."""


def swallow_all(step):
    try:
        return step()
    except:                      # DCL004: bare except
        return None


def swallow_broad(step):
    try:
        return step()
    except Exception:            # DCL004: broad except, no re-raise
        return None


def swallow_tuple(step):
    try:
        return step()
    except (ValueError, BaseException):  # DCL004: tuple containing broad
        return None
