"""Volume-weighted mesh reductions."""
import numpy as np


def weighted_overlap(psi, phi, dvol):
    ovl = np.vdot(phi, psi) * dvol
    return ovl


def weighted_einsum(psi, phi, grid):
    e = np.real(np.einsum("gs,gs->s", phi.conj(), psi)) * grid.dvol
    return e


def coefficient_contraction(coeff, weights):
    # no conjugate operand: plain einsum over pre-weighted coefficients
    return np.einsum("ps,s->p", coeff, weights)
