"""Hot-loop discipline: preallocated workspaces, no in-loop construction."""
import numpy as np


def hot_sweep(psi, coeffs):
    work = np.zeros(psi.shape)          # hoisted out of the loop
    promoted = psi.astype(np.complex128)
    acc = np.zeros_like(psi)
    for c in coeffs:
        work[...] = 0.0
        view = psi.astype(np.complex128, copy=False)  # allocation-free
        np.multiply(view, c, out=work)
        acc += work + promoted
    return acc
