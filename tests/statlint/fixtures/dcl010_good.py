"""Known-good fixture for DCL010: tuned parameters flow via the profile."""

from repro.lfd import kinetic_step
from repro.lfd.nonlocal_corr import NonlocalCorrector
from repro.parallel import make_executor
from repro.tuning.profile import get_active_profile


def step_all(wf, dt, block_size=None):
    """None defers to the active TuningProfile inside the kernel."""
    kinetic_step(wf, dt, variant="blocked", block_size=block_size)
    corr = NonlocalCorrector()  # resolves orb_block from the profile
    corr.apply(wf, dt)
    return wf


def dispatch(task, items):
    """Executor shape read from the profile, not hard-coded."""
    params = get_active_profile().params_for("parallel.executor")
    ex = make_executor("process", chunk_size=params["chunk_size"])
    return ex.map(task, items)
