"""DCL014 good: real projections are explicit (.real / |z|^2)."""

import numpy as np


def make_phase(n):
    return np.exp(1j * np.linspace(0.0, 1.0, n))


def density(n):
    z = make_phase(n)
    return np.abs(z) ** 2


def explicit_real(n):
    z = make_phase(n)
    return z.real.astype(np.float64)


def stays_complex(n):
    out = np.zeros(n, dtype=np.complex128)
    out[...] = make_phase(n)
    return out
