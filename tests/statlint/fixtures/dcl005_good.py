"""Immutable or None defaults only."""
import numpy as np


def append_to(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def offsets(x, base=(0.0, 0.0, 0.0), scale=1.0, label="x"):
    return x + scale * np.asarray(base)
