"""Grid inner products missing the volume element."""
import numpy as np


def unweighted_overlap(psi, phi):
    ovl = np.vdot(phi, psi)                              # DCL008
    return ovl


def unweighted_einsum(psi, phi):
    e = np.real(np.einsum("gs,gs->s", phi.conj(), psi))  # DCL008
    return e
