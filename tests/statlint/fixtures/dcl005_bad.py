"""Mutable default arguments: hidden cross-call state."""
import numpy as np


def append_to(item, bucket=[]):          # DCL005: list literal
    bucket.append(item)
    return bucket


def tally(key, counts={}):               # DCL005: dict literal
    counts[key] = counts.get(key, 0) + 1
    return counts


def offsets(x, base=np.zeros(3)):        # DCL005: np.array ctor
    return x + base


def collect(x, *, seen=set()):           # DCL005: kw-only set ctor
    seen.add(x)
    return seen
