"""Known-bad fixture for DCL010: tuned parameters pinned to literals."""

from repro.lfd import kinetic_step
from repro.lfd.nonlocal_corr import NonlocalCorrector
from repro.parallel import make_executor


def step_all(wf, dt):
    """Literal block shape at the call site bypasses the TuningProfile."""
    kinetic_step(wf, dt, variant="blocked", block_size=8)  # finding 1
    corr = NonlocalCorrector(orb_block=4)  # finding 2
    corr.apply(wf, dt)
    return wf


def dispatch(task, items):
    """Literal chunk size pins the executor shape despite tuning."""
    ex = make_executor("process", chunk_size=2)  # finding 3
    return ex.map(task, items)
