"""Narrowing dtype casts in a kernel module."""
import numpy as np


def narrow(psi, field):
    a = psi.astype(np.complex64)                  # DCL002
    b = field.astype("float32")                   # DCL002 (string dtype)
    c = np.asarray(field, dtype=np.float32)       # DCL002 (constructor kw)
    d = np.float32(field.sum())                   # DCL002 (scalar ctor)
    return a, b, c, d
