"""DCL012 bad: pickle-unsafe callables reach executor.map."""


def run_lambda(executor, items):
    return list(executor.map(lambda x: x + 1, items))


def run_closure(executor, items):
    def local_task(x):
        return x * 2

    return list(executor.map(local_task, items))


class Driver:
    def task(self, x):
        return x

    def run(self, executor, items):
        return list(executor.map(self.task, items))
