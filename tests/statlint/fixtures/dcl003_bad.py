"""Global RNG state: invisible to deterministic replay."""
import numpy as np
from numpy.random import normal


def jitter(x):
    np.random.seed(0)                  # DCL003
    a = np.random.rand(*x.shape)       # DCL003
    b = np.random.standard_normal(3)   # DCL003
    c = normal(size=3)                 # DCL003 (from-import)
    return x + a + b.sum() + c.sum()
