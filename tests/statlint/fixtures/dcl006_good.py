"""Phase-module discipline: spans opened, helpers exempt or suppressed."""
import numpy as np

from repro.obs import trace_span


def traced_kernel(psi, coeff):
    with trace_span("kernel", "kinetic"):
        for axis in range(3):
            psi = psi + coeff * np.roll(psi, 1, axis=axis)
        return psi


def _private_helper(psi):
    for _ in range(3):
        psi = psi + 1.0
    return psi


def flop_count(norb, ngrid):
    gemm1 = 8.0 * ngrid * norb
    gemm2 = 8.0 * ngrid * norb
    total = gemm1 + gemm2
    return total


def phase_field(vloc, dt):
    return np.exp(-1j * dt * vloc)


def inner_variant(psi, coeff):  # dclint: disable=DCL006 -- timed by traced_kernel
    for axis in range(3):
        psi = psi + coeff * np.roll(psi, 1, axis=axis)
    return psi
