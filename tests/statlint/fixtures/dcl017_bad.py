"""DCL017 bad: blocking calls lexically inside async defs (5 findings)."""

import subprocess
import time


async def handle_request(sock, path):
    time.sleep(0.1)                              # finding 1
    data = sock.recv(4096)                       # finding 2
    text = path.read_text()                      # finding 3
    return data, text


async def spawn_helper(cmd):
    subprocess.run(cmd, check=True)              # finding 4


async def load_config(path):
    with open(path) as fh:                       # finding 5
        return fh.read()
