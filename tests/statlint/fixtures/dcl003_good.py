"""All randomness flows through a seeded Generator."""
import numpy as np


def jitter(x, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random(x.shape)
    ss = np.random.SeedSequence(seed)
    child = np.random.default_rng(ss.spawn(1)[0])
    return x + a + child.standard_normal(3).sum()
