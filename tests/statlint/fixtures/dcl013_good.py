"""DCL013 good: every stream is derived or explicitly seeded."""

import numpy as np

from repro.parallel.rng import worker_rng


def jitter(values, run_seed, worker_id):
    rng = worker_rng(run_seed, worker_id)
    return values + rng.normal(size=len(values))


def explicit_seed(seed):
    rng = np.random.default_rng(seed)
    return rng.random(3)
