"""Known-bad fixture for DCL011: unbounded blocking on liveness paths."""

import queue
import threading


def drain(q: queue.Queue, worker: threading.Thread):
    """Bare blocking calls: each parks forever behind a wedged worker."""
    item = q.get()  # finding 1
    worker.join()  # finding 2
    return item


def gather(futures, done_event: threading.Event):
    """Future/event waits with no bound cannot be preempted."""
    done_event.wait()  # finding 3
    return [f.result() for f in futures]  # finding 4


def spin(board):
    """A while-True with no break/return never terminates on its own."""
    while True:  # finding 5
        board.poll()
