"""DCL014 bad: complex128 values flowing into real-dtype sinks."""

import numpy as np


def make_phase(n):
    return np.exp(1j * np.linspace(0.0, 1.0, n))


def bad_astype(n):
    z = make_phase(n)
    return z.astype(np.float64)


def bad_dtype_kwarg(n):
    z = make_phase(n)
    return np.asarray(z, dtype="float64")


def bad_store(n):
    out = np.zeros(n)
    z = make_phase(n)
    out[...] = z
    return out
