"""Known-good fixture for DCL011: every wait is bounded, loops can exit."""

import queue
import threading

from repro.resilience.liveness import check_deadline


def drain(q: queue.Queue, worker: threading.Thread):
    """Bounded waits: a timeout turns a hang into a polled retry."""
    item = q.get(timeout=1.0)
    worker.join(timeout=5.0)
    return item


def gather(futures, done_event: threading.Event):
    """Poll with a bound, re-checking the armed deadline between rounds."""
    while not done_event.wait(timeout=0.05):
        check_deadline("gather")
    return [f.result(timeout=0) for f in futures]


def lookups(d, parts):
    """Positional-argument forms are not blocking primitives."""
    value = d.get("key")
    joined = ", ".join(parts)
    return value, joined


def spin(board, stop: threading.Event):
    """A while-True that can break (or return) bounds itself."""
    while True:
        if stop.wait(timeout=0.1):
            break
        board.poll()
