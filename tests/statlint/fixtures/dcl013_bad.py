"""DCL013 bad: executor-path randomness without deterministic provenance."""

import numpy as np

_NOISE_TABLE = np.random.random(16)


def jitter(values):
    rng = np.random.default_rng()
    return values + rng.normal(size=len(values))


def legacy_noise(n):
    return np.random.normal(size=n)
