"""--jobs fan-out and the incremental cache: byte-identical, and fast.

The contract under test: parallelism and caching are *observationally
pure*.  A report produced with worker processes, or replayed from a
warm cache, is byte-for-byte the report of a cold serial run -- and the
warm replay is asserted to cost less than half the cold wall time
(the full-hit path reconstructs findings without parsing anything).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.statlint import LintConfig, lint_paths, render_json
from repro.statlint.cache import (
    LintCache,
    config_fingerprint,
    source_fingerprint,
    tool_fingerprint,
)

N_FILES = 40

CLEAN_MODULE = '''\
"""Generated module {i}."""

import numpy as np


def transform_{i}(values, out):
    out[...] = values * {i}.0
    return out


def reduce_{i}(values, weights):
    acc = 0.0
    for v, w in zip(values, weights):
        acc += v * w
    return acc


def shape_report_{i}(arr):
    return {{"shape": arr.shape, "dtype": str(arr.dtype), "tag": {i}}}
'''

DIRTY_MODULE = '''\
"""Generated hot-loop module {i} (carries one DCL001 finding)."""

import numpy as np


def hot_{i}(psi):
    for _ in range(4):
        scratch = np.zeros(psi.shape)
        scratch += psi.real
    return scratch
'''


def make_tree(root: Path) -> Path:
    for i in range(N_FILES):
        sub = "lfd" if i % 4 == 0 else "analysis"
        dst = root / "src" / "repro" / sub / f"gen_{i:03d}.py"
        dst.parent.mkdir(parents=True, exist_ok=True)
        template = DIRTY_MODULE if i % 8 == 0 else CLEAN_MODULE
        dst.write_text(template.format(i=i))
    return root


def report_for(root: Path, **kwargs) -> str:
    result = lint_paths([str(root)], LintConfig(), root=root, **kwargs)
    assert not result.errors, result.errors
    return render_json(result)


def test_parallel_report_is_byte_identical_to_serial(tmp_path):
    root = make_tree(tmp_path)
    serial = report_for(root, jobs=1)
    parallel = report_for(root, jobs=2)
    assert parallel == serial
    assert json.loads(serial)["new_findings"]  # the tree is not trivially clean


def test_warm_cache_is_byte_identical_and_under_half_cold_time(tmp_path):
    root = make_tree(tmp_path)
    cache = tmp_path / "cache.json"

    t0 = time.perf_counter()
    cold = report_for(root, cache_path=cache)
    t_cold = time.perf_counter() - t0
    assert cache.exists()

    t0 = time.perf_counter()
    warm = report_for(root, cache_path=cache)
    t_warm = time.perf_counter() - t0

    assert warm == cold
    assert t_warm < t_cold / 2, (t_warm, t_cold)


def test_cache_invalidation_on_file_change(tmp_path):
    root = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    before = json.loads(report_for(root, cache_path=cache))

    victim = root / "src" / "repro" / "lfd" / "gen_000.py"
    victim.write_text(CLEAN_MODULE.format(i=0))
    after = json.loads(report_for(root, cache_path=cache))

    hits = {f["path"] for f in before["new_findings"]}
    assert any(p.endswith("gen_000.py") for p in hits)
    hits_after = {f["path"] for f in after["new_findings"]}
    assert not any(p.endswith("gen_000.py") for p in hits_after)
    # untouched findings survive the partial re-lint
    assert hits_after == {p for p in hits if not p.endswith("gen_000.py")}


def test_cache_ignores_stale_tool_or_config(tmp_path):
    root = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    report_for(root, cache_path=cache)

    doc = json.loads(cache.read_text())
    doc["tool"] = "0" * len(doc["tool"])
    cache.write_text(json.dumps(doc))
    # A doctored tool fingerprint must be treated as a cold start, not
    # an error -- and the report must still match.
    assert report_for(root, cache_path=cache) == report_for(root)


def test_cache_fingerprints_are_stable():
    assert tool_fingerprint() == tool_fingerprint()
    assert source_fingerprint("x = 1\n") == source_fingerprint("x = 1\n")
    assert source_fingerprint("x = 1\n") != source_fingerprint("x = 2\n")
    a = config_fingerprint(LintConfig())
    # jobs/cache must NOT perturb the config fingerprint (pure knobs)
    b = config_fingerprint(LintConfig(jobs=8, cache="elsewhere.json"))
    c = config_fingerprint(LintConfig(select=("DCL001",)))
    assert a == b
    assert a != c


def test_corrupt_cache_file_is_ignored(tmp_path):
    root = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{definitely not json")
    fresh = report_for(root, cache_path=cache)
    assert fresh == report_for(root)
    # and the corrupt file was replaced by a valid one
    LintCache(cache, LintConfig())
