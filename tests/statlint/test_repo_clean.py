"""Acceptance: the merged tree is dclint-clean against its baseline.

This is the same invocation the CI ``lint`` job runs; a regression that
introduces a new DCL finding anywhere under ``src/`` or ``benchmarks/``
fails here first, with the offending file and rule in the assert message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.statlint import Baseline, lint_paths
from repro.statlint.baseline import apply_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "statlint-baseline.json"


def test_repo_is_clean_against_baseline():
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")],
        root=REPO_ROOT,
    )
    assert not result.errors, result.errors
    apply_baseline(result, Baseline.load(BASELINE))
    pretty = [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.new_findings
    ]
    assert result.new_findings == [], "\n".join(pretty)


def test_baseline_has_no_stale_entries():
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")],
        root=REPO_ROOT,
    )
    apply_baseline(result, Baseline.load(BASELINE))
    assert result.stale_baseline == [], result.stale_baseline


def test_every_baselined_finding_is_justified():
    doc = json.loads(BASELINE.read_text())
    unjustified = [
        f"{e['path']}:{e['line']} {e['rule']}"
        for e in doc["findings"]
        if not e["justification"].strip()
    ]
    assert unjustified == [], unjustified
