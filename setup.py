"""Setuptools shim.

The offline test environment ships setuptools without the `wheel`
package, so PEP 517 editable installs (which build an editable wheel)
fail.  Keeping a setup.py and omitting the [build-system] table from
pyproject.toml lets `pip install -e .` fall back to the legacy
`setup.py develop` path, which works without wheel.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
